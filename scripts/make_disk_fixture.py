#!/usr/bin/env python
"""Generate a deterministic on-disk Cityscapes-format fixture.

Writes a tiny Cityscapes-layout tree (``leftImg8bit`` + ``gtFine`` label-ID
PNGs) plus matching softmax dumps from the repo's own synthetic generators,
so the disk-backed I/O layer can be exercised — in tests, CI and demos —
without downloading anything.  The fixture is bitwise-reproducible: the same
arguments always produce the same files, and an experiment run against the
tree reproduces the equivalent in-memory synthetic run bit for bit.

Examples::

    # The committed test fixture (tests/fixtures/disk):
    python scripts/make_disk_fixture.py --root tests/fixtures/disk

    # A throwaway tree + a ready-to-run config for the CLI:
    python scripts/make_disk_fixture.py --root /tmp/disk \\
        --emit-config /tmp/disk/metaseg_disk.json
    python -m repro run /tmp/disk/metaseg_disk.json
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.io.fixture import disk_config_payload, write_disk_fixture  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", required=True, help="dataset tree output directory")
    parser.add_argument(
        "--dump-root",
        default=None,
        help="softmax dump output directory (default: <root>/softmax)",
    )
    parser.add_argument("--seed", type=int, default=7, help="experiment seed (default 7)")
    parser.add_argument("--n-train", type=int, default=2, help="training frames (default 2)")
    parser.add_argument("--n-val", type=int, default=4, help="validation frames (default 4)")
    parser.add_argument("--height", type=int, default=32, help="frame height (default 32)")
    parser.add_argument("--width", type=int, default=64, help="frame width (default 64)")
    parser.add_argument(
        "--profile", default="mobilenetv2", help="network profile to dump (default mobilenetv2)"
    )
    parser.add_argument(
        "--format",
        dest="dump_format",
        choices=("npy", "npz"),
        default="npy",
        help="dump format: per-frame .npy (memmappable, default) or one .npz per split",
    )
    parser.add_argument(
        "--no-images",
        action="store_true",
        help="write only the gtFine label maps (no placeholder leftImg8bit images)",
    )
    parser.add_argument(
        "--emit-config",
        default=None,
        metavar="PATH",
        help="also write an experiment config JSON running the generated fixture",
    )
    parser.add_argument(
        "--kind",
        choices=("metaseg", "decision"),
        default="metaseg",
        help="experiment kind of the emitted config (default metaseg)",
    )
    args = parser.parse_args(argv)

    summary = write_disk_fixture(
        args.root,
        dump_root=args.dump_root,
        seed=args.seed,
        n_train=args.n_train,
        n_val=args.n_val,
        height=args.height,
        width=args.width,
        profile=args.profile,
        dump_format=args.dump_format,
        write_images=not args.no_images,
    )
    print(f"fixture: {summary['root']}")
    print(f"dumps:   {summary['dump_root']} ({args.dump_format})")
    print(f"frames:  {json.dumps(summary['n_frames'])}")
    if args.emit_config:
        payload = disk_config_payload(
            summary["root"], summary["dump_root"], kind=args.kind, seed=args.seed
        )
        config_path = Path(args.emit_config)
        config_path.parent.mkdir(parents=True, exist_ok=True)
        config_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"config:  {config_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
