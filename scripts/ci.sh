#!/usr/bin/env bash
# CI entry point: tier-1 suite, parity-fuzz suite, benchmark smokes, CLI smoke.
#
# Usage: scripts/ci.sh
# Run from anywhere; all paths are resolved relative to the repository root.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"
export PYTHONPATH="${REPO_ROOT}/src${PYTHONPATH:+:$PYTHONPATH}"

# One scratch root for every stage that needs disk; a single trap cleans up.
TMP_ROOT="$(mktemp -d)"
trap 'rm -rf "${TMP_ROOT}"' EXIT

echo "=== static analysis (invariant linter; zero unsuppressed findings) ==="
python -m repro analyze src/repro

echo "=== compileall (src + tests must byte-compile) ==="
python -m compileall -q src tests

echo "=== pyflakes (if available) ==="
if python -c "import pyflakes" >/dev/null 2>&1; then
    python -m pyflakes src tests
else
    echo "pyflakes not installed; skipping"
fi

echo "=== tier-1 test suite ==="
python -m pytest -x -q

echo "=== parity-fuzz suite ==="
python -m pytest -q -m fuzz tests/test_segments_parity_fuzz.py tests/test_api_execution.py \
    tests/test_tracking_parity_fuzz.py tests/test_core_metrics_dataset.py

echo "=== segment-matching benchmark (smoke) ==="
PYTHONPATH="${REPO_ROOT}/benchmarks:${PYTHONPATH}" \
    python benchmarks/bench_segment_matching.py --smoke

echo "=== tracking benchmark (smoke: bitwise parity + speedup sanity) ==="
PYTHONPATH="${REPO_ROOT}/benchmarks:${PYTHONPATH}" \
    python benchmarks/bench_tracking.py --smoke

echo "=== fused-extraction benchmark (smoke: bitwise parity + speedup sanity) ==="
PYTHONPATH="${REPO_ROOT}/benchmarks:${PYTHONPATH}" \
    python benchmarks/bench_extraction_fused.py --smoke

echo "=== runner-overhead benchmark (smoke) ==="
PYTHONPATH="${REPO_ROOT}/benchmarks:${PYTHONPATH}" \
    python benchmarks/bench_runner_overhead.py --smoke

echo "=== telemetry-overhead benchmark (smoke: default tracer < 3% gate) ==="
PYTHONPATH="${REPO_ROOT}/benchmarks:${PYTHONPATH}" \
    python benchmarks/bench_obs_overhead.py --smoke

echo "=== sharded-runner benchmark (smoke: bitwise parity at 2 workers) ==="
PYTHONPATH="${REPO_ROOT}/benchmarks:${PYTHONPATH}" \
    python benchmarks/bench_sharded_runner.py --smoke

echo "=== distributed dispatch benchmark (smoke: parity + kill-one recovery) ==="
PYTHONPATH="${REPO_ROOT}/benchmarks:${PYTHONPATH}" \
    python benchmarks/bench_distributed.py --smoke

echo "=== dispatch fault-injection suite ==="
python -m pytest -q -m faults tests/test_dispatch_faults.py

echo "=== distributed CLI (smoke: work queue, then kill-one-worker parity) ==="
DIST_SERIAL_OUT="${TMP_ROOT}/dist_serial.json"
DIST_HEALTHY_OUT="${TMP_ROOT}/dist_healthy.json"
DIST_FAULTED_OUT="${TMP_ROOT}/dist_faulted.json"
python -m repro run examples/configs/metaseg_small.json --output "${DIST_SERIAL_OUT}"
python -m repro run examples/configs/metaseg_small.json \
    --backend distributed --workers 2 --output "${DIST_HEALTHY_OUT}"
REPRO_DISPATCH_FAULTS='[{"task": 0, "attempt": 0, "action": "kill"}]' \
    python -m repro run examples/configs/metaseg_small.json \
    --backend distributed --workers 2 --output "${DIST_FAULTED_OUT}"
python - "${DIST_SERIAL_OUT}" "${DIST_HEALTHY_OUT}" "${DIST_FAULTED_OUT}" <<'PY'
import json, sys
serial, healthy, faulted = (json.load(open(path)) for path in sys.argv[1:])
for label, report in (("healthy", healthy), ("kill-one", faulted)):
    for field in ("tables", "provenance"):
        if report[field] != serial[field]:
            print(f"FAIL: distributed {label} run diverges from serial "
                  f"in {field}", file=sys.stderr)
            raise SystemExit(1)
print("distributed smoke: healthy + kill-one-worker bitwise-equal to serial")
PY

echo "=== experiment CLI (smoke) ==="
python -m repro list
python -m repro run examples/configs/metaseg_small.json
python -m repro run examples/configs/metaseg_sharded.json

echo "=== trace export (smoke: run --trace, Chrome trace-event schema) ==="
TRACE_OUT="${TMP_ROOT}/trace.json"
python -m repro run examples/configs/metaseg_small.json --trace --trace-out "${TRACE_OUT}" \
    | tee "${TMP_ROOT}/trace_run.txt"
grep -q "^trace trace-" "${TMP_ROOT}/trace_run.txt" \
    || { echo "FAIL: --trace did not print the span tree" >&2; exit 1; }
python - "${TRACE_OUT}" <<'PY'
import json, sys
from repro.obs import validate_chrome_trace
payload = json.load(open(sys.argv[1]))
problems = validate_chrome_trace(payload)
if problems:
    print("FAIL: invalid chrome trace:", *problems, sep="\n  ", file=sys.stderr)
    raise SystemExit(1)
spans = [event for event in payload["traceEvents"] if event["ph"] == "X"]
names = {event["name"] for event in spans}
missing = {"run", "resolve", "extract", "evaluate"} - names
if missing:
    print(f"FAIL: trace lacks stage spans: {sorted(missing)}", file=sys.stderr)
    raise SystemExit(1)
print(f"trace smoke: valid chrome trace ({len(spans)} spans)")
PY

echo "=== disk-backed I/O (committed fixture smoke) ==="
python -m repro run examples/configs/metaseg_disk.json

echo "=== disk-backed I/O (generated fixture + process backend + store cache) ==="
DISK_ROOT="${TMP_ROOT}/disk-fixture"
DISK_CACHE="${TMP_ROOT}/disk-cache"
python scripts/make_disk_fixture.py --root "${DISK_ROOT}" \
    --emit-config "${DISK_ROOT}/metaseg_disk.json"
python -m repro run "${DISK_ROOT}/metaseg_disk.json" \
    --backend process --workers 2 --cache-dir "${DISK_CACHE}"
python -m repro run "${DISK_ROOT}/metaseg_disk.json" \
    --backend process --workers 2 --cache-dir "${DISK_CACHE}" \
    | tee "${TMP_ROOT}/disk_second_run.txt"
grep -q "cache: hit" "${TMP_ROOT}/disk_second_run.txt" \
    || { echo "FAIL: second disk-backed run was not served from cache" >&2; exit 1; }

echo "=== sweep-cache benchmark (smoke: warm >= 5x cold + bitwise parity) ==="
PYTHONPATH="${REPO_ROOT}/benchmarks:${PYTHONPATH}" \
    python benchmarks/bench_sweep_cache.py --smoke

echo "=== sweep CLI (smoke: second identical sweep served from cache) ==="
SWEEP_CACHE_DIR="${TMP_ROOT}/sweep-cache"
mkdir -p "${SWEEP_CACHE_DIR}"
REPRO_CACHE_DIR="${SWEEP_CACHE_DIR}" \
    python -m repro sweep examples/configs/sweep_metaseg.json
REPRO_CACHE_DIR="${SWEEP_CACHE_DIR}" \
    python -m repro sweep examples/configs/sweep_metaseg.json \
    | tee "${SWEEP_CACHE_DIR}/second_run.txt"
grep -q "cache hits: 2/2" "${SWEEP_CACHE_DIR}/second_run.txt" \
    || { echo "FAIL: second sweep run was not served from cache" >&2; exit 1; }

echo "=== scoring-server benchmark (smoke: bitwise parity + latency gates) ==="
PYTHONPATH="${REPO_ROOT}/benchmarks:${PYTHONPATH}" \
    python benchmarks/bench_serve.py --smoke

echo "=== scoring server (smoke: subprocess serve, bitwise parity vs batch) ==="
SERVE_CACHE="${TMP_ROOT}/serve-cache"
python scripts/serve_smoke.py --cache-dir "${SERVE_CACHE}"

echo "=== cache prune CLI (smoke: LRU bound on the serve-smoke store) ==="
python -m repro cache prune --cache-dir "${SERVE_CACHE}" --max-entries 1 \
    | tee "${TMP_ROOT}/prune_run.txt"
grep -q "1 kept" "${TMP_ROOT}/prune_run.txt" \
    || { echo "FAIL: cache prune did not bound the store to one entry" >&2; exit 1; }

echo "ci.sh: all stages passed"
