"""CI smoke for the online scoring service (``python -m repro serve``).

Exercises the real subprocess path end to end:

1. computes the batch reference (``Runner.fit`` + ``Runner.score``) on the
   committed disk fixture through a store at ``--cache-dir``;
2. starts ``python -m repro serve --model <config> --port 0`` as a
   subprocess against the *same* store — the server must load the persisted
   model (cache hit), not refit;
3. POSTs the first validation frame as npy and asserts the response is
   bitwise identical to the batch reference frame;
4. shuts the server down and verifies a clean exit.

Exit code 0 on success, 1 with a one-line diagnostic on any failure.

Usage: PYTHONPATH=src python scripts/serve_smoke.py --cache-dir DIR
"""

from __future__ import annotations

import argparse
import json
import re
import select
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api.config import ExperimentConfig  # noqa: E402
from repro.api.runner import Runner  # noqa: E402
from repro.serve import score_frame, wait_until_ready  # noqa: E402
from repro.store import ResultStore  # noqa: E402

CONFIG_PATH = REPO_ROOT / "examples" / "configs" / "metaseg_serve.json"


def fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


#: Hard bound on waiting for the server's startup banner.
STARTUP_TIMEOUT = 60.0


def next_line(process, deadline: float):
    """One stdout line within the deadline; ``None`` on expiry, ``""`` on EOF.

    A bare ``readline()`` would block CI forever on a server that wedges
    before printing anything; bounding the wait with ``select`` keeps every
    read under the caller's deadline.
    """
    remaining = deadline - time.monotonic()
    if remaining <= 0:
        return None
    ready, _, _ = select.select([process.stdout], [], [], remaining)
    if not ready:
        return None
    return process.stdout.readline()


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--cache-dir", required=True,
        help="scratch result-store root shared by the reference and the server",
    )
    args = parser.parse_args(argv)

    config_dict = json.loads(CONFIG_PATH.read_text())
    runner = Runner(store=ResultStore(args.cache_dir))
    model = runner.fit(config_dict)
    reference = runner.score(config_dict, model=model)

    config = ExperimentConfig.from_dict(config_dict)
    config.validate()
    resolved = runner.resolve(config)
    sample = next(iter(resolved.dataset.val_samples()))
    probs = resolved.network.predict_probabilities(sample.labels, index=0)

    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--model", str(CONFIG_PATH),
            "--port", "0",
            "--workers", "2",
            "--cache-dir", args.cache_dir,
        ],
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        # The server prints "model: cache hit (...)" then "serving on URL".
        url = None
        saw_hit = False
        deadline = time.monotonic() + STARTUP_TIMEOUT
        while True:
            line = next_line(process, deadline)
            if line is None:
                return fail(
                    f"server produced no startup output within {STARTUP_TIMEOUT:.0f}s"
                )
            if not line:
                break  # EOF: the server exited before announcing its URL
            sys.stdout.write(f"  server: {line}")
            if "model: cache hit" in line:
                saw_hit = True
            match = re.search(r"serving on (http://\S+)", line)
            if match:
                url = match.group(1)
                break
        if url is None:
            return fail("server never printed its serving URL")
        if not saw_hit:
            return fail("server refit the model instead of loading it from the store")
        wait_until_ready(url, timeout=30)
        scored = score_frame(url, probs, image_id=sample.image_id)
        expected = reference["frames"][0]
        if json.dumps(scored, sort_keys=True) != json.dumps(expected, sort_keys=True):
            return fail("server response diverges from the batch Runner.score reference")
        print(f"serve smoke: bitwise parity on {sample.image_id} "
              f"({scored['n_segments']} segments)")

        # Introspection contract: /healthz answers 200 with the model
        # descriptor, /metrics exposes the serving instruments.
        import urllib.request

        health = json.loads(urllib.request.urlopen(url + "/healthz", timeout=30).read())
        if health.get("status") != "ok":
            return fail(f"/healthz did not report ok: {health}")
        metrics = json.loads(urllib.request.urlopen(url + "/metrics", timeout=30).read())
        counters = metrics.get("counters", {})
        if counters.get("serve.requests.count", 0) < 1:
            return fail(f"/metrics shows no handled requests: {counters}")
        latency = metrics.get("histograms", {}).get("serve.request.latency_seconds")
        if not latency or sum(latency["counts"]) != latency["count"]:
            return fail(f"/metrics latency histogram is malformed: {latency}")
        if "serve.queue.depth" not in metrics.get("gauges", {}):
            return fail("/metrics lacks the serve.queue.depth gauge")
        print(f"serve smoke: /healthz ok, /metrics sane "
              f"({counters['serve.requests.count']} requests, "
              f"latency count {latency['count']})")
    finally:
        # Graceful path first (SIGINT -> KeyboardInterrupt -> server.close()),
        # escalating only if the server hangs.
        import signal

        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            print("serve smoke: server ignored SIGINT for 15s, killing it",
                  file=sys.stderr)
            process.kill()
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                print("serve smoke: server survived SIGKILL wait; "
                      "abandoning the process", file=sys.stderr)
    if process.returncode != 0:
        return fail(f"server exited with unexpected status {process.returncode}")
    print("serve smoke: clean shutdown")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
