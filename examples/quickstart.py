#!/usr/bin/env python
"""Quickstart: false-positive detection with MetaSeg on the synthetic substrate.

This example follows Section II of the paper end to end:

1. generate a small Cityscapes-like validation set,
2. run the simulated MobilenetV2-style segmentation network,
3. extract segment-wise metrics and IoU targets,
4. train the meta classifier (IoU = 0 vs. > 0) and the meta regressor,
5. print Table-I-style numbers and the comparison against the entropy-only
   and naive baselines.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CityscapesLikeDataset,
    MetaSegPipeline,
    SimulatedSegmentationNetwork,
    mobilenetv2_profile,
)
from repro.segmentation.scene import SceneConfig


def main() -> None:
    # --- 1. data and network ------------------------------------------------
    dataset = CityscapesLikeDataset(
        n_train=0,
        n_val=20,
        scene_config=SceneConfig(height=96, width=192),
        random_state=0,
    )
    network = SimulatedSegmentationNetwork(mobilenetv2_profile(), random_state=1)
    pipeline = MetaSegPipeline(network)

    # --- 2.+3. inference and metric extraction ------------------------------
    print("extracting segment metrics over", dataset.n_val, "images ...")
    metrics = pipeline.extract_dataset(dataset.val_samples())
    print(f"  {len(metrics)} predicted segments, "
          f"{100 * metrics.false_positive_fraction():.1f}% of them false positives (IoU = 0)")

    # --- 4. the two meta tasks ----------------------------------------------
    print("\nrunning the Table I protocol (10 random 80/20 splits) ...")
    result = pipeline.run_table1_protocol(metrics, n_runs=10, random_state=2)
    print("\n".join(result.summary_rows()))

    # --- 5. which single metrics carry the most signal? ---------------------
    correlations = pipeline.metric_iou_correlations(metrics)
    strongest = sorted(correlations.items(), key=lambda kv: -abs(kv[1]))[:5]
    print("\nstrongest single-metric correlations with segment IoU "
          "(Section II quotes |R| up to ~0.85):")
    for name, value in strongest:
        print(f"  {name:<14s} R = {value:+.3f}")


if __name__ == "__main__":
    main()
