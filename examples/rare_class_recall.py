#!/usr/bin/env python
"""False-negative reduction for rare classes via the Maximum-Likelihood rule.

This example follows Section IV of the paper: position-specific class priors
are estimated from training data (Fig. 4), the softmax output of the network
is decoded with the Bayes rule and with the Maximum-Likelihood rule
(Fig. 3), and the segment-wise precision/recall of the category "human" is
compared between the two rules (Fig. 5), including the fraction of completely
overlooked pedestrians F^r(0).

Run with::

    python examples/rare_class_recall.py
"""

from __future__ import annotations

from pathlib import Path

from repro import (
    CityscapesLikeDataset,
    DecisionRuleComparison,
    SimulatedSegmentationNetwork,
    mobilenetv2_profile,
    xception65_profile,
)
from repro.core.visualization import labels_to_rgb, render_ascii, write_ppm
from repro.segmentation.scene import SceneConfig

ARTIFACT_DIR = Path(__file__).resolve().parent / "artifacts"


def main() -> None:
    dataset = CityscapesLikeDataset(
        n_train=24,
        n_val=16,
        scene_config=SceneConfig(height=96, width=192),
        random_state=0,
    )

    for profile in (mobilenetv2_profile(), xception65_profile()):
        network = SimulatedSegmentationNetwork(profile, random_state=1)
        comparison = DecisionRuleComparison(network, category="human")
        comparison.fit_priors(dataset.train_samples())

        # Fig. 4: where do humans occur?  (ASCII rendering of the prior heatmap)
        if profile.name == "mobilenetv2":
            print("position-specific prior of the category 'human' "
                  "(dark = unlikely, bright = likely), cf. Fig. 4:")
            print(render_ascii(comparison.category_prior_heatmap(), width=72))

        result = comparison.compare(dataset.val_samples(), rules=("bayes", "ml"))
        print()
        print("\n".join(result.summary_rows()))
        rates = result.non_detection_rates()
        print(f"  -> completely overlooked 'human' ground-truth segments: "
              f"Bayes {100 * rates['bayes']:.1f}%  vs  ML {100 * rates['ml']:.1f}%")

        # Fig. 3: qualitative masks for the first validation image.
        sample = dataset.val_sample(0)
        probs = network.predict_probabilities(sample.labels, index=0)
        bayes_mask = comparison.decode(probs, "bayes")
        ml_mask = comparison.decode(probs, "ml")
        ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
        write_ppm(ARTIFACT_DIR / f"fig3_{profile.name}_bayes.ppm", labels_to_rgb(bayes_mask))
        write_ppm(ARTIFACT_DIR / f"fig3_{profile.name}_ml.ppm", labels_to_rgb(ml_mask))
        print(f"  wrote Fig.-3-style masks to {ARTIFACT_DIR}/fig3_{profile.name}_*.ppm")


if __name__ == "__main__":
    main()
