#!/usr/bin/env python
"""Time-dynamic MetaSeg: online quality monitoring of a video stream.

This example follows Section III of the paper: a KITTI-like video dataset
with sparse ground truth, a weaker network under test (MobilenetV2 profile),
a stronger reference network providing pseudo ground truth (Xception65
profile), segment tracking over time, and meta models trained on different
training-data compositions (R / RA / RAP / RP / P).

The script prints

* tracking statistics (how long segments survive),
* AUROC of false-positive detection as a function of the number of
  considered frames (the Fig. 2 quantity),
* the best configuration per composition (the Table II quantity),
* the improvement over a single-frame linear-model baseline.

Run with::

    python examples/video_quality_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    KittiLikeDataset,
    SimulatedSegmentationNetwork,
    TimeDynamicPipeline,
    mobilenetv2_profile,
    xception65_profile,
)
from repro.segmentation.scene import SceneConfig
from repro.segmentation.sequence import SequenceConfig


def main() -> None:
    # --- synthetic KITTI-like video data ------------------------------------
    dataset = KittiLikeDataset(
        n_sequences=3,
        sequence_config=SequenceConfig(
            n_frames=10, scene_config=SceneConfig(height=80, width=160)
        ),
        labeled_stride=3,
        random_state=0,
    )
    print(f"{dataset.n_sequences} sequences x {dataset.n_frames_per_sequence} frames, "
          f"{dataset.n_labeled_frames()} frames with ground truth "
          "(the paper has 29 sequences / ~12k frames / 142 labelled)")

    # --- networks: under test + pseudo-ground-truth reference ---------------
    pipeline = TimeDynamicPipeline(
        test_network=SimulatedSegmentationNetwork(mobilenetv2_profile(), random_state=1),
        reference_network=SimulatedSegmentationNetwork(xception65_profile(), random_state=2),
        gradient_boosting_params={"n_estimators": 30, "max_depth": 3, "max_features": "sqrt"},
        neural_network_params={"hidden_layer_sizes": (24,), "n_epochs": 60},
    )

    print("\nrunning per-frame inference, pseudo labelling and segment tracking ...")
    sequences = pipeline.process_dataset(dataset)
    lengths = np.concatenate(
        [list(seq.tracker.track_lengths().values()) for seq in sequences]
    )
    print(f"  {int(lengths.size)} tracks, mean length {lengths.mean():.2f} frames, "
          f"max length {int(lengths.max())} frames")

    # --- meta tasks over time-series lengths and compositions ----------------
    print("\nevaluating meta classification/regression "
          "(compositions R and RP, gradient boosting + neural network) ...")
    result = pipeline.run_protocol(
        sequences,
        n_frames_list=(0, 2, 4, 6),
        compositions=("R", "RP"),
        methods=("gradient_boosting", "neural_network"),
        n_runs=3,
        random_state=3,
    )
    print(f"  {result.n_real_segments} segments with real targets, "
          f"{result.n_pseudo_segments} with pseudo targets")

    for composition in ("R", "RP"):
        for method in ("gradient_boosting", "neural_network"):
            series = result.auroc_series(composition, method)
            rendered = "  ".join(f"{n}: {mean:.3f}" for n, (mean, _std) in series.items())
            print(f"  AUROC vs #frames  [{composition:<2s} {method:<17s}]  {rendered}")

    print("\nbest configuration per composition (Table II style):")
    for composition in ("R", "RP"):
        for method in ("gradient_boosting", "neural_network"):
            best_cls = result.best_classification(composition, method)
            best_reg = result.best_regression(composition, method)
            print(f"  {composition:<3s} {method:<17s} "
                  f"ACC {100 * best_cls['accuracy'][0]:5.2f}%  "
                  f"AUROC {100 * best_cls['auroc'][0]:5.2f}% (@{best_cls['n_frames']} frames)  "
                  f"R2 {100 * best_reg['r2'][0]:5.2f}% (@{best_reg['n_frames']} frames)")

    reference = pipeline.single_frame_linear_reference(sequences, n_runs=3, random_state=4)
    best_gb = result.best_classification("R", "gradient_boosting")
    best_gb_reg = result.best_regression("R", "gradient_boosting")
    print("\nsingle-frame linear baseline vs. time-dynamic gradient boosting "
          "(the paper reports +5.04 pp. AUROC / +5.63 pp. R2):")
    print(f"  AUROC {100 * reference['auroc'][0]:5.2f}%  ->  {100 * best_gb['auroc'][0]:5.2f}%")
    print(f"  R2    {100 * reference['r2'][0]:5.2f}%  ->  {100 * best_gb_reg['r2'][0]:5.2f}%")


if __name__ == "__main__":
    main()
