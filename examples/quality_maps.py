#!/usr/bin/env python
"""Segment-wise quality maps: reproducing the Fig. 1 visualisation.

Meta regression predicts every predicted segment's IoU *without ground
truth*.  This example trains the meta regressor on a handful of images,
applies it to a held-out image and writes the four Fig.-1 panels (ground
truth, prediction, true IoU, predicted IoU) as PPM files, plus an ASCII
preview of the predicted-quality map.

It also demonstrates the multi-resolution extension ([18] in the paper):
the same image is additionally processed with a nested-crop ensemble and the
extended metrics are compared against the plain single-inference metrics.

Run with::

    python examples/quality_maps.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import (
    CityscapesLikeDataset,
    MetaSegPipeline,
    SimulatedSegmentationNetwork,
    xception65_profile,
)
from repro.core.meta_regression import MetaRegressor
from repro.core.multiresolution import MultiResolutionInference
from repro.core.visualization import dataset_iou_maps, fig1_panels, render_ascii, write_ppm
from repro.evaluation.regression import r2_score
from repro.segmentation.scene import SceneConfig

ARTIFACT_DIR = Path(__file__).resolve().parent / "artifacts"


def main() -> None:
    dataset = CityscapesLikeDataset(
        n_train=0,
        n_val=16,
        scene_config=SceneConfig(height=96, width=192),
        random_state=4,
    )
    network = SimulatedSegmentationNetwork(xception65_profile(), random_state=5)
    pipeline = MetaSegPipeline(network)

    # Train the meta regressor on all but the last validation image.
    training_samples = dataset.val_samples()[:-1]
    held_out = dataset.val_samples()[-1]
    training_metrics = pipeline.extract_dataset(training_samples)
    regressor = MetaRegressor(method="linear", penalty=1.0).fit(training_metrics)

    # Apply to the held-out image and assemble the Fig. 1 panels.
    probs = network.predict_probabilities(held_out.labels, index=len(training_samples))
    image_metrics = pipeline.extractor.extract_full(
        probs, gt_labels=held_out.labels, image_id=held_out.image_id
    )
    predicted_iou = regressor.predict(image_metrics.dataset)
    true_iou = image_metrics.dataset.target_iou()
    print(f"held-out image: {len(image_metrics.dataset)} segments, "
          f"IoU prediction R2 = {100 * r2_score(true_iou, predicted_iou):.1f}%")

    maps = dataset_iou_maps(image_metrics.dataset, image_metrics.prediction, predicted_iou)
    panels = fig1_panels(
        held_out.labels, image_metrics.prediction, maps["true"], maps["predicted"]
    )
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    for name, rgb in panels.items():
        write_ppm(ARTIFACT_DIR / f"fig1_{name}.ppm", rgb)
    print(f"wrote Fig.-1 panels to {ARTIFACT_DIR}/fig1_*.ppm")

    predicted_map = np.zeros(image_metrics.prediction.components.shape)
    for segment_id, value in maps["predicted"].items():
        predicted_map[image_metrics.prediction.components == segment_id] = value
    print("\npredicted segment quality (bright = high predicted IoU):")
    print(render_ascii(predicted_map, width=72))

    # Multi-resolution ensemble (the [18] extension).
    pyramid = MultiResolutionInference(network, crop_fractions=(1.0, 0.8, 0.6))
    extended = pyramid.extract(held_out.labels, index=999, image_id=held_out.image_id)
    extra = [name for name in extended.feature_names if name.endswith(("_ens_mean", "_ens_var"))]
    print(f"\nmulti-resolution ensemble adds {len(extra)} metrics: {', '.join(extra)}")


if __name__ == "__main__":
    main()
