"""Command-line entry point: ``python -m repro``.

Nine subcommands expose the unified experiment API headlessly:

* ``python -m repro run config.json``       — execute an experiment config
  and print its Table-style summary (``--output report.json`` writes the
  full report, ``--timings`` includes wall-clock stage timings;
  ``--trace`` prints the hierarchical span tree and ``--trace-out t.json``
  exports it in Chrome ``trace_event`` format — load in ``chrome://tracing``
  or Perfetto; ``--backend``/``--workers``/``--streaming`` override the
  config's execution section, e.g. ``--backend process --workers 4`` for
  sharded multi-process execution — bitwise identical to serial;
  ``--cache`` / ``--cache-dir`` serve repeated runs from the
  content-addressed result store);
* ``python -m repro trace config.json``     — ``run`` with tracing always
  on: prints the span tree and writes the Chrome trace (``--trace-out``,
  default ``trace.json``); the report payload is bitwise identical to an
  untraced run;
* ``python -m repro sweep sweep.json``      — expand a declarative grid
  over dotted config fields, run every point with result caching on by
  default (``--no-cache`` disables it), and print a summary table plus a
  structural diff of each point's deterministic report vs. the first;
* ``python -m repro serve --model SPEC``    — fit (or load) a persistent
  single-frame scoring model and expose it over HTTP: ``SPEC`` is either a
  metaseg config JSON path (fit once, persist to the store when caching is
  on) or the hex content key of a previously fitted model (load, no refit);
  see :mod:`repro.serve`;
* ``python -m repro worker --connect H:P`` — attach one dispatch worker to
  a running distributed coordinator's work queue (see
  :mod:`repro.dispatch`); ``--id`` names the worker, ``--fault-plan FILE``
  loads a deterministic fault-injection plan (testing/CI only);
* ``python -m repro cache info|clear|prune`` — inspect, evict or bound the
  result store (``--cache-dir`` / ``$REPRO_CACHE_DIR`` pick the root;
  ``prune`` evicts least-recently-used entries down to ``--max-entries`` /
  ``--max-bytes``);
* ``python -m repro list``                  — show every registry and its
  entries (``--json`` for machine-readable output);
* ``python -m repro describe KIND [NAME]``  — document one registry or one
  entry (e.g. ``python -m repro describe networks mobilenetv2``);
* ``python -m repro analyze [PATHS]``       — run the AST-based invariant
  linter (determinism, parity-gate, config-contract, state-schema and
  concurrency rules; see :mod:`repro.analysis`) over the source tree;
  exit 0 clean / 1 findings, ``--json`` for machine output, ``--baseline``
  to accept known findings, ``--list-rules`` to enumerate the rules.

Reports are deterministic: the same config (and therefore the same single
seed) produces bitwise-identical ``--output`` files — whether computed or
served from cache — which makes sharded, swept and scripted reproduction
runs diffable.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.api.config import ConfigError, ExperimentConfig
from repro.api.registry import RegistryError, all_registries


def _resolve_store(args: argparse.Namespace):
    """The ResultStore selected by the caching flags, or ``None``.

    ``--cache-dir PATH`` implies caching at PATH; bare ``--cache`` uses the
    default root (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``).
    """
    cache_dir = getattr(args, "cache_dir", None)
    if not cache_dir and not getattr(args, "cache", False):
        return None
    from repro.store import ResultStore

    return ResultStore(cache_dir or None)


def _write_output_json(path_text: str, text: str, what: str) -> Optional[int]:
    """Write a JSON document, creating parent directories; 2 on failure.

    Shared by ``run`` and ``sweep`` so both honour the same contract: a
    missing parent directory is created, any I/O failure is a one-line
    diagnostic + exit code 2, never a traceback.
    """
    output = Path(path_text)
    try:
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(text)
    except OSError as exc:
        print(f"error: cannot write {what} {output}: {exc}", file=sys.stderr)
        return 2
    print(f"{what} written to {output}")
    return None


def _emit_trace(tracer, show_tree: bool, trace_out: Optional[str]) -> Optional[int]:
    """Print and/or export a collected trace; 2 on a write failure.

    The export is Chrome ``trace_event`` JSON (written atomically), loadable
    in ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    from repro.obs import format_span_tree, trace_to_chrome, write_json

    if show_tree:
        print(f"trace {tracer.trace_id}:")
        for line in format_span_tree(tracer.records()):
            print("  " + line)
    if trace_out:
        try:
            write_json(trace_out, trace_to_chrome(tracer))
        except OSError as exc:
            print(f"error: cannot write trace {trace_out}: {exc}", file=sys.stderr)
            return 2
        print(f"trace written to {trace_out} (chrome://tracing / ui.perfetto.dev)")
    return None


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api.runner import Runner

    path = Path(args.config)
    try:
        # Deferred validation: a CLI override must be able to fix the very
        # field it overrides (e.g. --workers 4 over a bad config value).
        config = ExperimentConfig.from_json(path.read_text(), validate=False)
    except OSError as exc:
        print(f"error: cannot read config {path}: {exc}", file=sys.stderr)
        return 2
    except (ValueError, TypeError) as exc:
        print(f"error: invalid config {path}: {exc}", file=sys.stderr)
        return 2
    if args.seed is not None:
        config.seed = args.seed
    if args.backend is not None:
        config.execution.backend = args.backend
    if args.workers is not None:
        config.execution.workers = args.workers
    if args.streaming is not None:
        config.execution.streaming = args.streaming
    try:
        config.validate()
    except ConfigError as exc:
        print(f"error: invalid config {path}: {exc}", file=sys.stderr)
        return 2
    tracer = None
    if args.trace or args.trace_out:
        from repro.obs import Tracer

        tracer = Tracer()
    report = Runner(store=_resolve_store(args), tracer=tracer).run(config)
    print("\n".join(report.summary_rows()))
    if report.cache:
        hit = "hit" if report.cache.get("hit") else "miss"
        print(f"cache: {hit} ({str(report.cache.get('key'))[:12]})")
    if args.output:
        failed = _write_output_json(
            args.output, report.to_json(include_timings=args.timings) + "\n", "report"
        )
        if failed is not None:
            return failed
    elif args.timings:
        for stage, seconds in report.timings.items():
            print(f"timing {stage}: {seconds:.3f}s")
    if tracer is not None:
        failed = _emit_trace(tracer, args.trace, args.trace_out)
        if failed is not None:
            return failed
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import SweepConfig, run_sweep

    path = Path(args.config)
    try:
        sweep = SweepConfig.from_file(path)
    except OSError as exc:
        print(f"error: cannot read sweep config {path}: {exc}", file=sys.stderr)
        return 2
    except (ValueError, TypeError) as exc:
        print(f"error: invalid sweep config {path}: {exc}", file=sys.stderr)
        return 2
    store = None
    if not args.no_cache:
        from repro.store import ResultStore

        store = ResultStore(args.cache_dir or None)
    tracer = None
    if args.trace or args.trace_out:
        from repro.obs import Tracer

        tracer = Tracer()
    result = run_sweep(
        sweep,
        store=store,
        no_cache=args.no_cache,
        backend=args.backend,
        workers=args.workers,
        streaming=args.streaming,
        tracer=tracer,
    )
    print("\n".join(result.summary_rows()))
    if args.output:
        failed = _write_output_json(
            args.output,
            result.to_json(include_run_info=args.timings) + "\n",
            "sweep result",
        )
        if failed is not None:
            return failed
    if tracer is not None:
        failed = _emit_trace(tracer, args.trace, args.trace_out)
        if failed is not None:
            return failed
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.store import ResultStore

    store = ResultStore(args.cache_dir or None)
    if args.action == "info":
        stats = store.stats()
        print(f"cache root: {stats['root']}")
        print(f"entries: {stats['n_entries']}  payload bytes: {stats['payload_bytes']}")
        for meta in store.entries():
            provenance = meta.get("provenance", {})
            print(
                f"  {str(meta.get('key'))[:12]}  {meta.get('codec'):<6}  "
                f"{int(meta.get('size_bytes', 0)):>9}B  "
                f"{provenance.get('type', '?')}/{provenance.get('kind', '?')}"
            )
        return 0
    if args.action == "prune":
        if args.max_entries is None and args.max_bytes is None:
            print(
                "error: cache prune needs --max-entries and/or --max-bytes",
                file=sys.stderr,
            )
            return 2
        removed = store.prune(max_entries=args.max_entries, max_bytes=args.max_bytes)
        stats = store.stats()
        print(
            f"pruned {removed} cache entr{'y' if removed == 1 else 'ies'}; "
            f"{stats['n_entries']} kept ({stats['payload_bytes']} payload bytes) "
            f"in {store.root}"
        )
        return 0
    removed = store.clear()
    print(f"evicted {removed} cache entr{'y' if removed == 1 else 'ies'} from {store.root}")
    return 0


def _is_store_key(text: str) -> bool:
    """True when the model spec looks like a content key, not a file path."""
    return len(text) >= 8 and all(ch in "0123456789abcdef" for ch in text)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.api.fitted import FittedModel
    from repro.api.runner import Runner
    from repro.serve import DEFAULT_MAX_REQUEST_BYTES, ScoringServer, ScoringService

    store = _resolve_store(args)
    spec = args.model
    if _is_store_key(spec):
        if store is None:
            from repro.store import ResultStore

            store = ResultStore(None)
        from repro.store import StoreError

        try:
            state = store.get(spec, codec="json")
        except StoreError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if state is None:
            print(
                f"error: no fitted model under key {spec!r} in {store.root}",
                file=sys.stderr,
            )
            return 2
        model = FittedModel.from_state(state)
        print(f"model: loaded from store ({spec[:12]})")
    else:
        path = Path(spec)
        try:
            config = json.loads(path.read_text())
        except OSError as exc:
            print(f"error: cannot read config {path}: {exc}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"error: invalid config {path}: {exc}", file=sys.stderr)
            return 2
        model = Runner(store=store).fit(config)
        if model.cache:
            hit = "hit" if model.cache.get("hit") else "miss"
            print(f"model: cache {hit} ({str(model.cache.get('key'))[:12]})")
        else:
            print("model: fitted (uncached; use --cache to persist)")
    tracer = None
    if args.trace_out:
        from repro.obs import Tracer

        tracer = Tracer()
    service = ScoringService(model)
    server = ScoringServer(
        service,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        max_request_bytes=(
            args.max_request_bytes
            if args.max_request_bytes is not None
            else DEFAULT_MAX_REQUEST_BYTES
        ),
        verbose=args.verbose,
        tracer=tracer,
    )
    # The smoke script parses this line for the (possibly ephemeral) port.
    print(
        f"serving on {server.url} "
        f"(workers={args.workers}, queue={args.queue_depth})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        if tracer is not None:
            failed = _emit_trace(tracer, show_tree=False, trace_out=args.trace_out)
            if failed is not None:
                return failed
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.dispatch import FaultPlan, FaultPlanError, worker_main

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        print(
            f"error: --connect expects HOST:PORT, got {args.connect!r}",
            file=sys.stderr,
        )
        return 2
    fault_plan = None
    if args.fault_plan:
        path = Path(args.fault_plan)
        try:
            fault_plan = FaultPlan.from_json(path.read_text())
        except OSError as exc:
            print(f"error: cannot read fault plan {path}: {exc}", file=sys.stderr)
            return 2
        except FaultPlanError as exc:
            print(f"error: invalid fault plan {path}: {exc}", file=sys.stderr)
            return 2
    return worker_main(
        host, int(port_text), worker_id=args.id, fault_plan=fault_plan
    )


def _cmd_list(args: argparse.Namespace) -> int:
    registries = all_registries()
    if args.json:
        payload = {kind: registry.available() for kind, registry in registries.items()}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for kind, registry in registries.items():
        print(f"{kind} — {registry.description}")
        for name in registry.available():
            print(f"  {name:<24s} {registry.describe(name)}")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    registries = all_registries()
    if args.registry not in registries:
        print(
            f"error: unknown registry {args.registry!r}; "
            f"available: {', '.join(registries)}",
            file=sys.stderr,
        )
        return 2
    registry = registries[args.registry]
    if args.name is None:
        print(f"{registry.kind} — {registry.description}")
        for name in registry.available():
            print(f"  {name:<24s} {registry.describe(name)}")
        return 0
    try:
        entry = registry.get(args.name)
    except RegistryError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(f"{registry.kind}/{args.name}")
    doc = getattr(entry, "__doc__", None) if callable(entry) else None
    if doc:
        print(doc.strip())
    else:
        print(repr(entry))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_cli

    return run_cli(args)


def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Unified experiment CLI of the Rottmann et al. (DATE 2020) reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute an experiment config (JSON)")
    run.add_argument("config", help="path to an ExperimentConfig JSON file")
    run.add_argument("--output", help="write the full report JSON to this path")
    run.add_argument("--seed", type=int, default=None, help="override the config seed")
    run.add_argument(
        "--timings", action="store_true", help="include wall-clock stage timings"
    )
    run.add_argument(
        "--backend", default=None, metavar="NAME",
        help="override the execution backend (serial/thread/process/"
             "distributed; all bitwise identical)",
    )
    run.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="override the worker / shard count of the execution backend",
    )
    run.add_argument(
        "--streaming", action=argparse.BooleanOptionalAction, default=None,
        help="fold results chunk by chunk (peak memory O(chunk), same "
             "numbers); --no-streaming overrides a config that enables it",
    )
    run.add_argument(
        "--cache", action="store_true",
        help="serve/store this run through the content-addressed result "
             "store (bitwise identical to a fresh run)",
    )
    run.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="result-store root (implies --cache; default "
             "$REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    run.add_argument(
        "--trace", action="store_true",
        help="collect hierarchical stage spans and print the span tree "
             "(telemetry only; the report payload is unchanged)",
    )
    run.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the collected trace as Chrome trace_event JSON "
             "(chrome://tracing / ui.perfetto.dev); implies tracing",
    )
    run.set_defaults(func=_cmd_run)

    trace = sub.add_parser(
        "trace",
        help="run an experiment config with tracing on and export the trace",
    )
    trace.add_argument("config", help="path to an ExperimentConfig JSON file")
    trace.add_argument("--seed", type=int, default=None, help="override the config seed")
    trace.add_argument(
        "--backend", default=None, metavar="NAME",
        help="override the execution backend (serial/thread/process/distributed)",
    )
    trace.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="override the worker / shard count of the execution backend",
    )
    trace.add_argument(
        "--streaming", action=argparse.BooleanOptionalAction, default=None,
        help="fold results chunk by chunk (same numbers)",
    )
    trace.add_argument(
        "--cache", action="store_true",
        help="serve/store this run through the content-addressed result store",
    )
    trace.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="result-store root (implies --cache)",
    )
    trace.add_argument(
        "--trace-out", default="trace.json", metavar="FILE",
        help="Chrome trace_event JSON output path (default: trace.json)",
    )
    # `trace` is `run` with tracing forced on; the report summary prints too.
    trace.set_defaults(func=_cmd_run, trace=True, output=None, timings=False)

    sweep = sub.add_parser(
        "sweep",
        help="expand a declarative config grid and run every point (cached)",
    )
    sweep.add_argument("config", help="path to a SweepConfig JSON file")
    sweep.add_argument(
        "--output", help="write the full sweep result JSON to this path"
    )
    sweep.add_argument(
        "--no-cache", action="store_true",
        help="recompute every point instead of using the result store",
    )
    sweep.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="result-store root (default $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    sweep.add_argument(
        "--backend", default=None, metavar="NAME",
        help="override the execution backend of every point (serial/thread/"
             "process/distributed; all bitwise identical)",
    )
    sweep.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="override the worker / shard count of every point",
    )
    sweep.add_argument(
        "--streaming", action=argparse.BooleanOptionalAction, default=None,
        help="override the streaming flag of every point",
    )
    sweep.add_argument(
        "--timings", action="store_true",
        help="include run info (wall-clock, cache hits) in --output",
    )
    sweep.add_argument(
        "--trace", action="store_true",
        help="collect per-point spans and print the span tree",
    )
    sweep.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the collected sweep trace as Chrome trace_event JSON; "
             "implies tracing",
    )
    sweep.set_defaults(func=_cmd_sweep)

    serve = sub.add_parser(
        "serve",
        help="serve a fitted scoring model over HTTP (fit once, score many)",
    )
    serve.add_argument(
        "--model", required=True, metavar="SPEC",
        help="metaseg config JSON path (fit, persist when caching is on) or "
             "the hex content key of an already-fitted model in the store",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR", help="bind address"
    )
    serve.add_argument(
        "--port", type=int, default=8000, metavar="N",
        help="bind port (0 picks an ephemeral port, printed at startup)",
    )
    serve.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="long-lived scoring worker threads",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=16, metavar="N",
        help="bound on accepted-but-unhandled connections; beyond it new "
             "requests get an immediate 503 (backpressure)",
    )
    serve.add_argument(
        "--max-request-bytes", type=int, default=None, metavar="N",
        help="request-body cap (413 beyond it; default 64 MiB)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="per-request logging"
    )
    serve.add_argument(
        "--cache", action="store_true",
        help="fit/load the model through the content-addressed result store",
    )
    serve.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="result-store root (implies --cache; default "
             "$REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    serve.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="record one span per request and write the Chrome trace_event "
             "JSON on shutdown (live metrics are always at GET /metrics)",
    )
    serve.set_defaults(func=_cmd_serve)

    worker = sub.add_parser(
        "worker",
        help="attach one dispatch worker to a running distributed work queue",
    )
    worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address (printed by the distributed backend / "
             "returned by Coordinator.address)",
    )
    worker.add_argument(
        "--id", default=None, metavar="NAME",
        help="worker id reported to the coordinator (default: pid-derived)",
    )
    worker.add_argument(
        "--fault-plan", default=None, metavar="FILE",
        help="JSON FaultPlan this worker should execute (testing/CI only; "
             "$REPRO_DISPATCH_FAULTS is honoured when unset)",
    )
    worker.set_defaults(func=_cmd_worker)

    cache = sub.add_parser(
        "cache", help="inspect, evict or bound the content-addressed result store"
    )
    cache.add_argument("action", choices=("info", "clear", "prune"), help="what to do")
    cache.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="result-store root (default $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    cache.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        help="prune: evict least-recently-used entries beyond this count",
    )
    cache.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="prune: evict least-recently-used entries until payload bytes fit",
    )
    cache.set_defaults(func=_cmd_cache)

    lst = sub.add_parser("list", help="list every registry and its entries")
    lst.add_argument("--json", action="store_true", help="machine-readable output")
    lst.set_defaults(func=_cmd_list)

    describe = sub.add_parser("describe", help="document a registry or one entry")
    describe.add_argument("registry", help="registry kind (see `list`)")
    describe.add_argument("name", nargs="?", default=None, help="entry name")
    describe.set_defaults(func=_cmd_describe)

    analyze = sub.add_parser(
        "analyze",
        help="run the static invariant linter over the source tree",
    )
    analyze.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to analyze (default: src/repro)",
    )
    analyze.add_argument(
        "--json", action="store_true", help="machine-readable findings on stdout"
    )
    analyze.add_argument(
        "--output", default=None, metavar="FILE",
        help="also write the findings JSON to this path",
    )
    analyze.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="accept the findings fingerprinted in this committed baseline",
    )
    analyze.add_argument(
        "--write-baseline", action="store_true",
        help="(re)write --baseline from the current findings and exit 0",
    )
    analyze.add_argument(
        "--rules", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    analyze.add_argument(
        "--tests", default=None, metavar="DIR",
        help="test tree for the parity-gate audit (default: <root>/tests)",
    )
    analyze.add_argument(
        "--configs", default=None, metavar="DIR",
        help="config JSONs for the override contract "
             "(default: <root>/examples/configs)",
    )
    analyze.add_argument(
        "--list-rules", action="store_true", help="list the registered rules"
    )
    analyze.set_defaults(func=_cmd_analyze)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except RegistryError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except (ValueError, TypeError, OSError) as exc:
        # One-line diagnostic instead of a traceback: config errors
        # (ConfigError is a ValueError) and I/O failures both land here.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
