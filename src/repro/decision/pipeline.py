"""End-to-end Bayes-vs-Maximum-Likelihood comparison (Figs. 3-5).

Protocol:

1. estimate position-specific class priors on the training split of a
   Cityscapes-like dataset (Fig. 4);
2. run the segmentation network on the validation split and decode its
   softmax output with both the Bayes rule and the ML rule (Fig. 3);
3. collect segment-wise precision and recall for the chosen category
   ("human") under each rule and compare their empirical CDFs, stochastic
   dominance and non-detection rates (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import DECISION_RULES
from repro.core.batching import (
    extraction_defaults,
    iter_indexed_chunks,
    map_ordered,
    normalize_max_workers,
)
from repro.decision.evaluation import ClassPrecisionRecall, collect_precision_recall
from repro.decision.priors import PixelPriorEstimator
from repro.decision.rules import apply_rule
from repro.evaluation.segmentation import pixel_accuracy
from repro.segmentation.datasets import CityscapesLikeDataset, SegmentationSample
from repro.segmentation.labels import LabelSpace, cityscapes_label_space
from repro.segmentation.network import SimulatedSegmentationNetwork

if TYPE_CHECKING:  # pragma: no cover - import would cycle at runtime
    from repro.api.config import ExtractionConfig


@dataclass
class DecisionRuleResult:
    """Comparison of decision rules for one network on one dataset."""

    network_name: str
    category: str
    per_rule: Dict[str, ClassPrecisionRecall] = field(default_factory=dict)
    pixel_accuracy: Dict[str, float] = field(default_factory=dict)

    def non_detection_rates(self) -> Dict[str, float]:
        """F^r(0) per rule: fraction of completely overlooked GT segments."""
        return {name: stats.non_detection_rate() for name, stats in self.per_rule.items()}

    def summary_rows(self) -> List[str]:
        """Human-readable summary of the Fig. 5 quantities."""
        rows = [f"network: {self.network_name}  category: {self.category}"]
        for name, stats in self.per_rule.items():
            rows.append(
                f"  {name:<12s} mean precision {stats.mean_precision():.3f}  "
                f"mean recall {stats.mean_recall():.3f}  "
                f"non-detection F^r(0) {stats.non_detection_rate():.3f}  "
                f"pixel acc {self.pixel_accuracy.get(name, float('nan')):.3f}  "
                f"(n_pred={stats.n_predicted_segments}, n_gt={stats.n_ground_truth_segments})"
            )
        return rows


class DecisionRuleComparison:
    """Runs the Section IV experiments on a Cityscapes-like dataset."""

    def __init__(
        self,
        network: SimulatedSegmentationNetwork,
        label_space: Optional[LabelSpace] = None,
        category: str = "human",
        prior_laplace_smoothing: float = 2.0,
        prior_spatial_sigma: float = 2.0,
        prior_global_blend: float = 0.25,
        extraction: Optional["ExtractionConfig"] = None,
    ) -> None:
        self.network = network
        self.label_space = label_space or cityscapes_label_space()
        self.category = category
        _, self._default_max_workers = extraction_defaults(extraction)
        self.prior_estimator = PixelPriorEstimator(
            label_space=self.label_space,
            laplace_smoothing=prior_laplace_smoothing,
            spatial_sigma=prior_spatial_sigma,
            global_blend=prior_global_blend,
        )
        self._priors: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ ---
    def fit_priors(self, samples: "Iterable[SegmentationSample]") -> np.ndarray:
        """Estimate position-specific priors from training samples (Fig. 4).

        Accepts any iterable (consumed once), so a lazy sample stream works
        without materialising the training split.
        """
        self.prior_estimator.fit(sample.labels for sample in samples)
        self._priors = self.prior_estimator.priors()
        return self._priors

    def set_priors(self, priors: np.ndarray) -> None:
        """Install an externally fitted (H, W, C) prior field.

        Used by the sharded execution backend: the parent process fits the
        priors once and ships the array to the shard workers, which is both
        cheaper than refitting per worker and trivially bit-identical.
        """
        self._priors = np.asarray(priors, dtype=np.float64)

    @property
    def priors(self) -> np.ndarray:
        """The fitted (H, W, C) prior field."""
        if self._priors is None:
            raise RuntimeError("call fit_priors before using the ML rule")
        return self._priors

    def category_prior_heatmap(self) -> np.ndarray:
        """(H, W) prior heatmap of the configured category (Fig. 4)."""
        return self.prior_estimator.category_prior(self.category)

    # ------------------------------------------------------------------ ---
    def decode(self, probs: np.ndarray, rule: str, strength: float = 1.0) -> np.ndarray:
        """Decode a probability field with the requested decision rule.

        The built-in rules dispatch through :func:`apply_rule`; any other
        name is resolved via the ``decision_rules`` registry and called as
        ``rule_fn(probs, priors=..., strength=...)`` (``priors`` is ``None``
        when no priors were fitted), so custom registered rules plug into
        the comparison without pipeline changes.
        """
        if rule == "bayes":
            return apply_rule(probs, rule=rule)
        if rule in ("ml", "interpolated"):
            return apply_rule(probs, rule=rule, priors=self.priors, strength=strength)
        custom_rule = DECISION_RULES.get(rule)
        return custom_rule(probs, priors=self._priors, strength=strength)

    def _compare_one(
        self,
        sample: SegmentationSample,
        index: int,
        rules: Sequence[str],
        strengths: Dict[str, float],
    ) -> Dict[str, Tuple[List[float], List[float], float]]:
        """Per-rule (precision samples, recall samples, pixel accuracy) of one sample."""
        probs = self.network.predict_probabilities(sample.labels, index=index)
        out: Dict[str, Tuple[List[float], List[float], float]] = {}
        for rule in rules:
            decoded = self.decode(probs, rule, strength=strengths.get(rule, 1.0))
            precision, recall = collect_precision_recall(
                decoded,
                sample.labels,
                category=self.category,
                label_space=self.label_space,
            )
            out[rule] = (precision, recall, pixel_accuracy(sample.labels, decoded))
        return out

    def iter_compare_samples(
        self,
        samples: "Iterable[SegmentationSample]",
        rules: Sequence[str] = ("bayes", "ml"),
        index_offset: int = 0,
        strengths: Optional[Dict[str, float]] = None,
        max_workers: Optional[int] = None,
        chunk_size: int = 8,
    ) -> "Iterable[Dict[str, Tuple[List[float], List[float], float]]]":
        """Yield the per-sample rule results in sample order.

        The lazy producer side of :meth:`compare`: samples are consumed one
        chunk at a time (chunks widen to ``max_workers`` so the requested
        thread fan-out is achievable), and results are yielded in input
        order, so any fold over this stream is bit-identical to the serial
        path.  Shard workers of the process execution backend call this with
        an ``index_offset`` equal to their shard start.
        """
        strengths = strengths or {}
        max_workers = normalize_max_workers(max_workers, self._default_max_workers)
        for indexed in iter_indexed_chunks(samples, chunk_size, max_workers, index_offset):
            yield from map_ordered(
                lambda indexed_sample: self._compare_one(
                    indexed_sample[1], indexed_sample[0], rules, strengths
                ),
                indexed,
                max_workers=max_workers,
            )

    def fold_compare_results(
        self,
        per_sample: "Iterable[Dict[str, Tuple[List[float], List[float], float]]]",
        rules: Sequence[str] = ("bayes", "ml"),
    ) -> Tuple[DecisionRuleResult, int]:
        """Fold a stream of per-sample results into one DecisionRuleResult.

        The single reduction shared by the serial, streaming and sharded
        paths: per-rule statistics are extended in sample order and the
        pixel-accuracy sum is divided once at the end, so every path that
        produces the same per-sample stream folds to bitwise-equal numbers.
        Returns the result together with the number of samples consumed.
        """
        result = DecisionRuleResult(
            network_name=self.network.profile.name, category=self.category
        )
        for rule in rules:
            result.per_rule[rule] = ClassPrecisionRecall(rule_name=rule)
            result.pixel_accuracy[rule] = 0.0
        accuracy_sums = {rule: 0.0 for rule in rules}
        n_samples = 0
        for sample_result in per_sample:
            n_samples += 1
            for rule in rules:
                precision, recall, accuracy_value = sample_result[rule]
                result.per_rule[rule].extend(precision, recall)
                accuracy_sums[rule] += accuracy_value
        if not n_samples:
            raise ValueError("at least one evaluation sample is required")
        for rule in rules:
            result.pixel_accuracy[rule] = accuracy_sums[rule] / n_samples
        return result, n_samples

    def compare(
        self,
        samples: Sequence[SegmentationSample],
        rules: Sequence[str] = ("bayes", "ml"),
        index_offset: int = 0,
        strengths: Optional[Dict[str, float]] = None,
        max_workers: Optional[int] = None,
    ) -> DecisionRuleResult:
        """Run the comparison over evaluation samples (Fig. 5 protocol).

        Samples are independent, so ``max_workers`` > 1 evaluates them on a
        thread pool through the shared batched-execution layer.  The per-rule
        statistics are merged back in sample order, making the result
        bit-identical to the serial run.  ``max_workers=None`` falls back to
        the comparison's extraction config (serial by default).
        """
        if not samples:
            raise ValueError("at least one evaluation sample is required")
        result, _ = self.fold_compare_results(
            self.iter_compare_samples(
                samples, rules=rules, index_offset=index_offset,
                strengths=strengths, max_workers=max_workers,
            ),
            rules=rules,
        )
        return result

    def compare_streaming(
        self,
        samples: "Iterable[SegmentationSample]",
        rules: Sequence[str] = ("bayes", "ml"),
        index_offset: int = 0,
        strengths: Optional[Dict[str, float]] = None,
        max_workers: Optional[int] = None,
    ) -> Tuple[DecisionRuleResult, int]:
        """Never-materialise variant of :meth:`compare` for lazy sample streams.

        Folds the per-sample results as they are produced, so neither the
        sample list nor the per-sample result list is ever held in memory.
        Bitwise identical to :meth:`compare` on the same samples; also
        returns the number of samples consumed (the caller cannot ``len()``
        a stream).
        """
        return self.fold_compare_results(
            self.iter_compare_samples(
                samples, rules=rules, index_offset=index_offset,
                strengths=strengths, max_workers=max_workers,
            ),
            rules=rules,
        )

    # ------------------------------------------------------------------ ---
    def run_on_dataset(
        self,
        dataset: CityscapesLikeDataset,
        rules: Sequence[str] = ("bayes", "ml"),
    ) -> DecisionRuleResult:
        """Convenience wrapper: fit priors on train split, compare on val split."""
        self.fit_priors(dataset.train_samples())
        return self.compare(dataset.val_samples(), rules=rules)
