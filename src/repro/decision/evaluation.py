"""Segment-wise precision/recall evaluation of decision rules (Fig. 5).

For a chosen category (the paper uses "human" = person + rider), every
predicted segment contributes a precision value and every ground-truth segment
a recall value.  Fig. 5 compares the empirical CDFs of these values under the
Bayes and ML decision rules and reads off two effects:

* precision: F^p_ML ≺ F^p_B — Bayes values are typically larger
  (first-order stochastic dominance);
* recall: the opposite, and in particular F^r_B(0) > F^r_ML(0): the ML rule
  misses far fewer ground-truth segments entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.segments import extract_segments, segment_precision_recall
from repro.evaluation.distributions import EmpiricalCDF, first_order_dominates
from repro.segmentation.labels import LabelSpace, cityscapes_label_space
from repro.utils.validation import check_label_map


@dataclass
class ClassPrecisionRecall:
    """Segment-wise precision and recall samples for one decision rule."""

    rule_name: str
    precision_values: List[float] = field(default_factory=list)
    recall_values: List[float] = field(default_factory=list)

    def extend(self, precision: Iterable[float], recall: Iterable[float]) -> None:
        """Append new precision / recall samples."""
        self.precision_values.extend(float(v) for v in precision)
        self.recall_values.extend(float(v) for v in recall)

    @property
    def n_predicted_segments(self) -> int:
        """Number of predicted segments contributing precision values."""
        return len(self.precision_values)

    @property
    def n_ground_truth_segments(self) -> int:
        """Number of ground-truth segments contributing recall values."""
        return len(self.recall_values)

    def precision_cdf(self) -> EmpiricalCDF:
        """Empirical CDF F^p of the segment-wise precision."""
        return EmpiricalCDF.from_sample(self.precision_values)

    def recall_cdf(self) -> EmpiricalCDF:
        """Empirical CDF F^r of the segment-wise recall."""
        return EmpiricalCDF.from_sample(self.recall_values)

    def non_detection_rate(self) -> float:
        """F^r(0): fraction of ground-truth segments with zero recall."""
        return non_detection_rate(self.recall_values)

    def mean_precision(self) -> float:
        """Mean segment-wise precision."""
        if not self.precision_values:
            raise ValueError("no precision samples collected")
        return float(np.mean(self.precision_values))

    def mean_recall(self) -> float:
        """Mean segment-wise recall."""
        if not self.recall_values:
            raise ValueError("no recall samples collected")
        return float(np.mean(self.recall_values))


def non_detection_rate(recall_values: Sequence[float]) -> float:
    """Fraction of ground-truth segments that are completely overlooked."""
    values = np.asarray(list(recall_values), dtype=np.float64)
    if values.size == 0:
        raise ValueError("no recall samples provided")
    return float(np.mean(values == 0.0))


def collect_precision_recall(
    prediction_labels: np.ndarray,
    gt_labels: np.ndarray,
    category: str = "human",
    label_space: Optional[LabelSpace] = None,
    connectivity: int = 8,
    ignore_id: int = -1,
) -> Tuple[List[float], List[float]]:
    """Precision and recall samples of one image for one category.

    Returns (precision values of predicted segments, recall values of
    ground-truth segments), both restricted to the category's classes.
    """
    label_space = label_space or cityscapes_label_space()
    prediction_labels = check_label_map(prediction_labels, "prediction_labels")
    gt_labels = check_label_map(gt_labels, "gt_labels")
    class_ids = label_space.ids_in_category(category)
    prediction = extract_segments(prediction_labels, connectivity=connectivity)
    ground_truth = extract_segments(gt_labels, connectivity=connectivity, ignore_id=ignore_id)
    precision, recall = segment_precision_recall(
        prediction, ground_truth, class_ids=class_ids, ignore_id=ignore_id
    )
    return list(precision.values()), list(recall.values())


def precision_dominance(
    bayes: ClassPrecisionRecall, ml: ClassPrecisionRecall, tolerance: float = 0.03
) -> bool:
    """Check F^p_ML ≺ F^p_B (Bayes precision stochastically dominates ML's)."""
    return first_order_dominates(
        cdf_smaller=ml.precision_cdf(), cdf_larger=bayes.precision_cdf(), tolerance=tolerance
    )


def recall_dominance(
    bayes: ClassPrecisionRecall, ml: ClassPrecisionRecall, tolerance: float = 0.03
) -> bool:
    """Check F^r_B ≺ F^r_ML reversed: ML recall stochastically dominates Bayes'."""
    return first_order_dominates(
        cdf_smaller=bayes.recall_cdf(), cdf_larger=ml.recall_cdf(), tolerance=tolerance
    )
