"""False-negative reduction via decision rules (Section IV of the paper).

The maximum a-posteriori (Bayes/MAP) rule applied to a segmentation network's
softmax output systematically misses instances of rare classes because the
training-data class imbalance is baked into the posterior.  Section IV
proposes cost-based decision rules and in particular the Maximum-Likelihood
(ML) rule — the posterior divided by position-specific class priors — which
trades precision for recall and drastically reduces the number of completely
overlooked ground-truth segments.

* :mod:`repro.decision.priors` — estimation of pixel-wise class priors
  (Fig. 4);
* :mod:`repro.decision.rules` — Bayes, ML and general cost-based decision
  rules (eqs. (4)-(9), Fig. 3);
* :mod:`repro.decision.evaluation` — segment-wise precision/recall CDFs,
  stochastic dominance, non-detection rates (Fig. 5);
* :mod:`repro.decision.pipeline` — the end-to-end Bayes-vs-ML comparison.
"""

from repro.decision.priors import PixelPriorEstimator, uniform_priors
from repro.decision.rules import (
    bayes_rule,
    maximum_likelihood_rule,
    cost_based_rule,
    inverse_prior_costs,
    DecisionRule,
)
from repro.decision.evaluation import (
    ClassPrecisionRecall,
    collect_precision_recall,
    non_detection_rate,
)
from repro.decision.pipeline import DecisionRuleComparison, DecisionRuleResult

__all__ = [
    "PixelPriorEstimator",
    "uniform_priors",
    "bayes_rule",
    "maximum_likelihood_rule",
    "cost_based_rule",
    "inverse_prior_costs",
    "DecisionRule",
    "ClassPrecisionRecall",
    "collect_precision_recall",
    "non_detection_rate",
    "DecisionRuleComparison",
    "DecisionRuleResult",
]
