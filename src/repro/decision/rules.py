"""Decision rules on top of the softmax output (eqs. (1), (4)-(9)).

A decision rule maps the per-pixel class distribution f_z(y|x) to a predicted
class.  The paper discusses three families:

* **Bayes / MAP** (eq. (1)): argmax of the posterior — the standard rule,
  equivalent to a cost function that penalises every confusion equally;
* **cost-based rules** (eqs. (4)-(6)): minimise the expected confusion cost
  Σ_y ψ_z(ŷ, y) f_z(y|x);
* **Maximum Likelihood** (eqs. (7)-(9)): the special cost ψ_z(ŷ, y) = 1/p̂_z(y)
  which, via Bayes' theorem, amounts to dividing the posterior by the
  position-specific prior and therefore picks the class for which the
  observation is most *typical*, independent of class frequency.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.api.registry import DECISION_RULES
from repro.utils.validation import check_probability_field

#: Type alias: a decision rule maps an (H, W, C) probability field to an
#: (H, W) label map.
DecisionRule = Callable[[np.ndarray], np.ndarray]


@DECISION_RULES.register("bayes")
def bayes_rule(probs: np.ndarray) -> np.ndarray:
    """Maximum a-posteriori (MAP) decision: argmax_y f_z(y|x)."""
    probs = check_probability_field(probs)
    return np.argmax(probs, axis=2).astype(np.int64)


@DECISION_RULES.register("ml")
def maximum_likelihood_rule(probs: np.ndarray, priors: np.ndarray, epsilon: float = 1e-12) -> np.ndarray:
    """Maximum-Likelihood decision: argmax_y f_z(y|x) / p̂_z(y).

    Parameters
    ----------
    probs:
        (H, W, C) posterior (softmax) field.
    priors:
        Either an (H, W, C) position-specific prior field (the paper's
        position-wise application) or a length-C vector of global priors.
    epsilon:
        Numerical floor for the priors.
    """
    probs = check_probability_field(probs)
    priors = np.asarray(priors, dtype=np.float64)
    if priors.ndim == 1:
        if priors.shape[0] != probs.shape[2]:
            raise ValueError("global priors must have one entry per class")
        priors = priors.reshape(1, 1, -1)
    elif priors.shape != probs.shape:
        raise ValueError(
            f"priors shape {priors.shape} does not match probabilities {probs.shape}"
        )
    if np.any(priors < 0):
        raise ValueError("priors must be non-negative")
    likelihood = probs / np.maximum(priors, epsilon)
    return np.argmax(likelihood, axis=2).astype(np.int64)


def inverse_prior_costs(priors: np.ndarray, epsilon: float = 1e-12) -> np.ndarray:
    """Cost tensor ψ_z(ŷ, y) = 1/p̂_z(y) of the ML rule (eq. (7)).

    Returns an array with one cost per (pixel, true class); the cost is
    independent of the predicted class ŷ (for ŷ ≠ y), as in the paper.
    """
    priors = np.asarray(priors, dtype=np.float64)
    if np.any(priors < 0):
        raise ValueError("priors must be non-negative")
    return 1.0 / np.maximum(priors, epsilon)


def cost_based_rule(probs: np.ndarray, confusion_costs: np.ndarray) -> np.ndarray:
    """General cost-based decision (eqs. (5)-(6)).

    Parameters
    ----------
    probs:
        (H, W, C) posterior field.
    confusion_costs:
        Either a (C, C) matrix ψ(ŷ, y) of confusion costs (position
        independent) or an (H, W, C, C) tensor for position-specific costs.
        The diagonal (correct decisions) is ignored — it is forced to zero as
        in eq. (4).

    Returns
    -------
    (H, W) label map minimising the expected cost per pixel.
    """
    probs = check_probability_field(probs)
    height, width, n_classes = probs.shape
    costs = np.asarray(confusion_costs, dtype=np.float64)
    if costs.ndim == 2:
        if costs.shape != (n_classes, n_classes):
            raise ValueError("confusion_costs matrix must be (C, C)")
        costs = np.broadcast_to(costs, (height, width, n_classes, n_classes))
    elif costs.shape != (height, width, n_classes, n_classes):
        raise ValueError("confusion_costs tensor must be (H, W, C, C)")
    if np.any(costs < 0):
        raise ValueError("confusion costs must be non-negative")
    # Zero out the diagonal ψ(y, y) = 0.
    eye = np.eye(n_classes, dtype=bool)
    costs = np.where(eye.reshape(1, 1, n_classes, n_classes), 0.0, costs)
    # expected_cost[.., yhat] = sum_y psi(yhat, y) * p(y)
    expected_cost = np.einsum("hwij,hwj->hwi", costs, probs)
    return np.argmin(expected_cost, axis=2).astype(np.int64)


@DECISION_RULES.register("interpolated")
def interpolated_rule(
    probs: np.ndarray,
    priors: np.ndarray,
    strength: float,
    epsilon: float = 1e-12,
) -> np.ndarray:
    """Decision rule interpolating between Bayes (strength 0) and ML (strength 1).

    The posterior is divided by ``priors ** strength``; intermediate strengths
    correspond to milder cost asymmetries, which is the knob explored by the
    cost-sweep ablation of the Fig. 5 benchmark.
    """
    if not 0.0 <= strength <= 1.0:
        raise ValueError("strength must be in [0, 1]")
    probs = check_probability_field(probs)
    priors = np.asarray(priors, dtype=np.float64)
    if priors.ndim == 1:
        priors = priors.reshape(1, 1, -1)
    scaled = probs / np.maximum(priors, epsilon) ** strength
    return np.argmax(scaled, axis=2).astype(np.int64)


def apply_rule(
    probs: np.ndarray,
    rule: str = "bayes",
    priors: Optional[np.ndarray] = None,
    strength: float = 1.0,
) -> np.ndarray:
    """Convenience dispatcher used by the pipelines and benchmarks.

    Parameters
    ----------
    rule:
        ``"bayes"``, ``"ml"`` (maximum likelihood) or ``"interpolated"``.
    priors:
        Required for the ML and interpolated rules.
    strength:
        Interpolation strength for ``"interpolated"``.
    """
    if rule == "bayes":
        return bayes_rule(probs)
    if rule == "ml":
        if priors is None:
            raise ValueError("the ML rule requires priors")
        return maximum_likelihood_rule(probs, priors)
    if rule == "interpolated":
        if priors is None:
            raise ValueError("the interpolated rule requires priors")
        return interpolated_rule(probs, priors, strength)
    raise ValueError(f"unknown decision rule {rule!r}")
