"""Position-specific class prior estimation (Fig. 4 of the paper).

The ML decision rule divides the softmax posterior by the estimated a-priori
class probability p̂_z(y) *at pixel position z* (eq. (7)).  The priors are
estimated from training data as per-pixel class frequencies; Fig. 4 shows the
resulting heatmap for the class "human", which concentrates where pedestrians
actually occur (sidewalks).

Because per-position counts from a finite training set are noisy and can be
zero, the estimator supports Laplace smoothing and optional spatial (Gaussian)
smoothing, and it guarantees that the returned priors are a proper
distribution over classes at every pixel.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np
from scipy import ndimage

from repro.segmentation.labels import LabelSpace, cityscapes_label_space
from repro.utils.validation import check_label_map


def uniform_priors(height: int, width: int, n_classes: int) -> np.ndarray:
    """Uniform (H, W, C) priors — under which the ML rule equals the Bayes rule."""
    if height < 1 or width < 1 or n_classes < 2:
        raise ValueError("invalid prior field dimensions")
    return np.full((height, width, n_classes), 1.0 / n_classes, dtype=np.float64)


class PixelPriorEstimator:
    """Estimate pixel-wise class priors from ground-truth label maps.

    Parameters
    ----------
    label_space:
        Label space defining the number of classes.
    laplace_smoothing:
        Pseudo-count added to every (pixel, class) cell before normalisation;
        keeps the priors strictly positive so the ML division is well-defined.
    spatial_sigma:
        Optional Gaussian smoothing (in pixels) applied to the per-class count
        maps before normalisation; reduces estimation noise when only few
        training images are available.
    global_blend:
        Fraction in [0, 1) with which the position-specific priors are blended
        with the *global* (position-independent) class frequencies.  A small
        blend regularises positions that were never observed to contain a
        class, which keeps the ML rule from exploding there when the training
        set is small.
    """

    def __init__(
        self,
        label_space: Optional[LabelSpace] = None,
        laplace_smoothing: float = 1.0,
        spatial_sigma: float = 2.0,
        global_blend: float = 0.2,
    ) -> None:
        if laplace_smoothing <= 0:
            raise ValueError("laplace_smoothing must be positive (priors must not vanish)")
        if spatial_sigma < 0:
            raise ValueError("spatial_sigma must be non-negative")
        if not 0.0 <= global_blend < 1.0:
            raise ValueError("global_blend must be in [0, 1)")
        self.label_space = label_space or cityscapes_label_space()
        self.laplace_smoothing = float(laplace_smoothing)
        self.spatial_sigma = float(spatial_sigma)
        self.global_blend = float(global_blend)
        self.counts_: Optional[np.ndarray] = None
        self.n_images_: int = 0

    # ------------------------------------------------------------------ ---
    @property
    def n_classes(self) -> int:
        """Number of classes of the prior field."""
        return self.label_space.n_classes

    def fit(self, label_maps: Iterable[np.ndarray]) -> "PixelPriorEstimator":
        """Accumulate per-pixel class counts over the given label maps."""
        counts = None
        n_images = 0
        for labels in label_maps:
            labels = check_label_map(labels)
            if counts is None:
                counts = np.zeros((*labels.shape, self.n_classes), dtype=np.float64)
            elif labels.shape != counts.shape[:2]:
                raise ValueError("all label maps must share the same shape")
            valid = labels >= 0
            rows, cols = np.nonzero(valid)
            np.add.at(counts, (rows, cols, labels[valid]), 1.0)
            n_images += 1
        if counts is None:
            raise ValueError("at least one label map is required")
        self.counts_ = counts
        self.n_images_ = n_images
        return self

    def partial_fit(self, labels: np.ndarray) -> "PixelPriorEstimator":
        """Accumulate one additional label map (streaming estimation)."""
        labels = check_label_map(labels)
        if self.counts_ is None:
            self.counts_ = np.zeros((*labels.shape, self.n_classes), dtype=np.float64)
        elif labels.shape != self.counts_.shape[:2]:
            raise ValueError("label map shape differs from previously seen maps")
        valid = labels >= 0
        rows, cols = np.nonzero(valid)
        np.add.at(self.counts_, (rows, cols, labels[valid]), 1.0)
        self.n_images_ += 1
        return self

    # ------------------------------------------------------------------ ---
    def priors(self) -> np.ndarray:
        """Return the smoothed, normalised (H, W, C) prior field p̂_z(y)."""
        if self.counts_ is None:
            raise RuntimeError("PixelPriorEstimator has not seen any data yet")
        counts = self.counts_
        if self.spatial_sigma > 0:
            counts = ndimage.gaussian_filter(
                counts, sigma=(self.spatial_sigma, self.spatial_sigma, 0)
            )
        counts = counts + self.laplace_smoothing / self.n_classes
        totals = counts.sum(axis=2, keepdims=True)
        positional = counts / totals
        if self.global_blend > 0:
            global_frequencies = counts.sum(axis=(0, 1))
            global_frequencies = global_frequencies / global_frequencies.sum()
            positional = (
                (1.0 - self.global_blend) * positional
                + self.global_blend * global_frequencies.reshape(1, 1, -1)
            )
        return positional

    def class_prior(self, class_name_or_id) -> np.ndarray:
        """(H, W) prior heatmap of one class (Fig. 4 shows the "person" map)."""
        priors = self.priors()
        if isinstance(class_name_or_id, str):
            class_id = self.label_space.id_of(class_name_or_id)
        else:
            class_id = int(class_name_or_id)
        if not 0 <= class_id < self.n_classes:
            raise ValueError(f"class id {class_id} out of range")
        return priors[:, :, class_id]

    def category_prior(self, category: str) -> np.ndarray:
        """(H, W) prior heatmap of a whole category (e.g. ``"human"``)."""
        priors = self.priors()
        ids = self.label_space.ids_in_category(category)
        return priors[:, :, ids].sum(axis=2)

    def global_class_frequencies(self) -> np.ndarray:
        """Overall class frequencies (averaged over all pixel positions)."""
        return self.priors().mean(axis=(0, 1))
