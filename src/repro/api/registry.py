"""String-keyed registries of the experiment building blocks.

The unified experiment API resolves every pluggable component — network
profile, dataset substrate, metric group, meta-model variant, decision rule —
through a named :class:`Registry`.  Concrete implementations self-register at
import time with the :meth:`Registry.register` decorator, the way named
BuilderConfigs make dataset variants declarative:

    from repro.api.registry import NETWORK_PROFILES

    @NETWORK_PROFILES.register("xception65")
    def xception65_profile() -> NetworkProfile:
        ...

Config files then refer to components purely by name
(``{"network": {"profile": "xception65"}}``), and new variants plug in
without touching any pipeline plumbing.  ``available()`` / ``describe()``
make every registry introspectable (the ``python -m repro list`` command is
a thin wrapper around them).

This module is intentionally dependency-free (stdlib only) so any part of
the library can import it for self-registration without import cycles; the
built-in implementations are imported lazily on first lookup.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterator, List, Optional, Tuple, TypeVar

EntryT = TypeVar("EntryT")

#: Sentinel distinguishing "no object passed" (decorator mode) from
#: registering a literal ``None`` entry (e.g. the "all features" group).
_MISSING = object()


class RegistryError(KeyError):
    """Lookup of an unknown name or registration under a taken name."""


class Registry:
    """A string-keyed collection of interchangeable components.

    Parameters
    ----------
    kind:
        Short machine-readable name of the registry (``"networks"``, ...),
        used in error messages and by the CLI.
    description:
        One-line human description shown by ``python -m repro list``.
    """

    def __init__(self, kind: str, description: str = "") -> None:
        self.kind = kind
        self.description = description
        self._entries: Dict[str, object] = {}

    # ------------------------------------------------------------------ ---
    def register(self, name: str, obj: object = _MISSING):
        """Register *obj* under *name*; usable as decorator or plain call.

        As a decorator (``@REGISTRY.register("name")``) it returns the
        decorated object unchanged; a plain call registers any value,
        including ``None``.  Registering a name twice is an error: silently
        replacing a component would make configs ambiguous.
        """
        if not isinstance(name, str) or not name:
            raise TypeError("registry names must be non-empty strings")

        def _add(entry):
            if name in self._entries:
                raise RegistryError(
                    f"{self.kind!r} registry already has an entry named {name!r}"
                )
            self._entries[name] = entry  # repro: allow[concurrency-shared-state] -- registration happens at import time, before worker threads exist
            return entry

        if obj is _MISSING:
            return _add
        return _add(obj)

    def get(self, name: str) -> object:
        """Return the entry registered under *name*.

        Raises :class:`RegistryError` with the list of available names when
        the name is unknown.
        """
        _load_builtins()
        try:
            return self._entries[name]
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} entry {name!r}; "
                f"available: {', '.join(self.available()) or '(none)'}"
            ) from None

    def available(self) -> List[str]:
        """Sorted names of all registered entries."""
        _load_builtins()
        return sorted(self._entries)

    def describe(self, name: str) -> str:
        """One-line description of an entry.

        Callables are described by the first line of their docstring; plain
        data entries (e.g. metric-group tuples) by their repr.
        """
        entry = self.get(name)
        doc = getattr(entry, "__doc__", None) if callable(entry) else None
        if not doc:
            return repr(entry)
        return doc.strip().splitlines()[0]

    def items(self) -> List[Tuple[str, object]]:
        """(name, entry) pairs sorted by name."""
        _load_builtins()
        return [(name, self._entries[name]) for name in self.available()]

    # ------------------------------------------------------------------ ---
    def __contains__(self, name: str) -> bool:
        _load_builtins()
        return name in self._entries

    def __len__(self) -> int:
        _load_builtins()
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.available())

    def __repr__(self) -> str:
        return f"Registry(kind={self.kind!r}, n_entries={len(self._entries)})"


# --------------------------------------------------------------------------
# The library's registries.  Entry contracts:
#
# * NETWORK_PROFILES   — zero-argument factories returning a NetworkProfile
#                        (wrapped in a simulated network by the Runner), or —
#                        when the factory carries ``builds_network = True`` —
#                        adapter factories ``(network: NetworkConfig, seed:
#                        int) -> network`` returning a ready network object
#                        (e.g. the disk-backed softmax_dump adapter);
# * DATASETS           — builders ``(data: DataConfig, seed: int) -> dataset``;
# * METRIC_GROUPS      — tuples of feature names (or None for "all features");
# * META_CLASSIFIERS   — factories ``(**kwargs) -> MetaClassifier`` with the
#                        model family baked in;
# * META_REGRESSORS    — factories ``(**kwargs) -> MetaRegressor``;
# * DECISION_RULES     — the decision-rule callables of repro.decision.rules;
# * EXECUTION_BACKENDS — factories ``(execution: ExecutionConfig) ->
#                        ExecutionBackend`` deciding how the Runner walks a
#                        dataset (serial / thread pool / sharded processes).
# --------------------------------------------------------------------------

NETWORK_PROFILES = Registry(
    "networks", "simulated segmentation-network profiles (quality presets)"
)
DATASETS = Registry(
    "datasets", "synthetic dataset substrates and named size variants"
)
METRIC_GROUPS = Registry(
    "metric_groups", "named feature subsets of the segment metrics mu(k)"
)
META_CLASSIFIERS = Registry(
    "meta_classifiers", "meta-classification model families (IoU = 0 vs > 0)"
)
META_REGRESSORS = Registry(
    "meta_regressors", "meta-regression model families (IoU prediction)"
)
DECISION_RULES = Registry(
    "decision_rules", "pixel-wise decision rules on the softmax output"
)
EXECUTION_BACKENDS = Registry(
    "execution_backends", "how the Runner executes a dataset walk (serial/thread/process)"
)

#: All registries by kind, in display order.
ALL_REGISTRIES: Dict[str, Registry] = {  # repro: allow[concurrency-shared-state] -- populated by this literal, read-only afterwards
    registry.kind: registry
    for registry in (
        NETWORK_PROFILES,
        DATASETS,
        METRIC_GROUPS,
        META_CLASSIFIERS,
        META_REGRESSORS,
        DECISION_RULES,
        EXECUTION_BACKENDS,
    )
}


_BUILTINS_READY = False
_BUILTINS_LOADING = False
_BUILTINS_ERROR: Optional[BaseException] = None
_BUILTINS_LOCK = threading.RLock()


def _load_builtins() -> None:
    """Import the modules that self-register the built-in components.

    Deferred to first lookup so that (a) ``import repro.api.registry`` stays
    cheap and cycle-free and (b) modules can self-register during the import
    of the ``repro`` package without re-entering this loader.  A failed
    import is remembered and re-raised on every subsequent lookup: retrying
    would re-execute partially-registered modules (duplicate-name errors)
    and silently operating on a partial registry would mask the real cause.

    Thread-safe: the first lookup may come from a worker thread (the thread
    backend, the scoring server), and concurrent first lookups must not let
    one thread observe the registries while another is still importing.
    ``_BUILTINS_READY`` flips only after the imports succeed, so the
    lock-free fast path never exposes a partial registry; the reentrancy
    flag (plus the RLock) keeps self-registration during the import block
    working on the loading thread itself.
    """
    global _BUILTINS_READY, _BUILTINS_LOADING, _BUILTINS_ERROR
    if _BUILTINS_READY:
        return
    with _BUILTINS_LOCK:
        if _BUILTINS_ERROR is not None:
            raise RuntimeError(
                "registration of the built-in components failed previously"
            ) from _BUILTINS_ERROR
        if _BUILTINS_READY or _BUILTINS_LOADING:
            return
        _BUILTINS_LOADING = True
        try:
            import repro.api.execution  # noqa: F401
            import repro.core.meta_classification  # noqa: F401
            import repro.dispatch.backend  # noqa: F401
            import repro.core.meta_regression  # noqa: F401
            import repro.core.metrics  # noqa: F401
            import repro.decision.rules  # noqa: F401
            import repro.io.cityscapes  # noqa: F401
            import repro.io.softmax  # noqa: F401
            import repro.segmentation.datasets  # noqa: F401
            import repro.segmentation.network  # noqa: F401
        except BaseException as exc:
            _BUILTINS_ERROR = exc
            raise
        finally:
            _BUILTINS_LOADING = False
        _BUILTINS_READY = True


def all_registries() -> Dict[str, Registry]:
    """All registries by kind (built-ins guaranteed to be loaded)."""
    _load_builtins()
    return dict(ALL_REGISTRIES)
