"""Unified experiment API: registries, declarative configs, one Runner.

The subpackage has three layers:

* :mod:`repro.api.registry` — string-keyed registries of every pluggable
  component (network profiles, datasets, metric groups, meta-model variants,
  decision rules), populated by self-registration at import time;
* :mod:`repro.api.config` — declarative, JSON-round-trippable configuration
  dataclasses (:class:`ExperimentConfig` and its nested sections);
* :mod:`repro.api.runner` — the :class:`Runner` that resolves a config
  through the registries, dispatches to any of the three experiment kinds
  and returns a unified :class:`ExperimentReport`.

``python -m repro`` (see :mod:`repro.__main__`) exposes the same API on the
command line.

Registry and config are imported eagerly (both are dependency-light and are
imported *by* the concrete modules for self-registration); the runner —
which imports the pipelines — is loaded lazily on first attribute access to
keep this package importable from anywhere without cycles.
"""

from repro.api.config import (
    EXPERIMENT_KINDS,
    ConfigError,
    DataConfig,
    EvalConfig,
    ExecutionConfig,
    ExperimentConfig,
    ExtractionConfig,
    MetaModelConfig,
    NetworkConfig,
    apply_dotted_override,
)
from repro.api.registry import (
    ALL_REGISTRIES,
    DATASETS,
    DECISION_RULES,
    EXECUTION_BACKENDS,
    META_CLASSIFIERS,
    META_REGRESSORS,
    METRIC_GROUPS,
    NETWORK_PROFILES,
    Registry,
    RegistryError,
    all_registries,
)

#: Names resolved lazily from repro.api.runner (PEP 562).
_LAZY = ("Runner", "ExperimentReport", "ResolvedExperiment", "run_experiment",
         "derived_seeds", "DerivedSeeds")

#: Names resolved lazily from repro.api.fitted (pulls in models + metrics).
_LAZY_FITTED = ("FittedModel",)

#: Names resolved lazily from repro.api.execution (imports the runner).
_LAZY_EXECUTION = ("SerialBackend", "ThreadBackend", "ProcessBackend",
                   "shard_ranges")

__all__ = [
    "EXPERIMENT_KINDS",
    "ConfigError",
    "ExperimentConfig",
    "DataConfig",
    "NetworkConfig",
    "ExtractionConfig",
    "ExecutionConfig",
    "MetaModelConfig",
    "EvalConfig",
    "Registry",
    "RegistryError",
    "ALL_REGISTRIES",
    "NETWORK_PROFILES",
    "DATASETS",
    "METRIC_GROUPS",
    "META_CLASSIFIERS",
    "META_REGRESSORS",
    "DECISION_RULES",
    "EXECUTION_BACKENDS",
    "all_registries",
    "apply_dotted_override",
    *_LAZY,
    *_LAZY_EXECUTION,
    *_LAZY_FITTED,
]


def __getattr__(name: str):
    if name in _LAZY:
        from repro.api import runner

        return getattr(runner, name)
    if name in _LAZY_EXECUTION:
        from repro.api import execution

        return getattr(execution, name)
    if name in _LAZY_FITTED:
        from repro.api import fitted

        return getattr(fitted, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
