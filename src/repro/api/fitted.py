"""Fitted serving model: the fit-once/score-many artifact of ``Runner.fit``.

Batch experiments re-fit meta-models inside their evaluation protocols; a
long-lived scoring service must not.  :class:`FittedModel` bundles everything
needed to score *new* frames without ground truth — the fitted meta
classifier and regressor (each owning its scaler and feature subset), the
label space, the segment connectivity and the feature-name schema — plus
free-form provenance, with a deterministic JSON state round-trip
(:meth:`to_state` / :meth:`from_state`) so the artifact persists through the
content-addressed store and reloads bitwise identical.

``score_frame`` is the single scoring implementation shared by the batch
reference path (:meth:`Runner.score`) and the HTTP server
(:mod:`repro.serve`), which is what makes the bitwise server/batch parity
gate structural rather than aspirational.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.meta_classification import MetaClassifier
from repro.core.meta_regression import MetaRegressor
from repro.core.metrics import SegmentMetricsExtractor
from repro.segmentation.labels import LabelSpace, LabelSpec

#: Revision of the serialized FittedModel layout.
FITTED_MODEL_FORMAT = 1


def _label_space_state(label_space: LabelSpace) -> List[Dict[str, object]]:
    """JSON form of a label space: one plain dict per spec, in train-id order."""
    return [
        {
            "train_id": spec.train_id,
            "name": spec.name,
            "category": spec.category,
            "color": list(spec.color),
            "is_thing": spec.is_thing,
            "typical_relative_size": spec.typical_relative_size,
            "raw_id": spec.raw_id,
        }
        for spec in label_space
    ]


def _label_space_from_state(payload: List[Dict[str, object]]) -> LabelSpace:
    specs = tuple(
        LabelSpec(
            train_id=int(spec["train_id"]),
            name=spec["name"],
            category=spec["category"],
            color=tuple(spec["color"]),
            is_thing=bool(spec["is_thing"]),
            typical_relative_size=float(spec["typical_relative_size"]),
            raw_id=int(spec["raw_id"]),
        )
        for spec in payload
    )
    return LabelSpace(specs=specs)


class FittedModel:
    """A fitted MetaSeg scoring model ready for fit-once/score-many use.

    Parameters
    ----------
    classifier:
        Fitted :class:`MetaClassifier` (false-positive probability head).
    regressor:
        Fitted :class:`MetaRegressor` (IoU prediction head).
    label_space:
        Label space the softmax channel axis is indexed by.
    connectivity:
        Segment connectivity (4 or 8) used during training extraction; the
        serving extractor must match it or segments decompose differently.
    feature_names:
        Full feature schema produced by the training extractor, recorded to
        detect drift between the artifact and the serving code.
    provenance:
        Free-form description of where the fit came from (config echo,
        dataset sizes); never influences scoring.
    """

    def __init__(
        self,
        classifier: MetaClassifier,
        regressor: MetaRegressor,
        label_space: LabelSpace,
        connectivity: int,
        feature_names: List[str],
        provenance: Optional[Dict[str, object]] = None,
    ) -> None:
        self.classifier = classifier
        self.regressor = regressor
        self.label_space = label_space
        self.connectivity = int(connectivity)
        self.feature_names = list(feature_names)
        self.provenance = dict(provenance or {})
        #: Ephemeral cache info (hit/key), set by Runner.fit like report.cache;
        #: excluded from the serialized state.
        self.cache: Dict[str, object] = {}  # repro: allow[state-schema] -- ephemeral cache info of this process, reset on reload by design

    # ------------------------------------------------------------------ ---
    def build_extractor(self) -> SegmentMetricsExtractor:
        """A metrics extractor matching the training-time configuration.

        Raises ValueError when the serving code's feature schema no longer
        matches the one the model was fitted on — scoring through a drifted
        schema would silently permute feature columns.
        """
        extractor = SegmentMetricsExtractor(
            label_space=self.label_space, connectivity=self.connectivity
        )
        if extractor.feature_names() != self.feature_names:
            raise ValueError(
                "feature schema drift: the serving extractor produces "
                f"{len(extractor.feature_names())} features but the model was "
                f"fitted on {len(self.feature_names)}; re-fit the model"
            )
        return extractor

    def score(self, dataset) -> Dict[str, object]:
        """Score an already-extracted metrics dataset (no ground truth needed)."""
        return {
            "segment_ids": dataset.segment_ids.tolist(),
            "class_ids": dataset.class_ids.tolist(),
            "tp_probability": self.classifier.predict_proba(dataset).tolist(),
            "predicted_iou": self.regressor.predict(dataset).tolist(),
        }

    def score_frame(
        self,
        probs: np.ndarray,
        extractor: Optional[SegmentMetricsExtractor] = None,
        image_id: str = "frame",
    ) -> Dict[str, object]:
        """Extract and score one softmax field; JSON-ready response dict.

        This is the shared scoring path of the batch reference
        (:meth:`Runner.score`) and the HTTP server, so both produce
        structurally and bitwise identical results.
        """
        if extractor is None:
            extractor = self.build_extractor()
        dataset = extractor.extract(probs, image_id=image_id)
        scored = self.score(dataset)
        return {
            "image_id": image_id,
            "n_segments": len(scored["segment_ids"]),
            "segment_ids": scored["segment_ids"],
            "class_ids": scored["class_ids"],
            "class_names": [
                self.label_space[class_id].name for class_id in scored["class_ids"]
            ],
            "tp_probability": scored["tp_probability"],
            "predicted_iou": scored["predicted_iou"],
        }

    # ------------------------------------------------------------------ ---
    def to_state(self) -> Dict[str, object]:
        """JSON-serialisable state (bitwise-exact round-trip)."""
        return {
            "type": type(self).__name__,
            "format": FITTED_MODEL_FORMAT,
            "classifier": self.classifier.to_state(),
            "regressor": self.regressor.to_state(),
            "label_space": _label_space_state(self.label_space),
            "connectivity": self.connectivity,
            "feature_names": list(self.feature_names),
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "FittedModel":
        """Rebuild a fitted model from its :meth:`to_state` form."""
        if not isinstance(state, dict) or state.get("type") != cls.__name__:
            raise ValueError(
                f"expected a {cls.__name__} state dict, got "
                f"{state.get('type') if isinstance(state, dict) else type(state).__name__!r}"
            )
        if state.get("format") != FITTED_MODEL_FORMAT:
            raise ValueError(
                f"unsupported FittedModel format {state.get('format')!r} "
                f"(this code reads format {FITTED_MODEL_FORMAT})"
            )
        return cls(
            classifier=MetaClassifier.from_state(state["classifier"]),
            regressor=MetaRegressor.from_state(state["regressor"]),
            label_space=_label_space_from_state(state["label_space"]),
            connectivity=state["connectivity"],
            feature_names=state["feature_names"],
            provenance=state["provenance"],
        )


__all__ = ["FITTED_MODEL_FORMAT", "FittedModel"]
