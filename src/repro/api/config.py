"""Declarative, JSON-round-trippable experiment configurations.

An :class:`ExperimentConfig` fully describes one experiment of any of the
three kinds — ``"metaseg"`` (Section II / Table I), ``"timedynamic"``
(Section III / Table II) and ``"decision"`` (Section IV / Fig. 5) — as plain
data: every pluggable component is referenced by its registry name and every
knob lives in one of the nested sections.  A config can be built in code,
loaded from JSON (``ExperimentConfig.from_json``), validated, echoed back
into a report, and handed to :class:`repro.api.runner.Runner` for execution::

    config = ExperimentConfig(
        kind="metaseg",
        seed=0,
        data=DataConfig(dataset="cityscapes_like", n_val=12),
        network=NetworkConfig(profile="mobilenetv2"),
    )
    report = Runner().run(config)

This module is stdlib-only (dataclasses + json) so it can be imported from
anywhere in the library without cycles.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: The three experiment kinds the Runner can dispatch to.
EXPERIMENT_KINDS = ("metaseg", "timedynamic", "decision")


class ConfigError(ValueError):
    """A structurally invalid experiment config.

    Raised at parse time (:meth:`ExperimentConfig.from_dict` /
    :meth:`ExperimentConfig.from_json`) and by :meth:`ExperimentConfig.
    validate`, always naming the offending section and field, so a bad value
    fails fast with an actionable message instead of blowing up deep inside
    the execution layer.  Subclasses :class:`ValueError` so existing callers
    that catch ``ValueError`` keep working.
    """


def _is_int(value: object) -> bool:
    """True for genuine integers; bool is excluded (it subclasses int, so a
    JSON ``true`` would otherwise silently count as 1)."""
    return isinstance(value, int) and not isinstance(value, bool)


def _as_list(values: Sequence) -> list:
    """Normalise sequence fields to plain lists (JSON round-trip equality)."""
    return list(values)


@dataclass
class DataConfig:
    """Which dataset substrate to build, and at which size.

    ``dataset`` names an entry of the ``datasets`` registry.  The single-frame
    fields (``n_train``/``n_val``) apply to Cityscapes-like substrates, the
    sequence fields (``n_sequences``/``n_frames``/``labeled_stride``) to
    KITTI-like video substrates; builders read the fields they need.  ``root``
    points an on-disk substrate (``cityscapes_disk``) at its dataset
    directory; synthetic builders ignore it, and the size fields are ignored
    by disk builders (the files dictate the sizes).
    """

    dataset: str = "cityscapes_like"
    root: str = ""
    n_train: int = 0
    n_val: int = 12
    height: int = 96
    width: int = 192
    n_sequences: int = 2
    n_frames: int = 8
    labeled_stride: int = 2

    def validate(self) -> None:
        if not isinstance(self.root, str):
            raise ConfigError(f"data: root must be a path string, got {self.root!r}")
        if self.n_train < 0 or self.n_val < 0:
            raise ConfigError("data: split sizes (n_train/n_val) must be non-negative")
        if self.height < 32 or self.width < 64:
            raise ConfigError("data: scenes (height/width) must be at least 32x64 pixels")
        if self.n_sequences < 1 or self.n_frames < 1:
            raise ConfigError("data: n_sequences and n_frames must be >= 1")
        if self.labeled_stride < 1:
            raise ConfigError("data: labeled_stride must be >= 1")


@dataclass
class NetworkConfig:
    """Which simulated network profile(s) to run.

    ``profile`` and ``reference_profile`` name entries of the ``networks``
    registry; the reference profile is only used by the time-dynamic kind
    (pseudo ground truth).  ``overrides`` are forwarded to
    :meth:`NetworkProfile.with_overrides` for ablations (simulated profiles
    only).  ``dump_root``/``mmap`` configure the ``softmax_dump`` adapter
    serving precomputed probability fields from disk; simulated profiles
    ignore both.
    """

    profile: str = "mobilenetv2"
    reference_profile: str = "xception65"
    overrides: Dict[str, object] = field(default_factory=dict)
    dump_root: str = ""
    mmap: bool = True

    def validate(self) -> None:
        if not self.profile:
            raise ConfigError("network: profile name must be non-empty")
        if not isinstance(self.overrides, dict):
            raise ConfigError("network: overrides must be a dict")
        if not isinstance(self.dump_root, str):
            raise ConfigError(
                f"network: dump_root must be a path string, got {self.dump_root!r}"
            )
        if not isinstance(self.mmap, bool):
            raise ConfigError(f"network: mmap must be a boolean, got {self.mmap!r}")


@dataclass
class ExtractionConfig:
    """Inference + metric-extraction execution parameters.

    Chunk size and worker count live here once instead of being threaded
    through per-method keyword arguments; the pipelines fall back to these
    values whenever a call site does not pass them explicitly.  All settings
    are bit-neutral: parallel extraction is exactly identical to serial.
    """

    chunk_size: Optional[int] = None
    """Samples per streamed chunk; ``None`` uses the library default."""
    max_workers: Optional[int] = None
    """Thread-pool width for per-sample fan-out.  ``None``, 0 and 1 all run
    serially (the library-wide worker contract); negative values are
    rejected at parse time."""
    connectivity: int = 8
    """Connectivity (4 or 8) of the segment decomposition (``metaseg``
    kind; the other kinds use the library default of 8)."""

    def validate(self) -> None:
        if self.chunk_size is not None and (
            not _is_int(self.chunk_size) or self.chunk_size < 1
        ):
            raise ConfigError(
                f"extraction: chunk_size must be an integer >= 1, "
                f"got {self.chunk_size!r}"
            )
        if self.max_workers is not None and (
            not _is_int(self.max_workers) or self.max_workers < 0
        ):
            raise ConfigError(
                f"extraction: max_workers must be an integer >= 0 "
                f"(None, 0 and 1 run serially), got {self.max_workers!r}"
            )
        if self.connectivity not in (4, 8):
            raise ConfigError("extraction: connectivity must be 4 or 8")


@dataclass
class ExecutionConfig:
    """How the Runner executes the dataset walk of an experiment.

    ``backend`` names an entry of the ``execution_backends`` registry
    (built-ins: ``serial``, ``thread``, ``process``); ``workers`` is the
    thread-pool width or process-shard count (``None`` lets the backend pick
    its default, 0/1 degenerate to serial execution, negative values are
    rejected at parse time); ``streaming`` selects the never-concatenate
    aggregation path that folds per-chunk results into running accumulators
    so peak memory stays O(chunk) instead of O(dataset).

    The fault-tolerance knobs apply to the ``distributed`` backend's work
    queue (other backends ignore them): ``lease_timeout`` is how many
    seconds a shard lease survives without a worker heartbeat before it is
    requeued, ``max_retries`` bounds the requeues per shard before the run
    fails with a :class:`repro.dispatch.DispatchError`, and ``backoff`` is
    the base retry delay (doubled per attempt, jittered, capped).

    Every combination is bit-neutral: backends and streaming only change how
    the work is scheduled, never the numbers.
    """

    backend: str = "serial"
    workers: Optional[int] = None
    streaming: bool = False
    lease_timeout: float = 30.0
    max_retries: int = 3
    backoff: float = 0.05

    def validate(self) -> None:
        if not isinstance(self.backend, str) or not self.backend:
            raise ConfigError(
                f"execution: backend must be a non-empty string, got {self.backend!r}"
            )
        if self.workers is not None and (not _is_int(self.workers) or self.workers < 0):
            raise ConfigError(
                f"execution: workers must be an integer >= 0 "
                f"(None, 0 and 1 run serially), got {self.workers!r}"
            )
        if not isinstance(self.streaming, bool):
            raise ConfigError(
                f"execution: streaming must be a boolean, got {self.streaming!r}"
            )
        if (
            not isinstance(self.lease_timeout, (int, float))
            or isinstance(self.lease_timeout, bool)
            or self.lease_timeout <= 0
        ):
            raise ConfigError(
                f"execution: lease_timeout must be a number > 0 seconds, "
                f"got {self.lease_timeout!r}"
            )
        if not _is_int(self.max_retries) or self.max_retries < 0:
            raise ConfigError(
                f"execution: max_retries must be an integer >= 0, "
                f"got {self.max_retries!r}"
            )
        if (
            not isinstance(self.backoff, (int, float))
            or isinstance(self.backoff, bool)
            or self.backoff < 0
        ):
            raise ConfigError(
                f"execution: backoff must be a number >= 0 seconds, "
                f"got {self.backoff!r}"
            )


@dataclass
class MetaModelConfig:
    """Which meta-model variants to fit, and with which hyperparameters.

    ``classifiers`` / ``regressors`` name entries of the ``meta_classifiers``
    / ``meta_regressors`` registries (the time-dynamic kind uses the
    ``classifiers`` list as its shared method list, as in the paper, and
    ignores ``regressors``).  ``feature_group`` names a ``metric_groups``
    entry restricting the features (for ``timedynamic`` it selects the base
    features tracked over time); ``model_params`` maps a method name to
    extra keyword arguments for that model family.  The ``decision`` kind
    fits no meta models and ignores this section.

    ``Runner.fit`` (the fit-once/score-many serving path) persists exactly
    one classifier/regressor pair per config: ``classifiers[0]`` and
    ``regressors[0]`` are the families it fits on the full dataset and
    serializes into the :class:`~repro.api.fitted.FittedModel` artifact.
    """

    classifiers: List[str] = field(default_factory=lambda: ["logistic"])
    regressors: List[str] = field(default_factory=lambda: ["linear"])
    classification_penalty: float = 1.0
    regression_penalty: float = 1.0
    feature_group: str = "all"
    model_params: Dict[str, dict] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.classifiers = _as_list(self.classifiers)
        self.regressors = _as_list(self.regressors)

    def validate(self) -> None:
        if not self.classifiers or not self.regressors:
            raise ConfigError("meta_models: need at least one classifier and one regressor")
        if self.classification_penalty < 0 or self.regression_penalty < 0:
            raise ConfigError("meta_models: penalties must be non-negative")
        if not isinstance(self.model_params, dict):
            raise ConfigError("meta_models: model_params must be a dict")


@dataclass
class EvalConfig:
    """Evaluation-protocol parameters; each kind reads the fields it needs.

    ``n_runs``/``train_fraction`` drive the Table I resampling protocol,
    ``split_fractions``/``n_frames_list``/``compositions`` the Section III
    protocol, and ``rules``/``category``/``strengths`` the Section IV
    comparison (``rules`` names entries of the ``decision_rules`` registry).
    """

    n_runs: int = 10
    train_fraction: float = 0.8
    split_fractions: List[float] = field(default_factory=lambda: [0.7, 0.1, 0.2])
    n_frames_list: List[int] = field(default_factory=lambda: [0, 1, 2])
    compositions: List[str] = field(default_factory=lambda: ["R", "RP"])
    augmentation_factor: float = 1.0
    rules: List[str] = field(default_factory=lambda: ["bayes", "ml"])
    category: str = "human"
    strengths: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.split_fractions = _as_list(self.split_fractions)
        self.n_frames_list = _as_list(self.n_frames_list)
        self.compositions = _as_list(self.compositions)
        self.rules = _as_list(self.rules)

    def validate(self) -> None:
        if self.n_runs < 1:
            raise ConfigError("evaluation: n_runs must be >= 1")
        if not 0.0 < self.train_fraction < 1.0:
            raise ConfigError("evaluation: train_fraction must be in (0, 1)")
        if len(self.split_fractions) != 3 or abs(sum(self.split_fractions) - 1.0) > 1e-8:
            raise ConfigError("evaluation: split_fractions must be three values summing to 1")
        if not self.n_frames_list or any(n < 0 for n in self.n_frames_list):
            raise ConfigError("evaluation: n_frames_list must be non-empty and non-negative")
        if not self.compositions:
            raise ConfigError("evaluation: compositions must be non-empty")
        if self.augmentation_factor < 0:
            raise ConfigError("evaluation: augmentation_factor must be non-negative")
        if not self.rules:
            raise ConfigError("evaluation: rules must be non-empty")
        if not self.category:
            raise ConfigError("evaluation: category must be non-empty")


#: Section name -> nested dataclass type, shared by from_dict/to_dict.
_SECTIONS = {
    "data": DataConfig,
    "network": NetworkConfig,
    "extraction": ExtractionConfig,
    "execution": ExecutionConfig,
    "meta_models": MetaModelConfig,
    "evaluation": EvalConfig,
}


@dataclass
class ExperimentConfig:
    """Complete declarative description of one experiment.

    A single ``seed`` drives every stochastic component (scene generation,
    network noise, split resampling, model initialisation); two runs of the
    same config are bitwise identical.
    """

    kind: str = "metaseg"
    name: str = ""
    seed: int = 0
    data: DataConfig = field(default_factory=DataConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    extraction: ExtractionConfig = field(default_factory=ExtractionConfig)
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    meta_models: MetaModelConfig = field(default_factory=MetaModelConfig)
    evaluation: EvalConfig = field(default_factory=EvalConfig)

    def validate(self) -> "ExperimentConfig":
        """Structural validation of all sections; returns self for chaining.

        Registry names are resolved (and therefore validated) by the Runner,
        so this stays import-light and usable from anywhere.
        """
        if self.kind not in EXPERIMENT_KINDS:
            raise ConfigError(
                f"kind must be one of {EXPERIMENT_KINDS}, got {self.kind!r}"
            )
        if not isinstance(self.seed, int):
            raise ConfigError("seed must be an integer")
        for section in _SECTIONS:
            getattr(self, section).validate()
        return self

    # ------------------------------------------------------------- (de)serialisation
    @classmethod
    def from_dict(
        cls, payload: Dict[str, object], validate: bool = True
    ) -> "ExperimentConfig":
        """Build a config from a plain dict, rejecting unknown keys.

        By default the built config is validated before it is returned, so
        structurally invalid values (negative worker counts, zero chunk
        sizes, bad fractions, ...) raise :class:`ConfigError` — naming the
        section and field — at parse time instead of blowing up deep inside
        the execution layer.  ``validate=False`` defers that to the caller,
        for consumers that apply overrides before validating (the CLI flags:
        an override must be able to fix the very field it overrides).
        Structural errors (non-dict payloads, unknown keys) always raise.
        """
        if not isinstance(payload, dict):
            raise ConfigError(f"config payload must be a dict, got {type(payload).__name__}")
        payload = dict(payload)
        kwargs: Dict[str, object] = {}
        for section, section_cls in _SECTIONS.items():
            if section in payload:
                kwargs[section] = _section_from_dict(section_cls, payload.pop(section), section)
        for scalar in ("kind", "name", "seed"):
            if scalar in payload:
                kwargs[scalar] = payload.pop(scalar)
        if payload:
            raise ConfigError(
                f"unknown config keys: {', '.join(sorted(map(str, payload)))}"
            )
        config = cls(**kwargs)
        return config.validate() if validate else config

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict view containing only JSON-serialisable types."""
        out: Dict[str, object] = {"kind": self.kind, "name": self.name, "seed": self.seed}
        for section in _SECTIONS:
            out[section] = dataclasses.asdict(getattr(self, section))
        return out

    @classmethod
    def from_json(cls, text: str, validate: bool = True) -> "ExperimentConfig":
        """Parse a config from a JSON document (see :meth:`from_dict`)."""
        return cls.from_dict(json.loads(text), validate=validate)

    def to_json(self, indent: int = 2) -> str:
        """Serialise the config to JSON (round-trips through from_json)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def apply_dotted_override(payload: Dict[str, object], path: str, value: object) -> None:
    """Set one config field of a *complete* config dict by dotted path.

    ``apply_dotted_override(d, "meta_models.classifiers", [...])`` replaces
    ``d["meta_models"]["classifiers"]`` in place.  The leaf (and every
    intermediate section) must already exist — pass a dict produced by
    :meth:`ExperimentConfig.to_dict`, which is always complete — so a typo
    in a sweep grid fails fast with a :class:`ConfigError` naming the path
    instead of silently adding an ignored key.
    """
    if not isinstance(path, str) or not path:
        raise ConfigError(f"override path must be a non-empty string, got {path!r}")
    parts = path.split(".")
    node: object = payload
    for depth, part in enumerate(parts):
        if not isinstance(node, dict) or part not in node:
            prefix = ".".join(parts[: depth + 1])
            raise ConfigError(
                f"unknown config field {path!r} (no such field {prefix!r})"
            )
        if depth == len(parts) - 1:
            node[part] = value
        else:
            node = node[part]


def _section_from_dict(section_cls, payload: object, section: str):
    """Instantiate a nested config section from a dict, rejecting unknown keys."""
    if isinstance(payload, section_cls):
        return payload
    if not isinstance(payload, dict):
        raise ConfigError(f"config section {section!r} must be a dict")
    known = {f.name for f in dataclasses.fields(section_cls)}
    unknown = set(payload) - known
    if unknown:
        raise ConfigError(
            f"unknown keys in config section {section!r}: {', '.join(sorted(unknown))}"
        )
    return section_cls(**payload)
