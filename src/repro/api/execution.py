"""Execution backends: how the Runner walks a dataset.

The paper's protocols are embarrassingly parallel over images / sequences /
evaluation samples, and every per-item computation in this library derives
its randomness from ``(master_seed, item_index)``.  That makes the *walk*
over the workload a pluggable concern: this module provides the string-keyed
``execution_backends`` registry and its three built-in entries,

* ``serial``  — in-process, item by item (the default; identical to the
  pre-backend behaviour);
* ``thread``  — in-process, fanning independent items across a thread pool
  through the shared batched-execution layer (numpy releases the GIL in the
  heavy kernels);
* ``process`` — shards the ``DataConfig`` index ranges across a
  ``concurrent.futures.ProcessPoolExecutor``.  Each shard worker receives a
  picklable work spec (the config dict plus its index range), rebuilds the
  substrate / network / pipeline from the config and the derived seeds, and
  walks only its own indices; the parent merges the per-shard results in
  shard order.

Every backend also supports the ``streaming`` flag of
:class:`~repro.api.config.ExecutionConfig`: the never-concatenate
aggregation path that folds per-chunk results into running accumulators
(:class:`repro.core.dataset.MetricsAccumulator`, the decision fold) so peak
memory stays O(chunk) instead of O(dataset).

The reproducibility contract is absolute: **backends only change how the
work is scheduled, never the numbers.**  Per-item results are pure functions
of ``(config, derived_seeds, item_index)``, all merges preserve item order,
and the evaluation protocols (which consume one RNG stream) always run in
the parent — so every backend / worker-count / streaming combination is
bitwise identical to the serial path.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from itertools import chain
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.api.config import ExecutionConfig, ExperimentConfig
from repro.api.registry import EXECUTION_BACKENDS
from repro.core.batching import normalize_max_workers, supports_cache_kwarg
from repro.core.dataset import MetricsDataset
from repro.obs import NULL_TRACER, Tracer
from repro.store import priors_key, shard_key


def shard_ranges(n_items: int, n_shards: int) -> List[Tuple[int, int]]:
    """Contiguous, balanced, deterministic ``[start, stop)`` index ranges.

    The first ``n_items % n_shards`` shards get one extra item; empty shards
    are dropped.  Contiguity is what keeps the shard merge order-preserving
    (shard *k* holds exactly the items serial execution would have processed
    at positions ``start_k .. stop_k``).
    """
    if n_items < 0:
        raise ValueError(f"n_items must be non-negative, got {n_items}")
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    n_shards = min(n_shards, n_items) or 1
    base, remainder = divmod(n_items, n_shards)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for shard in range(n_shards):
        stop = start + base + (1 if shard < remainder else 0)
        if stop > start:
            ranges.append((start, stop))
        start = stop
    return ranges


class _CountingIterator:
    """Wraps an iterator, counting the items that pass through it.

    Streaming walks cannot ``len()`` their input; the count feeds the
    report's provenance (``n_images`` etc.) without materialising anything.
    """

    def __init__(self, items: Iterable) -> None:
        self._items = iter(items)
        self.count = 0

    def __iter__(self) -> Iterator:
        for item in self._items:
            self.count += 1  # repro: allow[concurrency-shared-state] -- the wrapped iterator has a single consumer; count is read after exhaustion
            yield item


def _iter_split(dataset, split: str, cache: bool) -> Iterator:
    """Lazily iterate one split, uncached where the substrate supports it."""
    iterator = getattr(dataset, f"iter_{split}", None)
    if iterator is not None:
        if not cache and supports_cache_kwarg(iterator):
            return iterator(cache=False)
        return iterator()
    return iter(getattr(dataset, f"{split}_samples")())


def _iter_index_range(dataset, start: int, stop: int, cache: bool) -> Iterator:
    """Lazily yield validation samples ``start..stop`` of a substrate."""
    accessor = dataset.val_sample
    pass_cache = not cache and supports_cache_kwarg(accessor)
    for index in range(start, stop):
        yield accessor(index, cache=False) if pass_cache else accessor(index)


@EXECUTION_BACKENDS.register("serial")
class SerialBackend:
    """In-process, item-by-item execution (the deterministic default).

    Also the base class of the other backends: it implements the three
    kind-specific stage-1 walks (extraction / sequence processing / rule
    comparison) against the pipelines' own batched-execution layer, and the
    subclasses only change the worker count or the process fan-out.  The
    evaluation protocols always run in the parent, on the merged stage-1
    result, so they consume one RNG stream regardless of the backend.
    """

    name = "serial"

    def __init__(self, execution: ExecutionConfig) -> None:
        self.execution = execution
        self.workers = normalize_max_workers(execution.workers)
        self.streaming = bool(execution.streaming)
        self.store = None
        self.tracer = NULL_TRACER
        #: Backend-side fit cache counters (decision priors), merged into
        #: ``report.cache["fits"]`` by the Runner when a store is attached.
        self.fit_cache = {"hits": 0, "misses": 0}

    def attach_store(self, store) -> None:
        """Install a :class:`repro.store.ResultStore` for result reuse.

        Called by the Runner when it was built with a store.  The serial and
        thread backends keep no per-item cache of their own (whole-report
        memoisation already happens in the Runner); the ``process`` backend
        uses the store for per-shard caching.
        """
        self.store = store  # repro: allow[concurrency-shared-state] -- Runner wires the store on the parent thread before any walk starts

    def attach_tracer(self, tracer) -> None:
        """Install the run's :class:`repro.obs.Tracer` (default: no-op).

        The ``process`` backend embeds the tracer's span context into the
        picklable shard specs and merges the child timelines it gets back;
        the in-process backends run entirely under the Runner's stage spans.
        """
        self.tracer = tracer  # repro: allow[concurrency-shared-state] -- Runner wires the tracer on the parent thread before any walk starts

    # ------------------------------------------------------------------ ---
    def _pipeline_workers(self) -> Optional[int]:
        """Worker count handed to the pipeline calls.

        ``None`` defers to the pipeline's extraction-config default, which
        for the serial backend preserves the pre-backend behaviour exactly.
        """
        return None

    def default_workers(self) -> int:
        """Effective worker count under the library-wide contract.

        ``None`` lets the backend use the machine's core count; explicit 0
        and 1 mean serial (never "pick for me"), matching the documented
        ``ExecutionConfig`` semantics.
        """
        if self.workers is None:
            return os.cpu_count() or 1
        return max(1, self.workers)

    # ------------------------------------------------------- metaseg stage 1
    def extract_metaseg(self, runner, resolved, pipeline) -> Tuple[MetricsDataset, int]:
        """Extract the full metrics dataset; returns (dataset, n_images)."""
        if self.streaming:
            counter = _CountingIterator(_iter_split(resolved.dataset, "val", cache=False))
            try:
                metrics = pipeline.extract_dataset_streaming(
                    counter, max_workers=self._pipeline_workers()
                )
            except ValueError as exc:
                # Only rewrite the pipeline's own empty-input error; any other
                # ValueError is a real dataset/extraction problem and must
                # surface unchanged.
                if counter.count == 0 and str(exc) == "no samples provided":
                    raise ValueError(
                        "metaseg needs data.n_val >= 1 evaluation samples"
                    ) from None
                raise
            return metrics, counter.count
        samples = resolved.dataset.val_samples()
        if not samples:
            raise ValueError("metaseg needs data.n_val >= 1 evaluation samples")
        metrics = pipeline.extract_dataset_batched(
            samples, max_workers=self._pipeline_workers()
        )
        return metrics, len(samples)

    # --------------------------------------------------- timedynamic stage 1
    def process_timedynamic(self, runner, resolved, pipeline) -> List:
        """Process every sequence; returns the ordered SequenceMetrics list.

        The compact per-sequence metrics are the protocol's input, so the
        list itself is O(segments); ``streaming`` additionally regenerates
        and releases the raw frames sequence by sequence instead of caching
        the pixel data of the whole dataset (and keeps any requested thread
        fan-out — the two are orthogonal).
        """
        return pipeline.process_dataset(
            resolved.dataset,
            max_workers=self._pipeline_workers(),
            cache=not self.streaming,
        )

    # ------------------------------------------------------ decision stage 1
    @staticmethod
    def _check_decision_splits(dataset) -> None:
        """Fail with the actionable config error before priors are fitted.

        ``fit_priors`` would otherwise raise its own (less actionable)
        error on an empty training stream.
        """
        if getattr(dataset, "n_train", None) == 0 or getattr(dataset, "n_val", None) == 0:
            raise ValueError("decision needs data.n_train >= 1 and data.n_val >= 1")

    def _fit_decision_priors(self, resolved, comparison, timer) -> int:
        """Fit the decision priors, or load them from the store; returns n_train.

        The priors are a pure function of the training labels, so with a
        store attached they are cached under :func:`repro.store.priors_key`
        (which excludes the rule/strength/category fields — a rule sweep on
        a fixed substrate reuses one fit).  The cached payload carries the
        training-walk count alongside the priors so a hit reproduces the
        report's ``n_train_images`` provenance without re-walking the split.
        """
        key = None
        if self.store is not None:
            key = priors_key(resolved.config.to_dict())
            cached = self.store.get(key, codec="pickle")
            if (
                isinstance(cached, dict)
                and "priors" in cached
                and int(cached.get("n_train", 0)) > 0
            ):
                with timer("fit_priors"):
                    comparison.set_priors(cached["priors"])
                self.fit_cache["hits"] += 1  # repro: allow[concurrency-shared-state] -- decision priors are fitted on the parent thread only
                return int(cached["n_train"])
        train = _CountingIterator(_iter_split(resolved.dataset, "train", cache=False))
        try:
            with timer("fit_priors"):
                comparison.fit_priors(train)
        except ValueError as exc:
            # Rewrite only the estimator's own empty-input error; anything
            # else is a real data problem and must surface unchanged.
            if train.count == 0 and "at least one label map" in str(exc):
                raise ValueError(
                    "decision needs data.n_train >= 1 and data.n_val >= 1"
                ) from None
            raise
        if not train.count:
            raise ValueError("decision needs data.n_train >= 1 and data.n_val >= 1")
        if self.store is not None:
            self.fit_cache["misses"] += 1  # repro: allow[concurrency-shared-state] -- decision priors are fitted on the parent thread only
            self.store.put(
                key,
                {"priors": comparison.priors, "n_train": train.count},
                codec="pickle",
                provenance={
                    "type": "priors",
                    "kind": resolved.config.kind,
                    "n_train": train.count,
                    "config_hash": key,
                },
            )
        return train.count

    def compare_decision(self, runner, resolved, comparison, timer) -> Tuple:
        """Fit priors and compare rules; returns (result, n_train, n_val)."""
        config = resolved.config
        if self.streaming:
            self._check_decision_splits(resolved.dataset)
            n_train = self._fit_decision_priors(resolved, comparison, timer)
            with timer("evaluate"):
                result, n_val = comparison.compare_streaming(
                    _iter_split(resolved.dataset, "val", cache=False),
                    rules=resolved.rules,
                    strengths=config.evaluation.strengths,
                    max_workers=self._pipeline_workers(),
                )
            return result, n_train, n_val
        self._check_decision_splits(resolved.dataset)
        val_samples = resolved.dataset.val_samples()
        if not val_samples:
            raise ValueError("decision needs data.n_train >= 1 and data.n_val >= 1")
        n_train = self._fit_decision_priors(resolved, comparison, timer)
        with timer("evaluate"):
            result = comparison.compare(
                val_samples,
                rules=resolved.rules,
                strengths=config.evaluation.strengths,
                max_workers=self._pipeline_workers(),
            )
        return result, n_train, len(val_samples)


@EXECUTION_BACKENDS.register("thread")
class ThreadBackend(SerialBackend):
    """Thread-pool fan-out of independent items (order-preserving).

    Identical to ``serial`` except that the per-item work of each walk is
    handed ``workers`` threads through the pipelines' batched-execution
    layer.  Results are merged in input order, so the numbers are bitwise
    equal to serial for every worker count.
    """

    name = "thread"

    def _pipeline_workers(self) -> Optional[int]:
        return self.default_workers()


# ---------------------------------------------------------- process workers
# Module-level functions so they are picklable; each rebuilds its components
# from the shipped config (bit-identical thanks to per-index derived seeds)
# and walks only its own index range.  The workers never consult the config's
# execution section, so there is no recursive fan-out.


def _shard_runner_and_config(spec: Dict) -> Tuple:
    """(runner, resolved) for one shard spec, rebuilt from the config dict."""
    from repro.api.runner import Runner

    config = ExperimentConfig.from_dict(spec["config"])
    runner = Runner()
    return runner, runner.resolve(config)


def _traced_shard(spec: Dict, payload_fn):
    """Run one shard worker under its parent's span context (when carried).

    A spec without a ``"trace"`` entry returns the payload untouched.  With
    one, the worker continues the parent trace: it builds a child
    :class:`~repro.obs.Tracer` on the shipped trace id (with a per-shard
    span-id prefix so merged timelines never collide), runs the payload
    under a span parented to the remote parent span, and returns
    ``{"__trace__": export, "payload": payload}`` — the parent unwraps the
    envelope (and strips it before any store write) and merges the child
    timeline in shard order.
    """
    trace = spec.get("trace")
    if trace is None:
        return payload_fn(spec)
    tracer = Tracer(trace_id=trace["trace_id"], id_prefix=trace["id_prefix"])
    with tracer.span(
        trace["name"],
        parent_id=trace["parent_span_id"],
        start=spec["start"],
        stop=spec["stop"],
    ):
        payload = payload_fn(spec)
    return {"__trace__": tracer.export(), "payload": payload}


def _metaseg_shard_payload(spec: Dict) -> MetricsDataset:
    runner, resolved = _shard_runner_and_config(spec)
    pipeline = runner.build_metaseg_pipeline(resolved)
    samples = _iter_index_range(
        resolved.dataset, spec["start"], spec["stop"], cache=False
    )
    # The streaming fold keeps the shard's transient memory O(chunk) and is
    # bitwise identical to the batched path.  Workers run their extraction
    # serially (max_workers=0, like the decision shard): the process fan-out
    # already claims the cores, and letting extraction.max_workers open a
    # nested thread pool per shard would oversubscribe them.
    return pipeline.extract_dataset_streaming(
        samples, index_offset=spec["start"], max_workers=0
    )


def _metaseg_shard(spec: Dict):
    """Extract the metrics of validation samples ``start..stop`` of the config."""
    return _traced_shard(spec, _metaseg_shard_payload)


def _timedynamic_shard_payload(spec: Dict) -> List:
    runner, resolved = _shard_runner_and_config(spec)
    pipeline = runner.build_timedynamic_pipeline(resolved)
    return list(
        pipeline.iter_process_dataset(
            resolved.dataset, start=spec["start"], stop=spec["stop"], cache=False
        )
    )


def _timedynamic_shard(spec: Dict):
    """Process sequences ``start..stop`` of the config."""
    return _traced_shard(spec, _timedynamic_shard_payload)


def _decision_shard_payload(spec: Dict) -> List:
    runner, resolved = _shard_runner_and_config(spec)
    comparison = runner.build_decision_comparison(resolved)
    comparison.set_priors(spec["priors"])
    samples = _iter_index_range(
        resolved.dataset, spec["start"], spec["stop"], cache=False
    )
    return list(
        comparison.iter_compare_samples(
            samples,
            rules=resolved.rules,
            index_offset=spec["start"],
            strengths=resolved.config.evaluation.strengths,
            max_workers=0,
        )
    )


def _decision_shard(spec: Dict):
    """Per-sample rule results of validation samples ``start..stop``.

    The parent ships the fitted priors (fitting them once is cheaper than
    refitting per worker, and trivially bit-identical); the fold over the
    concatenated per-sample streams happens in the parent.
    """
    return _traced_shard(spec, _decision_shard_payload)


@EXECUTION_BACKENDS.register("process")
class ProcessBackend(SerialBackend):
    """Sharded multi-process execution over ``DataConfig`` index ranges.

    The parent splits the workload's index range into ``workers`` contiguous
    shards (:func:`shard_ranges`), ships each worker a picklable spec (the
    config dict plus its ``[start, stop)`` range, and for the decision kind
    the fitted priors), and merges the per-shard results **in shard index
    order** — which, because shards are contiguous, is exactly input order,
    so the merged stage-1 result is bitwise identical to serial.  The
    evaluation protocol then runs in the parent on the merged result.

    Requires a substrate with per-index accessors (``val_sample(i)`` /
    ``samples(i)``), which every built-in substrate provides; with a single
    worker (or a single-item workload) it degenerates to the serial walk.
    The same seam extends to multi-machine sharding: a remote worker that
    receives the spec dict produces the identical shard payload.
    """

    name = "process"

    def __init__(self, execution: ExecutionConfig) -> None:
        super().__init__(execution)
        #: Per-shard cache counters of this run (kept even without a store,
        #: so the Runner's bookkeeping never needs a hasattr dance).
        self.shard_cache = {"hits": 0, "misses": 0}

    def _specs(self, resolved, n_items: int) -> List[Dict]:
        config_dict = resolved.config.to_dict()
        specs = [
            {"config": config_dict, "start": start, "stop": stop}
            for start, stop in shard_ranges(n_items, self.default_workers())
        ]
        if self.tracer.enabled:
            # Continue the parent trace across the process boundary: each
            # spec carries the open stage span as remote parent plus a
            # per-shard id prefix.  The ``trace`` entry is ignored by
            # ``shard_key`` (which hashes only config + index range), so
            # traced and untraced shard payloads share cache entries.
            context = self.tracer.current_context()
            if context is not None:
                for index, spec in enumerate(specs):
                    spec["trace"] = {
                        "trace_id": context["trace_id"],
                        "parent_span_id": context["parent_span_id"],
                        "id_prefix": f"{context['parent_span_id']}.{index}.",
                        "name": f"shard{index}",
                    }
        return specs

    def _absorb_shard_trace(self, result):
        """Unwrap one shard result, folding a carried child timeline in.

        Traced workers return ``{"__trace__": export, "payload": payload}``;
        the envelope is stripped here — before the payload is cached or
        merged — so store entries and stage-1 merges never see telemetry.
        """
        if isinstance(result, dict) and "__trace__" in result:
            self.tracer.merge(result["__trace__"])
            return result["payload"]
        return result

    def _compute_shards(self, worker, specs: List[Dict]) -> List:
        """Actually compute shard specs; results in spec order.

        The single seam subclasses override to change *where* shards run
        (the ``distributed`` backend replaces the process pool with its
        fault-tolerant work queue); everything above this call — caching,
        trace absorption, merging — is transport-agnostic.
        """
        with ProcessPoolExecutor(max_workers=len(specs)) as pool:
            return list(pool.map(worker, specs))

    def _map_shards(self, worker, specs: List[Dict]) -> List:
        """Run the shard specs on a process pool, results in shard order.

        With a store attached, shard results are content-addressed by
        (stage-1 config hash, index range): cached shards are served without
        touching the pool, only the missing ones are computed (and then
        published), and — because the cache key excludes every field that
        cannot influence the shard payload — a sweep that only changes
        protocol-side fields reuses every shard.  If everything is cached,
        no process pool is spawned at all.
        """
        if self.store is None:
            computed = self._compute_shards(worker, specs)
            # Shard order == input order, so child timelines merge in order.
            return [self._absorb_shard_trace(result) for result in computed]
        keys = [
            shard_key(spec["config"], spec["start"], spec["stop"]) for spec in specs
        ]
        results: List = [self.store.get(key, codec="pickle") for key in keys]
        missing = [index for index, result in enumerate(results) if result is None]
        self.shard_cache["hits"] += len(specs) - len(missing)  # repro: allow[concurrency-shared-state] -- shard futures are consumed on the parent thread only
        self.shard_cache["misses"] += len(missing)  # repro: allow[concurrency-shared-state] -- shard futures are consumed on the parent thread only
        if missing:
            computed = self._compute_shards(worker, [specs[i] for i in missing])
            for index, result in zip(missing, computed):
                result = self._absorb_shard_trace(result)
                results[index] = result
                spec = specs[index]
                self.store.put(
                    keys[index],
                    result,
                    codec="pickle",
                    provenance={
                        "type": "shard",
                        "kind": spec["config"]["kind"],
                        "start": spec["start"],
                        "stop": spec["stop"],
                        "config_hash": keys[index],
                    },
                )
        return results

    def _use_fallback(self, n_items: int) -> bool:
        """Serial fallback when fan-out cannot help (one worker / one item)."""
        return self.default_workers() <= 1 or n_items <= 1

    @staticmethod
    def _sharded_workload_size(dataset, size_attribute: str, accessor: str = "val_sample") -> int:
        """Size of the shardable index range, or a clear capability error.

        A missing attribute means the substrate cannot be index-sharded —
        which is a backend-choice problem, not an empty dataset — so the two
        cases get distinct messages.
        """
        size = getattr(dataset, size_attribute, None)
        if size is None or not hasattr(dataset, accessor):
            raise ValueError(
                f"the process backend shards index ranges and needs a dataset "
                f"substrate exposing {size_attribute!r} and {accessor!r}; "
                f"use backend 'serial' or 'thread' for this substrate"
            )
        return int(size)

    # ------------------------------------------------------------------ ---
    def extract_metaseg(self, runner, resolved, pipeline) -> Tuple[MetricsDataset, int]:
        n_val = self._sharded_workload_size(resolved.dataset, "n_val")
        if not n_val:
            raise ValueError("metaseg needs data.n_val >= 1 evaluation samples")
        if self._use_fallback(n_val):
            return super().extract_metaseg(runner, resolved, pipeline)
        shards = self._map_shards(_metaseg_shard, self._specs(resolved, n_val))
        return MetricsDataset.concatenate(shards), n_val

    def process_timedynamic(self, runner, resolved, pipeline) -> List:
        n_sequences = self._sharded_workload_size(
            resolved.dataset, "n_sequences", accessor="samples"
        )
        if self._use_fallback(n_sequences):
            return super().process_timedynamic(runner, resolved, pipeline)
        shards = self._map_shards(_timedynamic_shard, self._specs(resolved, n_sequences))
        return list(chain.from_iterable(shards))

    def compare_decision(self, runner, resolved, comparison, timer) -> Tuple:
        n_val = self._sharded_workload_size(resolved.dataset, "n_val")
        if self._use_fallback(n_val):
            return super().compare_decision(runner, resolved, comparison, timer)
        self._check_decision_splits(resolved.dataset)
        n_train = self._fit_decision_priors(resolved, comparison, timer)
        specs = self._specs(resolved, n_val)
        for spec in specs:
            spec["priors"] = comparison.priors
        with timer("evaluate"):
            shards = self._map_shards(_decision_shard, specs)
            result, folded = comparison.fold_compare_results(
                chain.from_iterable(shards), rules=resolved.rules
            )
        if folded != n_val:
            raise RuntimeError(
                f"shard merge folded {folded} samples but the dataset "
                f"advertises n_val={n_val}; a shard dropped or duplicated work"
            )
        return result, n_train, n_val
