"""The unified experiment runner.

One :class:`Runner` executes any :class:`~repro.api.config.ExperimentConfig`:
it resolves every named component through the registries
(:mod:`repro.api.registry`), builds the substrate and pipeline for the
requested kind (``metaseg`` / ``timedynamic`` / ``decision``), runs the
paper's protocol, and returns a unified :class:`ExperimentReport` — kind
tag, flat per-variant metric tables, and provenance (config echo, seed,
stage timings).

Every stochastic component derives its seed from the config's single
``seed`` field via fixed offsets (see :func:`derived_seeds`), so a Runner
run is bitwise reproducible and bitwise identical to the equivalent direct
pipeline calls made with the same derived seeds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Union

from repro.api.config import ExperimentConfig
from repro.api.fitted import FittedModel
from repro.obs import Tracer, timings_view
from repro.store import FitCache, model_key, report_key
from repro.api.registry import (
    DATASETS,
    DECISION_RULES,
    EXECUTION_BACKENDS,
    META_CLASSIFIERS,
    META_REGRESSORS,
    METRIC_GROUPS,
    NETWORK_PROFILES,
)
from repro.core.pipeline import MetaSegPipeline
from repro.decision.pipeline import DecisionRuleComparison
from repro.segmentation.network import SimulatedSegmentationNetwork
from repro.timedynamic.pipeline import TimeDynamicPipeline
from repro.utils.arrays import mean_std

#: A table is a list of flat rows; every row is JSON-serialisable.
Table = List[Dict[str, object]]


def _table_rows(cells) -> Table:
    """Flatten (key-fields, {metric: (mean, std)}) cells into table rows.

    Every report table shares this row shape — the key fields of the cell
    plus ``metric``/``mean``/``std`` columns — so downstream consumers need
    no kind-specific handling.
    """
    rows: Table = []
    for keys, metrics_by_name in cells:
        for metric, (mean, std) in metrics_by_name.items():
            rows.append({**keys, "metric": metric, "mean": mean, "std": std})
    return rows


class DerivedSeeds(NamedTuple):
    """Fixed per-component seeds derived from one experiment seed.

    The offsets are part of the public reproducibility contract: a direct
    pipeline call using these seeds is bitwise identical to the Runner.
    """

    data: int
    network: int
    reference_network: int
    protocol: int


def derived_seeds(seed: int) -> DerivedSeeds:
    """Derive the per-component seeds for one experiment seed."""
    seed = int(seed)
    return DerivedSeeds(
        data=seed, network=seed + 1, reference_network=seed + 2, protocol=seed + 3
    )


@dataclass
class ExperimentReport:
    """Unified result of one experiment run.

    ``tables`` maps a table name to a list of flat rows (plain dicts), the
    same shape for every experiment kind, so downstream consumers (CLI,
    benchmarks, dashboards) need no kind-specific handling.  ``provenance``
    echoes the config, seed and workload sizes; ``timings`` holds per-stage
    wall-clock seconds — a flat view derived from the run's span tree
    (:func:`repro.obs.timings_view`), with the classic top-level stage keys
    (``resolve``/``extract``/``evaluate``/``total``) plus dotted keys for
    nested spans (``extract.shard3``) — and is excluded from
    :meth:`to_json` by default so that equal configs serialise to
    bitwise-equal reports.
    """

    kind: str
    name: str
    seed: int
    config: Dict[str, object]
    tables: Dict[str, Table] = field(default_factory=dict)
    provenance: Dict[str, object] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    cache: Dict[str, object] = field(default_factory=dict)
    """Result-store bookkeeping of this run (``hit``/``key``/shard counters).

    Like ``timings`` it differs between a cached and a fresh run, so it is
    excluded from :meth:`to_dict`/:meth:`to_json` — cached reports stay
    bitwise identical to freshly computed ones."""

    # ------------------------------------------------------------------ ---
    def table(self, name: str) -> Table:
        """Return one metric table by name."""
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(
                f"report has no table {name!r}; available: {', '.join(sorted(self.tables))}"
            ) from None

    def summary_rows(self) -> List[str]:
        """Human-readable rows covering every table of the report."""
        header = f"experiment: {self.kind}"
        if self.name:
            header += f" ({self.name})"
        rows = [header + f"  seed: {self.seed}"]
        for key, value in sorted(self.provenance.items()):
            rows.append(f"  {key}: {value}")
        for table_name in sorted(self.tables):
            rows.append(f"{table_name}:")
            for row in self.tables[table_name]:
                cells = []
                for key, value in row.items():
                    if isinstance(value, float):
                        cells.append(f"{key}={value:.4f}")
                    else:
                        cells.append(f"{key}={value}")
                rows.append("  " + "  ".join(cells))
        return rows

    def to_dict(self, include_timings: bool = False) -> Dict[str, object]:
        """Plain-dict view; timings are opt-in (they differ run to run)."""
        out: Dict[str, object] = {
            "kind": self.kind,
            "name": self.name,
            "seed": self.seed,
            "config": self.config,
            "tables": self.tables,
            "provenance": self.provenance,
        }
        if include_timings:
            out["timings"] = self.timings
        return out

    def to_json(self, indent: int = 2, include_timings: bool = False) -> str:
        """Deterministic JSON serialisation (bitwise equal for equal configs)."""
        return json.dumps(
            self.to_dict(include_timings=include_timings), indent=indent, sort_keys=True
        )

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExperimentReport":
        """Rebuild a report from its :meth:`to_dict` form."""
        return cls(
            kind=payload["kind"],
            name=payload.get("name", ""),
            seed=payload["seed"],
            config=payload.get("config", {}),
            tables=payload.get("tables", {}),
            provenance=payload.get("provenance", {}),
            timings=payload.get("timings", {}),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentReport":
        """Rebuild a report from its :meth:`to_json` form."""
        return cls.from_dict(json.loads(text))


@dataclass
class ResolvedExperiment:
    """All registry entries of a config resolved into live components.

    ``dataset`` is the built substrate, ``network`` (and, for the
    time-dynamic kind, ``reference_network``) the networks — simulated ones
    for ordinary profiles, ready adapter objects (e.g. the disk-backed
    ``softmax_dump``) for registry entries marked ``builds_network`` — and
    ``feature_subset`` the resolved metric-group column list (``None`` for
    all features).  ``classifiers``/``regressors``/``rules`` echo the
    validated registry names.
    """

    config: ExperimentConfig
    seeds: DerivedSeeds
    dataset: object
    network: object
    reference_network: Optional[SimulatedSegmentationNetwork]
    feature_subset: Optional[List[str]]
    classifiers: List[str]
    regressors: List[str]
    rules: List[str]


class Runner:
    """Resolves a config through the registries and runs the experiment.

    The Runner owns no state between runs; it is safe to reuse one instance
    for many configs.  Dispatch is by ``config.kind``::

        report = Runner().run(ExperimentConfig(kind="metaseg"))

    Passing a :class:`repro.store.ResultStore` enables result caching at two
    granularities: whole reports are memoised by the full config hash, and
    the ``process`` backend additionally caches per-shard stage-1 payloads
    keyed by (stage-1 config hash, index range) — so a sweep that only
    changes protocol-side fields (e.g. the meta-model) reuses every
    extraction shard.  Cached reports are bitwise identical to fresh ones
    (timings and cache bookkeeping live outside the serialised payload).

    ``tracer`` selects the telemetry sink for the run's stage spans
    (:mod:`repro.obs`).  The default (``None``) gives every ``run()`` its
    own private :class:`~repro.obs.Tracer` purely to derive the
    backward-compatible ``report.timings`` view; pass a shared tracer to
    collect the full span tree (``python -m repro run --trace``), or
    :data:`~repro.obs.NULL_TRACER` to disable span recording entirely
    (``report.timings`` is then empty).  Telemetry never enters the
    deterministic report payload.
    """

    def __init__(
        self, store: Optional[object] = None, tracer: Optional[object] = None
    ) -> None:
        self.store = store
        self.tracer = tracer

    def _run_tracer(self) -> object:
        """The tracer of one ``run()``: configured, or a private per-run one."""
        return self.tracer if self.tracer is not None else Tracer()

    def run(self, config: Union[ExperimentConfig, Dict[str, object]]) -> ExperimentReport:
        """Execute one experiment and return its unified report.

        The dataset walk is delegated to the execution backend named by
        ``config.execution.backend`` (``serial`` / ``thread`` / ``process``,
        resolved through the ``execution_backends`` registry); every backend
        is bitwise identical to serial, so the choice is purely about
        wall-clock and memory.
        """
        if isinstance(config, dict):
            config = ExperimentConfig.from_dict(config)
        config.validate()
        tracer = self._run_tracer()
        key = None
        if self.store is not None:
            with tracer.span("cache_lookup") as lookup:
                key = report_key(config.to_dict())
                payload = self.store.get(key, codec="json")
            if payload is not None:
                report = ExperimentReport.from_dict(payload)
                report.timings = (
                    {"cache_lookup": lookup.duration_s}
                    if lookup.duration_s is not None
                    else {}
                )
                report.cache = {"hit": True, "key": key}
                return report
        with tracer.span("run", kind=config.kind, seed=config.seed) as root:
            with tracer.span("resolve"):
                resolved = self.resolve(config)
                backend = EXECUTION_BACKENDS.get(config.execution.backend)(
                    config.execution
                )
                attach_tracer = getattr(backend, "attach_tracer", None)
                if attach_tracer is not None:
                    attach_tracer(tracer)
                fit_cache = None
                if self.store is not None:
                    attach = getattr(backend, "attach_store", None)
                    if attach is not None:
                        attach(self.store)
                    fit_cache = FitCache(self.store, config.to_dict())
            runner = {
                "metaseg": self._run_metaseg,
                "timedynamic": self._run_timedynamic,
                "decision": self._run_decision,
            }[config.kind]
            report = runner(resolved, backend, tracer, fit_cache)
        report.timings = timings_view(tracer.records(), root.span_id)
        if self.store is not None:
            self.store.put(
                key,
                report.to_dict(),
                codec="json",
                provenance={
                    "type": "report",
                    "kind": config.kind,
                    "name": config.name,
                    "seed": config.seed,
                    "config_hash": key,
                },
            )
            report.cache = {"hit": False, "key": key}
            shard_cache = getattr(backend, "shard_cache", None)
            if shard_cache:
                report.cache["shards"] = dict(shard_cache)
            fits = {"hits": 0, "misses": 0}
            for counters in (fit_cache.counters, getattr(backend, "fit_cache", None)):
                if counters:
                    fits["hits"] += int(counters.get("hits", 0))
                    fits["misses"] += int(counters.get("misses", 0))
            if fits["hits"] or fits["misses"]:
                report.cache["fits"] = fits
        dispatch_stats = getattr(backend, "dispatch_stats", None)
        if dispatch_stats is not None:
            # Queue counters of the distributed backend (retries, worker
            # losses, dedup hits ...).  ``report.cache`` is excluded from the
            # serialised report, so the stats never perturb cache keys or
            # stored payloads.
            report.cache["dispatch"] = dict(dispatch_stats)
        return report

    def fit(self, config: Union[ExperimentConfig, Dict[str, object]]) -> FittedModel:
        """Fit (once) the serving meta-model of a metaseg config.

        Extracts the full metrics dataset and fits the config's *first*
        registered classifier and regressor on it, returning a
        :class:`~repro.api.fitted.FittedModel` ready for fit-once/score-many
        use (:meth:`score`, ``python -m repro serve``).  With a store
        attached the artifact is persisted under its content key
        (:func:`repro.store.model_key`) and later calls reload it instead of
        re-extracting and re-fitting; ``model.cache`` records ``hit``/``key``
        like ``report.cache`` does.
        """
        if isinstance(config, dict):
            config = ExperimentConfig.from_dict(config)
        config.validate()
        if config.kind != "metaseg":
            raise ValueError(
                f"Runner.fit builds single-frame scoring models and requires "
                f"kind 'metaseg', got {config.kind!r}"
            )
        key = None
        if self.store is not None:
            key = model_key(config.to_dict())
            state = self.store.get(key, codec="json")
            if state is not None:
                model = FittedModel.from_state(state)
                model.cache = {"hit": True, "key": key}
                return model
        resolved = self.resolve(config)
        backend = EXECUTION_BACKENDS.get(config.execution.backend)(config.execution)
        if self.store is not None:
            attach = getattr(backend, "attach_store", None)
            if attach is not None:
                attach(self.store)
        pipeline = self.build_metaseg_pipeline(resolved)
        metrics, n_images = backend.extract_metaseg(self, resolved, pipeline)
        classifier_name = resolved.classifiers[0]
        regressor_name = resolved.regressors[0]
        params = config.meta_models.model_params
        classifier = META_CLASSIFIERS.get(classifier_name)(
            penalty=config.meta_models.classification_penalty,
            feature_subset=resolved.feature_subset,
            random_state=resolved.seeds.protocol,
            **params.get(classifier_name, {}),
        )
        classifier.fit(metrics)
        regressor = META_REGRESSORS.get(regressor_name)(
            penalty=config.meta_models.regression_penalty,
            feature_subset=resolved.feature_subset,
            random_state=resolved.seeds.protocol,
            **params.get(regressor_name, {}),
        )
        regressor.fit(metrics)
        model = FittedModel(
            classifier=classifier,
            regressor=regressor,
            label_space=pipeline.label_space,
            connectivity=config.extraction.connectivity,
            feature_names=list(metrics.feature_names),
            provenance={
                "kind": config.kind,
                "name": config.name,
                "seed": config.seed,
                "network": resolved.network.profile.name,
                "classifier": classifier_name,
                "regressor": regressor_name,
                "n_images": n_images,
                "n_segments": len(metrics),
            },
        )
        if self.store is not None:
            self.store.put(
                key,
                model.to_state(),
                codec="json",
                provenance={
                    "type": "model",
                    "kind": config.kind,
                    "name": config.name,
                    "seed": config.seed,
                    "config_hash": key,
                },
            )
            model.cache = {"hit": False, "key": key}
        return model

    def score(
        self,
        config: Union[ExperimentConfig, Dict[str, object]],
        model: Optional[FittedModel] = None,
    ) -> Dict[str, object]:
        """Batch-score the validation split with a fitted model.

        The reference for the serving path: walks ``val_samples()`` in
        order and scores every frame through the same
        :meth:`FittedModel.score_frame` the HTTP server uses, so server
        responses are bitwise comparable to this output.  ``model`` defaults
        to :meth:`fit` of the same config.
        """
        if isinstance(config, dict):
            config = ExperimentConfig.from_dict(config)
        config.validate()
        if model is None:
            model = self.fit(config)
        resolved = self.resolve(config)
        extractor = model.build_extractor()
        frames: List[Dict[str, object]] = []
        for index, sample in enumerate(resolved.dataset.val_samples()):
            probs = resolved.network.predict_probabilities(sample.labels, index=index)
            frames.append(
                model.score_frame(probs, extractor=extractor, image_id=sample.image_id)
            )
        return {"frames": frames, "n_frames": len(frames)}

    # ------------------------------------------------------------------ ---
    def resolve(self, config: ExperimentConfig) -> ResolvedExperiment:
        """Resolve every registry name of a validated config into components.

        Raises :class:`repro.api.registry.RegistryError` (with the available
        names) on any unknown component name, before anything expensive runs.
        """
        seeds = derived_seeds(config.seed)
        # Backend first: it is the cheapest lookup and gates everything else.
        EXECUTION_BACKENDS.get(config.execution.backend)
        # A registry entry marked ``builds_network`` is an adapter factory:
        # called with the network section and the seed, it returns a ready
        # network (e.g. softmax_dump serving precomputed fields from disk)
        # instead of a NetworkProfile to wrap in the simulated network.
        factory = NETWORK_PROFILES.get(config.network.profile)
        if getattr(factory, "builds_network", False):
            if config.network.overrides:
                raise ValueError(
                    f"network: profile {config.network.profile!r} serves "
                    f"precomputed outputs; profile overrides only apply to "
                    f"simulated profiles"
                )
            if config.kind == "timedynamic":
                raise ValueError(
                    f"network: profile {config.network.profile!r} serves "
                    f"single validation frames and cannot drive the "
                    f"time-dynamic kind (video sequences)"
                )
            network = factory(config.network, seeds.network)
        else:
            profile = factory()
            if config.network.overrides:
                profile = profile.with_overrides(**config.network.overrides)
            network = SimulatedSegmentationNetwork(profile, random_state=seeds.network)
        reference_network = None
        if config.kind == "timedynamic":
            reference_factory = NETWORK_PROFILES.get(config.network.reference_profile)
            if getattr(reference_factory, "builds_network", False):
                raise ValueError(
                    f"network: reference_profile {config.network.reference_profile!r} "
                    f"must be a simulated profile (it generates pseudo ground truth)"
                )
            reference_network = SimulatedSegmentationNetwork(
                reference_factory(), random_state=seeds.reference_network
            )
        dataset = DATASETS.get(config.data.dataset)(config.data, seeds.data)
        self._check_dataset_kind(config, dataset)
        # Adapter networks can cross-check the substrate they will be walked
        # against (frame/dump mismatch fails here, not mid-extraction).
        check_dataset = getattr(network, "check_dataset", None)
        if check_dataset is not None:
            check_dataset(dataset)
        group = METRIC_GROUPS.get(config.meta_models.feature_group)
        feature_subset = None if group is None else list(group)
        if config.kind == "timedynamic":
            # Section III shares one method list across both meta tasks, so
            # each name must be registered as classifier AND regressor.
            for name in config.meta_models.classifiers:
                if name not in META_CLASSIFIERS or name not in META_REGRESSORS:
                    raise ValueError(
                        f"timedynamic methods must be registered as both "
                        f"meta-classifier and meta-regressor; {name!r} is not "
                        f"(shared by both: "
                        f"{', '.join(sorted(set(META_CLASSIFIERS) & set(META_REGRESSORS)))})"
                    )
        else:
            for name in config.meta_models.classifiers:
                META_CLASSIFIERS.get(name)
            for name in config.meta_models.regressors:
                META_REGRESSORS.get(name)
        for name in config.evaluation.rules:
            DECISION_RULES.get(name)
        return ResolvedExperiment(
            config=config,
            seeds=seeds,
            dataset=dataset,
            network=network,
            reference_network=reference_network,
            feature_subset=feature_subset,
            classifiers=list(config.meta_models.classifiers),
            regressors=list(config.meta_models.regressors),
            rules=list(config.evaluation.rules),
        )

    @staticmethod
    def _check_dataset_kind(config: ExperimentConfig, dataset: object) -> None:
        """Reject kind/dataset mismatches with a config error, not a crash.

        Both names can be perfectly valid registry entries and still not fit
        together (a video substrate for the single-frame kinds, or vice
        versa); the substrate interface each kind consumes is duck-typed.
        """
        if config.kind == "timedynamic":
            required = ("n_sequences", "samples")
            shape = "a video substrate (KITTI-like)"
        else:
            required = ("train_samples", "val_samples")
            shape = "a single-frame substrate (Cityscapes-like)"
        missing = [name for name in required if not hasattr(dataset, name)]
        if missing:
            raise ValueError(
                f"dataset {config.data.dataset!r} does not fit experiment kind "
                f"{config.kind!r}: it lacks {', '.join(missing)}; "
                f"this kind needs {shape}"
            )

    # ------------------------------------------------------------------ ---
    def _report(self, resolved: ResolvedExperiment) -> ExperimentReport:
        config = resolved.config
        return ExperimentReport(
            kind=config.kind, name=config.name, seed=config.seed, config=config.to_dict()
        )

    # ----------------------------------------------------- pipeline factories
    # Shared by the in-process kind runners and the process-backend shard
    # workers (repro.api.execution), so a shard rebuilds exactly the pipeline
    # the parent would have used.

    def build_metaseg_pipeline(self, resolved: ResolvedExperiment) -> MetaSegPipeline:
        """The MetaSeg pipeline of a resolved config."""
        config = resolved.config
        return MetaSegPipeline(
            resolved.network,
            connectivity=config.extraction.connectivity,
            classification_penalty=config.meta_models.classification_penalty,
            regression_penalty=config.meta_models.regression_penalty,
            extraction=config.extraction,
        )

    def build_timedynamic_pipeline(self, resolved: ResolvedExperiment) -> TimeDynamicPipeline:
        """The time-dynamic pipeline of a resolved config."""
        config = resolved.config
        params = config.meta_models.model_params
        pipeline_kwargs = {}
        if resolved.feature_subset is not None:
            # The metric-group restriction maps to the base features tracked
            # over time (the full time-series vector is built from them).
            pipeline_kwargs["base_features"] = resolved.feature_subset
        return TimeDynamicPipeline(
            test_network=resolved.network,
            reference_network=resolved.reference_network,
            classification_penalty=config.meta_models.classification_penalty,
            regression_penalty=config.meta_models.regression_penalty,
            gradient_boosting_params=params.get("gradient_boosting"),
            neural_network_params=params.get("neural_network"),
            extraction=config.extraction,
            **pipeline_kwargs,
        )

    def build_decision_comparison(self, resolved: ResolvedExperiment) -> DecisionRuleComparison:
        """The decision-rule comparison of a resolved config."""
        config = resolved.config
        return DecisionRuleComparison(
            resolved.network,
            category=config.evaluation.category,
            extraction=config.extraction,
        )

    # ------------------------------------------------------------------ ---
    def _run_metaseg(
        self, resolved: ResolvedExperiment, backend, tracer,
        fit_cache: Optional[FitCache] = None,
    ) -> ExperimentReport:
        config = resolved.config
        pipeline = self.build_metaseg_pipeline(resolved)
        with tracer.span("extract", backend=backend.name) as span:
            metrics, n_images = backend.extract_metaseg(self, resolved, pipeline)
            span.set(n_images=n_images, n_segments=len(metrics))
        with tracer.span("evaluate", n_runs=config.evaluation.n_runs):
            result = pipeline.run_table1_protocol(
                metrics,
                n_runs=config.evaluation.n_runs,
                train_fraction=config.evaluation.train_fraction,
                random_state=resolved.seeds.protocol,
                classification_methods=resolved.classifiers,
                regression_methods=resolved.regressors,
                feature_subset=resolved.feature_subset,
                model_params=config.meta_models.model_params,
                fit_cache=fit_cache,
            )

        report = self._report(resolved)
        report.provenance.update(
            network=result.network_name,
            n_images=n_images,
            n_segments=result.n_segments,
            false_positive_fraction=result.false_positive_fraction,
            n_runs=result.n_runs,
        )
        classification = _table_rows(
            ({"variant": variant}, metrics_by_name)
            for variant, metrics_by_name in result.classification.items()
        )
        classification.append(
            {"variant": "naive", "metric": "accuracy", "mean": result.naive_accuracy, "std": 0.0}
        )
        regression = _table_rows(
            ({"variant": variant}, metrics_by_name)
            for variant, metrics_by_name in result.regression.items()
        )
        report.tables = {"classification": classification, "regression": regression}
        return report

    def _run_timedynamic(
        self, resolved: ResolvedExperiment, backend, tracer,
        fit_cache: Optional[FitCache] = None,
    ) -> ExperimentReport:
        config = resolved.config
        pipeline = self.build_timedynamic_pipeline(resolved)
        with tracer.span("process", backend=backend.name) as span:
            sequences = backend.process_timedynamic(self, resolved, pipeline)
            span.set(n_sequences=len(sequences))
        with tracer.span("evaluate", n_runs=config.evaluation.n_runs):
            result = pipeline.run_protocol(
                sequences,
                n_frames_list=config.evaluation.n_frames_list,
                compositions=config.evaluation.compositions,
                methods=resolved.classifiers,
                n_runs=config.evaluation.n_runs,
                split_fractions=config.evaluation.split_fractions,
                augmentation_factor=config.evaluation.augmentation_factor,
                random_state=resolved.seeds.protocol,
                fit_cache=fit_cache,
            )

        report = self._report(resolved)
        report.provenance.update(
            network=resolved.network.profile.name,
            reference_network=resolved.reference_network.profile.name,
            n_sequences=resolved.dataset.n_sequences,
            n_real_segments=result.n_real_segments,
            n_pseudo_segments=result.n_pseudo_segments,
            n_runs=result.n_runs,
        )
        def cells(nested):
            for composition, by_method in nested.items():
                for method, by_frames in by_method.items():
                    for n_frames, metrics_by_name in sorted(by_frames.items()):
                        yield (
                            {"composition": composition, "method": method,
                             "n_frames": n_frames},
                            metrics_by_name,
                        )

        report.tables = {
            "classification": _table_rows(cells(result.classification)),
            "regression": _table_rows(cells(result.regression)),
        }
        return report

    def _run_decision(
        self, resolved: ResolvedExperiment, backend, tracer,
        fit_cache: Optional[FitCache] = None,
    ) -> ExperimentReport:
        # The decision protocol fits no meta-models; its cacheable fit (the
        # pixel priors) is handled inside the execution backend.  The backend
        # names its own stages ("fit_priors"/"evaluate"), so it receives the
        # span factory as the stage timer.
        comparison = self.build_decision_comparison(resolved)
        result, n_train, n_val = backend.compare_decision(
            self, resolved, comparison, tracer.span
        )

        report = self._report(resolved)
        report.provenance.update(
            network=result.network_name,
            category=result.category,
            n_train_images=n_train,
            n_val_images=n_val,
        )
        report.tables = {
            "rules": _table_rows(
                (
                    {"rule": rule},
                    {
                        "precision": mean_std(stats.precision_values),
                        "recall": mean_std(stats.recall_values),
                        "non_detection_rate": (stats.non_detection_rate(), 0.0),
                        "pixel_accuracy": (result.pixel_accuracy[rule], 0.0),
                    },
                )
                for rule, stats in result.per_rule.items()
            )
        }
        return report


def run_experiment(config: Union[ExperimentConfig, Dict[str, object]]) -> ExperimentReport:
    """Convenience one-shot: ``Runner().run(config)``."""
    return Runner().run(config)
