"""Feature standardisation."""

from __future__ import annotations

import numpy as np

from repro.models.base import check_is_fitted
from repro.utils.validation import check_feature_matrix


class StandardScaler:
    """Standardise features to zero mean and unit variance.

    Constant features (zero variance) are left centred but not scaled, so the
    transform never divides by zero.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True) -> None:
        self.with_mean = with_mean
        self.with_std = with_std
        self.mean_ = None
        self.scale_ = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        """Learn per-feature mean and standard deviation."""
        x = check_feature_matrix(x)
        self.mean_ = x.mean(axis=0) if self.with_mean else np.zeros(x.shape[1])
        if self.with_std:
            std = x.std(axis=0)
            std[std == 0.0] = 1.0
            self.scale_ = std
        else:
            self.scale_ = np.ones(x.shape[1])
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Apply the learned standardisation."""
        check_is_fitted(self, "mean_")
        x = check_feature_matrix(x, allow_empty=True)
        if x.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} features, got {x.shape[1]}"
            )
        return (x - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit to the data and return the standardised data."""
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        """Map standardised data back to the original feature scale."""
        check_is_fitted(self, "mean_")
        x = check_feature_matrix(x, allow_empty=True)
        return x * self.scale_ + self.mean_

    # ------------------------------------------------------------------ ---
    def to_state(self) -> dict:
        """JSON-serialisable fitted state (bitwise-exact round-trip)."""
        check_is_fitted(self, "mean_")
        from repro.models.state import encode_array

        return {
            "type": type(self).__name__,
            "with_mean": self.with_mean,
            "with_std": self.with_std,
            "mean": encode_array(self.mean_),
            "scale": encode_array(self.scale_),
        }

    @classmethod
    def from_state(cls, state: dict) -> "StandardScaler":
        """Rebuild a fitted scaler from its :meth:`to_state` form."""
        from repro.models.state import decode_array, expect_state_type

        expect_state_type(state, cls)
        scaler = cls(with_mean=state["with_mean"], with_std=state["with_std"])
        scaler.mean_ = decode_array(state["mean"])
        scaler.scale_ = decode_array(state["scale"])
        return scaler
