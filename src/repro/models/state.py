"""Deterministic, JSON-serialisable state for the from-scratch models.

Every fitted model in :mod:`repro.models` can round-trip through a plain
dict (``model.to_state()`` / ``Model.from_state(state)``) built from JSON
types only.  The encoding is *bitwise exact*: float64 values are stored as
Python floats, whose JSON rendering (``repr`` shortest round-trip) restores
the identical IEEE-754 bits — so a restored model's predictions are bitwise
equal to the original's.  That exactness is what lets the result store
persist fitted meta-models (the fit-once/score-many split of
:class:`repro.api.fitted.FittedModel` and the protocol-level fit cache of
:class:`repro.store.fits.FitCache`) without breaking the library's
bitwise-reproducibility contract.

Array encoding is ``{"dtype", "shape", "data"}`` with ``data`` the
flattened value list; model states carry a ``"type"`` tag (the class name)
so :func:`model_from_state` can dispatch generically.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


def encode_array(array: np.ndarray) -> Dict[str, object]:
    """Encode an ndarray as JSON types (exact for float64/int64 values)."""
    array = np.asarray(array)
    return {
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "data": array.ravel().tolist(),
    }


def decode_array(payload: Dict[str, object]) -> np.ndarray:
    """Rebuild an ndarray from its :func:`encode_array` form."""
    return np.asarray(payload["data"], dtype=payload["dtype"]).reshape(
        tuple(payload["shape"])
    )


def expect_state_type(state: object, cls: type) -> Dict[str, object]:
    """Validate that *state* is a serialised instance of *cls*; return it."""
    if not isinstance(state, dict) or state.get("type") != cls.__name__:
        got = state.get("type") if isinstance(state, dict) else type(state).__name__
        raise ValueError(f"state is not a serialised {cls.__name__} (got {got!r})")
    return state


def serializable_seed(random_state: object) -> Optional[int]:
    """The int-or-None form of a ``random_state`` parameter.

    Only plain integer seeds (and ``None``) can enter a serialised state or
    a content-addressed cache key; a live ``numpy.random.Generator`` has no
    stable canonical form, so it is rejected.
    """
    if random_state is None:
        return None
    if isinstance(random_state, (int, np.integer)) and not isinstance(
        random_state, bool
    ):
        return int(random_state)
    raise TypeError(
        f"only integer (or None) random_state values can be serialised, "
        f"got {type(random_state).__name__}"
    )


def model_types() -> Dict[str, type]:
    """Class-name → class map of every state-serialisable model.

    Imported lazily so this module stays cycle-free (the model modules do
    not import it back at module level).
    """
    from repro.models.gradient_boosting import (
        GradientBoostingClassifier,
        GradientBoostingRegressor,
    )
    from repro.models.linear import LinearRegression
    from repro.models.logistic import LogisticRegression
    from repro.models.neural_network import MLPClassifier, MLPRegressor
    from repro.models.scaler import StandardScaler
    from repro.models.tree import DecisionTreeRegressor

    return {
        cls.__name__: cls
        for cls in (
            StandardScaler,
            LogisticRegression,
            LinearRegression,
            DecisionTreeRegressor,
            GradientBoostingRegressor,
            GradientBoostingClassifier,
            MLPRegressor,
            MLPClassifier,
        )
    }


def model_to_state(model: object) -> Dict[str, object]:
    """Serialise any supported model via its ``to_state`` method."""
    to_state = getattr(model, "to_state", None)
    if to_state is None:
        raise TypeError(
            f"{type(model).__name__} does not support state serialisation "
            f"(no to_state method)"
        )
    return to_state()


def model_from_state(state: object) -> object:
    """Rebuild a model from a ``"type"``-tagged state dict."""
    if not isinstance(state, dict) or "type" not in state:
        raise ValueError("model state must be a dict with a 'type' tag")
    types = model_types()
    name = state["type"]
    if name not in types:
        raise ValueError(
            f"unknown model type {name!r}; known: {', '.join(sorted(types))}"
        )
    return types[name].from_state(state)
