"""CART regression trees (the weak learners for gradient boosting).

A compact, vectorised implementation: at every node the best axis-aligned
split is found by scanning candidate thresholds per feature (midpoints of
sorted unique values, subsampled to at most ``max_candidate_thresholds``),
minimising the summed squared error of the two children.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.models.base import RegressorMixin, check_is_fitted
from repro.utils.rng import as_rng
from repro.utils.validation import check_feature_matrix, check_vector


@dataclass
class _Node:
    """Binary tree node; leaves carry a constant prediction value."""

    value: float
    feature: Optional[int] = None
    threshold: Optional[float] = None
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class DecisionTreeRegressor(RegressorMixin):
    """Least-squares regression tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (a depth of 0 yields a single leaf).
    min_samples_split:
        Minimum number of samples required to attempt a split.
    min_samples_leaf:
        Minimum number of samples in each child after a split.
    max_candidate_thresholds:
        Upper bound on the number of thresholds examined per feature;
        quantile subsampling is used above this bound.
    max_features:
        Number of features examined per split: ``None`` (all), an int, a
        float fraction in (0, 1], or ``"sqrt"``.  Random feature subsampling
        is the standard variance-reduction/speed-up used by boosted trees on
        wide feature matrices (e.g. the time-series metrics of Section III).
    random_state:
        Seed for the feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_candidate_thresholds: int = 32,
        max_features=None,
        random_state=None,
    ) -> None:
        if max_depth < 0:
            raise ValueError("max_depth must be non-negative")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if max_candidate_thresholds < 1:
            raise ValueError("max_candidate_thresholds must be >= 1")
        if isinstance(max_features, str) and max_features != "sqrt":
            raise ValueError("max_features string form must be 'sqrt'")
        if isinstance(max_features, (int, np.integer)) and not isinstance(max_features, bool):
            if max_features < 1:
                raise ValueError("integer max_features must be >= 1")
        if isinstance(max_features, float) and not 0.0 < max_features <= 1.0:
            raise ValueError("float max_features must be in (0, 1]")
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_candidate_thresholds = int(max_candidate_thresholds)
        self.max_features = max_features
        self.random_state = random_state
        self.root_ = None
        self.n_features_ = None

    # ------------------------------------------------------------------ ---
    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Grow the tree greedily on the training data."""
        x = check_feature_matrix(x)
        y = check_vector(y, n=x.shape[0])
        self.n_features_ = x.shape[1]
        self._rng = as_rng(self.random_state)
        self.root_ = self._grow(x, y, depth=0)
        return self

    def _n_split_features(self) -> int:
        """Number of features considered per split."""
        if self.max_features is None:
            return self.n_features_
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(self.n_features_)))
        if isinstance(self.max_features, float):
            return max(1, int(round(self.max_features * self.n_features_)))
        return min(self.n_features_, int(self.max_features))

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node_value = float(y.mean())
        if (
            depth >= self.max_depth
            or y.shape[0] < self.min_samples_split
            or np.allclose(y, y[0])
        ):
            return _Node(value=node_value)
        feature, threshold = self._best_split(x, y)
        if feature is None:
            return _Node(value=node_value)
        mask = x[:, feature] <= threshold
        left = self._grow(x[mask], y[mask], depth + 1)
        right = self._grow(x[~mask], y[~mask], depth + 1)
        return _Node(value=node_value, feature=feature, threshold=threshold, left=left, right=right)

    def _best_split(self, x: np.ndarray, y: np.ndarray):
        """Return (feature, threshold) minimising child SSE, or (None, None)."""
        n_samples, n_features = x.shape
        best_score = np.inf
        best = (None, None)
        n_split_features = self._n_split_features()
        if n_split_features < n_features:
            candidate_features = self._rng.choice(n_features, size=n_split_features, replace=False)
        else:
            candidate_features = np.arange(n_features)
        for feature in candidate_features:
            column = x[:, feature]
            thresholds = self._candidate_thresholds(column)
            if thresholds.size == 0:
                continue
            # Vectorised evaluation of all thresholds for this feature.
            below = column.reshape(-1, 1) <= thresholds.reshape(1, -1)
            counts_left = below.sum(axis=0)
            counts_right = n_samples - counts_left
            valid = (counts_left >= self.min_samples_leaf) & (counts_right >= self.min_samples_leaf)
            if not np.any(valid):
                continue
            sums_left = (below * y.reshape(-1, 1)).sum(axis=0)
            sums_sq_left = (below * (y ** 2).reshape(-1, 1)).sum(axis=0)
            total_sum = float(y.sum())
            total_sq = float((y ** 2).sum())
            sums_right = total_sum - sums_left
            sums_sq_right = total_sq - sums_sq_left
            with np.errstate(divide="ignore", invalid="ignore"):
                sse_left = sums_sq_left - np.where(counts_left > 0, sums_left**2 / counts_left, 0.0)
                sse_right = sums_sq_right - np.where(counts_right > 0, sums_right**2 / counts_right, 0.0)
            scores = np.where(valid, sse_left + sse_right, np.inf)
            idx = int(np.argmin(scores))
            if scores[idx] < best_score:
                best_score = float(scores[idx])
                best = (feature, float(thresholds[idx]))
        return best

    def _candidate_thresholds(self, column: np.ndarray) -> np.ndarray:
        unique = np.unique(column)
        if unique.size < 2:
            return np.empty(0)
        midpoints = (unique[:-1] + unique[1:]) / 2.0
        if midpoints.size > self.max_candidate_thresholds:
            quantiles = np.linspace(0, 1, self.max_candidate_thresholds + 2)[1:-1]
            midpoints = np.quantile(column, quantiles)
            midpoints = np.unique(midpoints)
        return midpoints

    # ------------------------------------------------------------------ ---
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict by routing each sample to its leaf."""
        check_is_fitted(self, "root_")
        x = check_feature_matrix(x, allow_empty=True)
        if x.shape[1] != self.n_features_:
            raise ValueError(f"expected {self.n_features_} features, got {x.shape[1]}")
        return np.array([self._predict_one(row) for row in x], dtype=np.float64)

    def _predict_one(self, row: np.ndarray) -> float:
        node = self.root_
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    def depth(self) -> int:
        """Actual depth of the grown tree."""
        check_is_fitted(self, "root_")

        def _depth(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self.root_)

    def n_leaves(self) -> int:
        """Number of leaves of the grown tree."""
        check_is_fitted(self, "root_")

        def _count(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return _count(node.left) + _count(node.right)

        return _count(self.root_)

    # ------------------------------------------------------------------ ---
    def to_state(self) -> dict:
        """JSON-serialisable fitted state (bitwise-exact round-trip).

        The grown tree is encoded as nested node dicts; ``random_state``
        only steers fitting (feature subsampling), so a non-integer seed is
        stored as ``None`` — the fitted structure is complete without it.
        """
        check_is_fitted(self, "root_")
        from repro.models.state import serializable_seed

        def _node_state(node: _Node) -> dict:
            if node.is_leaf:
                return {"value": node.value}
            return {
                "value": node.value,
                "feature": int(node.feature),
                "threshold": node.threshold,
                "left": _node_state(node.left),
                "right": _node_state(node.right),
            }

        try:
            seed = serializable_seed(self.random_state)
        except TypeError:
            seed = None
        return {
            "type": type(self).__name__,
            "params": {
                "max_depth": self.max_depth,
                "min_samples_split": self.min_samples_split,
                "min_samples_leaf": self.min_samples_leaf,
                "max_candidate_thresholds": self.max_candidate_thresholds,
                "max_features": self.max_features,
                "random_state": seed,
            },
            "n_features": self.n_features_,
            "root": _node_state(self.root_),
        }

    @classmethod
    def from_state(cls, state: dict) -> "DecisionTreeRegressor":
        """Rebuild a fitted tree from its :meth:`to_state` form."""
        from repro.models.state import expect_state_type

        expect_state_type(state, cls)

        def _node(payload: dict) -> _Node:
            if "feature" not in payload or payload["feature"] is None:
                return _Node(value=float(payload["value"]))
            return _Node(
                value=float(payload["value"]),
                feature=int(payload["feature"]),
                threshold=float(payload["threshold"]),
                left=_node(payload["left"]),
                right=_node(payload["right"]),
            )

        tree = cls(**state["params"])
        tree.n_features_ = int(state["n_features"])
        tree.root_ = _node(state["root"])
        return tree
