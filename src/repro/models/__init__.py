"""From-scratch classical ML models used as meta classifiers / regressors.

The paper performs its meta tasks with small classical models: (penalised)
logistic regression and linear regression (Section II), gradient boosting and
shallow neural networks with l2 penalisation (Section III).  This subpackage
implements all of them with numpy only, together with a standard scaler and
split helpers, so the library has no scikit-learn dependency.
"""

from repro.models.base import ClassifierMixin, RegressorMixin, check_is_fitted
from repro.models.scaler import StandardScaler
from repro.models.linear import LinearRegression
from repro.models.logistic import LogisticRegression
from repro.models.tree import DecisionTreeRegressor
from repro.models.gradient_boosting import (
    GradientBoostingRegressor,
    GradientBoostingClassifier,
)
from repro.models.neural_network import MLPClassifier, MLPRegressor
from repro.models.selection import train_test_split, k_fold_indices

__all__ = [
    "ClassifierMixin",
    "RegressorMixin",
    "check_is_fitted",
    "StandardScaler",
    "LinearRegression",
    "LogisticRegression",
    "DecisionTreeRegressor",
    "GradientBoostingRegressor",
    "GradientBoostingClassifier",
    "MLPClassifier",
    "MLPRegressor",
    "train_test_split",
    "k_fold_indices",
]
