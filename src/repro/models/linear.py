"""Ordinary least squares and ridge linear regression.

The meta regression task of Section II ("we perform meta tasks by training
linear models, i.e., a linear regression model for meta regression") is served
by this estimator; the ridge penalty implements the "penalized" variant of
Table I for the regression task.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.base import RegressorMixin, check_is_fitted
from repro.utils.validation import check_feature_matrix, check_vector


class LinearRegression(RegressorMixin):
    """Linear least-squares regression with optional l2 (ridge) penalty.

    Parameters
    ----------
    alpha:
        l2 penalty strength; ``0`` gives ordinary least squares.  The
        intercept is never penalised.
    fit_intercept:
        Whether to fit an intercept term.
    clip_range:
        Optional (low, high) range to which predictions are clipped.  MetaSeg
        clips predicted IoU values to [0, 1], cf. Fig. 1 of the paper.
    """

    def __init__(
        self,
        alpha: float = 0.0,
        fit_intercept: bool = True,
        clip_range: Optional[tuple] = None,
    ) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = float(alpha)
        self.fit_intercept = fit_intercept
        self.clip_range = clip_range
        self.coef_ = None
        self.intercept_ = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearRegression":
        """Fit the model by solving the (regularised) normal equations."""
        x = check_feature_matrix(x)
        y = check_vector(y, n=x.shape[0])
        if self.fit_intercept:
            design = np.hstack([np.ones((x.shape[0], 1)), x])
        else:
            design = x
        n_features = design.shape[1]
        penalty = self.alpha * np.eye(n_features)
        if self.fit_intercept:
            penalty[0, 0] = 0.0
        gram = design.T @ design + penalty
        moment = design.T @ y
        solution, *_ = np.linalg.lstsq(gram, moment, rcond=None)
        if self.fit_intercept:
            self.intercept_ = float(solution[0])
            self.coef_ = solution[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = solution
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict target values for the given feature matrix."""
        check_is_fitted(self, "coef_")
        x = check_feature_matrix(x, allow_empty=True)
        if x.shape[1] != self.coef_.shape[0]:
            raise ValueError(f"expected {self.coef_.shape[0]} features, got {x.shape[1]}")
        pred = x @ self.coef_ + self.intercept_
        if self.clip_range is not None:
            pred = np.clip(pred, self.clip_range[0], self.clip_range[1])
        return pred

    # ------------------------------------------------------------------ ---
    def to_state(self) -> dict:
        """JSON-serialisable fitted state (bitwise-exact round-trip)."""
        check_is_fitted(self, "coef_")
        from repro.models.state import encode_array

        return {
            "type": type(self).__name__,
            "params": {
                "alpha": self.alpha,
                "fit_intercept": self.fit_intercept,
                "clip_range": (
                    list(self.clip_range) if self.clip_range is not None else None
                ),
            },
            "coef": encode_array(self.coef_),
            "intercept": self.intercept_,
        }

    @classmethod
    def from_state(cls, state: dict) -> "LinearRegression":
        """Rebuild a fitted model from its :meth:`to_state` form."""
        from repro.models.state import decode_array, expect_state_type

        expect_state_type(state, cls)
        params = dict(state["params"])
        if params.get("clip_range") is not None:
            params["clip_range"] = tuple(params["clip_range"])
        model = cls(**params)
        model.coef_ = decode_array(state["coef"])
        model.intercept_ = float(state["intercept"])
        return model
