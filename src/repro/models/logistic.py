"""Binary logistic regression (unpenalised and l2-penalised).

Meta classification in Section II of the paper is performed with logistic
models; Table I reports both a "penalized" and an "unpenalized" variant.  We
fit by full-batch gradient descent with an adaptive step (backtracking line
search on the loss), which is robust for the small structured datasets MetaSeg
produces and has no dependency beyond numpy.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import ClassifierMixin, check_is_fitted
from repro.utils.validation import check_binary_labels, check_feature_matrix


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(z, dtype=np.float64)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class LogisticRegression(ClassifierMixin):
    """Binary logistic regression fitted by gradient descent.

    Parameters
    ----------
    penalty:
        l2 penalty strength applied to the weights (not the intercept);
        ``0`` gives the unpenalised model of Table I.
    max_iter:
        Maximum number of gradient steps.
    tol:
        Convergence tolerance on the gradient's infinity norm.
    learning_rate:
        Initial step size for the backtracking line search.
    class_weight:
        ``None`` for unweighted fitting, or ``"balanced"`` to reweight samples
        inversely proportional to class frequencies (useful when false
        positive segments are rare).
    """

    def __init__(
        self,
        penalty: float = 0.0,
        max_iter: int = 500,
        tol: float = 1e-6,
        learning_rate: float = 1.0,
        class_weight: str = None,
    ) -> None:
        if penalty < 0:
            raise ValueError(f"penalty must be non-negative, got {penalty}")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        if class_weight not in (None, "balanced"):
            raise ValueError("class_weight must be None or 'balanced'")
        self.penalty = float(penalty)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.learning_rate = float(learning_rate)
        self.class_weight = class_weight
        self.coef_ = None
        self.intercept_ = 0.0
        self.n_iter_ = 0

    # ------------------------------------------------------------------ ---
    def _loss_and_grad(self, weights, design, y, sample_weight):
        """Penalised negative log-likelihood and its gradient."""
        z = design @ weights
        p = _sigmoid(z)
        eps = 1e-12
        loss = -np.sum(sample_weight * (y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps)))
        grad = design.T @ (sample_weight * (p - y))
        # Do not penalise the intercept (first column of the design matrix).
        penalised = weights.copy()
        penalised[0] = 0.0
        loss += 0.5 * self.penalty * float(penalised @ penalised)
        grad += self.penalty * penalised
        return loss, grad

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        """Fit the classifier on features *x* and binary labels *y*."""
        x = check_feature_matrix(x)
        y = check_binary_labels(y).astype(np.float64)
        if y.shape[0] != x.shape[0]:
            raise ValueError("X and y must have the same number of samples")
        design = np.hstack([np.ones((x.shape[0], 1)), x])
        n_samples, n_features = design.shape

        if self.class_weight == "balanced":
            positives = max(1.0, float(y.sum()))
            negatives = max(1.0, float((1 - y).sum()))
            sample_weight = np.where(y == 1, n_samples / (2 * positives), n_samples / (2 * negatives))
        else:
            sample_weight = np.ones(n_samples)

        weights = np.zeros(n_features)
        loss, grad = self._loss_and_grad(weights, design, y, sample_weight)
        step = self.learning_rate / n_samples
        for iteration in range(self.max_iter):
            if np.max(np.abs(grad)) < self.tol:
                break
            # Backtracking line search: shrink the step until the loss decreases.
            for _ in range(30):
                candidate = weights - step * grad
                new_loss, new_grad = self._loss_and_grad(candidate, design, y, sample_weight)
                if new_loss <= loss:
                    weights, loss, grad = candidate, new_loss, new_grad
                    step *= 1.2
                    break
                step *= 0.5
            else:
                break
        self.n_iter_ = iteration + 1 if self.max_iter else 0
        self.intercept_ = float(weights[0])
        self.coef_ = weights[1:]
        return self

    # ------------------------------------------------------------------ ---
    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Raw linear scores (log-odds)."""
        check_is_fitted(self, "coef_")
        x = check_feature_matrix(x, allow_empty=True)
        if x.shape[1] != self.coef_.shape[0]:
            raise ValueError(f"expected {self.coef_.shape[0]} features, got {x.shape[1]}")
        return x @ self.coef_ + self.intercept_

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Probability of the positive class."""
        return _sigmoid(self.decision_function(x))

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at the given probability threshold."""
        return (self.predict_proba(x) >= threshold).astype(np.int64)

    # ------------------------------------------------------------------ ---
    def to_state(self) -> dict:
        """JSON-serialisable fitted state (bitwise-exact round-trip)."""
        check_is_fitted(self, "coef_")
        from repro.models.state import encode_array

        return {
            "type": type(self).__name__,
            "params": {
                "penalty": self.penalty,
                "max_iter": self.max_iter,
                "tol": self.tol,
                "learning_rate": self.learning_rate,
                "class_weight": self.class_weight,
            },
            "coef": encode_array(self.coef_),
            "intercept": self.intercept_,
            "n_iter": self.n_iter_,
        }

    @classmethod
    def from_state(cls, state: dict) -> "LogisticRegression":
        """Rebuild a fitted model from its :meth:`to_state` form."""
        from repro.models.state import decode_array, expect_state_type

        expect_state_type(state, cls)
        model = cls(**state["params"])
        model.coef_ = decode_array(state["coef"])
        model.intercept_ = float(state["intercept"])
        model.n_iter_ = int(state["n_iter"])
        return model
