"""Shallow neural networks with l2 penalisation.

Section III of the paper uses "shallow neural networks with l2-penalization"
as meta classifiers and regressors.  We implement a small fully-connected
network (one or two hidden layers, ReLU activations) trained with mini-batch
Adam and weight decay, entirely in numpy.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.models.base import ClassifierMixin, RegressorMixin, check_is_fitted
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_binary_labels, check_feature_matrix, check_vector


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z, dtype=np.float64)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class _BaseMLP:
    """Shared forward/backward machinery for the shallow networks."""

    def __init__(
        self,
        hidden_layer_sizes: Sequence[int] = (32,),
        l2_penalty: float = 1e-3,
        learning_rate: float = 1e-2,
        n_epochs: int = 200,
        batch_size: int = 64,
        random_state: RandomState = 0,
    ) -> None:
        sizes = tuple(int(s) for s in hidden_layer_sizes)
        if not sizes or any(s < 1 for s in sizes):
            raise ValueError("hidden_layer_sizes must be a non-empty tuple of positive ints")
        if l2_penalty < 0:
            raise ValueError("l2_penalty must be non-negative")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if n_epochs < 1 or batch_size < 1:
            raise ValueError("n_epochs and batch_size must be >= 1")
        self.hidden_layer_sizes = sizes
        self.l2_penalty = float(l2_penalty)
        self.learning_rate = float(learning_rate)
        self.n_epochs = int(n_epochs)
        self.batch_size = int(batch_size)
        self.random_state = random_state
        self.weights_: List[np.ndarray] = None
        self.biases_: List[np.ndarray] = None
        self.loss_curve_: List[float] = []

    # ------------------------------------------------------------------ ---
    def _init_parameters(self, n_features: int, rng: np.random.Generator) -> None:
        layer_sizes = (n_features,) + self.hidden_layer_sizes + (1,)
        self.weights_ = []
        self.biases_ = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights_.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases_.append(np.zeros(fan_out))

    def _forward(self, x: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Forward pass returning the output and all post-activation layers."""
        activations = [x]
        hidden = x
        for weight, bias in zip(self.weights_[:-1], self.biases_[:-1]):
            hidden = np.maximum(0.0, hidden @ weight + bias)
            activations.append(hidden)
        output = hidden @ self.weights_[-1] + self.biases_[-1]
        return output.ravel(), activations

    def _backward(
        self, activations: List[np.ndarray], output_grad: np.ndarray
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Backward pass; *output_grad* is dLoss/dOutput per sample."""
        weight_grads = [None] * len(self.weights_)
        bias_grads = [None] * len(self.biases_)
        delta = output_grad.reshape(-1, 1)
        for layer in range(len(self.weights_) - 1, -1, -1):
            weight_grads[layer] = activations[layer].T @ delta + self.l2_penalty * self.weights_[layer]
            bias_grads[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self.weights_[layer].T) * (activations[layer] > 0)
        return weight_grads, bias_grads

    def _fit_loop(self, x: np.ndarray, y: np.ndarray, loss_and_grad) -> None:
        rng = as_rng(self.random_state)
        self._init_parameters(x.shape[1], rng)
        n_samples = x.shape[0]
        # Adam state.
        m_w = [np.zeros_like(w) for w in self.weights_]
        v_w = [np.zeros_like(w) for w in self.weights_]
        m_b = [np.zeros_like(b) for b in self.biases_]
        v_b = [np.zeros_like(b) for b in self.biases_]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        self.loss_curve_ = []
        for _ in range(self.n_epochs):
            order = rng.permutation(n_samples)
            epoch_loss = 0.0
            for start in range(0, n_samples, self.batch_size):
                batch = order[start : start + self.batch_size]
                output, activations = self._forward(x[batch])
                loss, output_grad = loss_and_grad(y[batch], output)
                epoch_loss += loss * batch.size
                weight_grads, bias_grads = self._backward(activations, output_grad / batch.size)
                step += 1
                for layer in range(len(self.weights_)):
                    m_w[layer] = beta1 * m_w[layer] + (1 - beta1) * weight_grads[layer]
                    v_w[layer] = beta2 * v_w[layer] + (1 - beta2) * weight_grads[layer] ** 2
                    m_b[layer] = beta1 * m_b[layer] + (1 - beta1) * bias_grads[layer]
                    v_b[layer] = beta2 * v_b[layer] + (1 - beta2) * bias_grads[layer] ** 2
                    m_w_hat = m_w[layer] / (1 - beta1**step)
                    v_w_hat = v_w[layer] / (1 - beta2**step)
                    m_b_hat = m_b[layer] / (1 - beta1**step)
                    v_b_hat = v_b[layer] / (1 - beta2**step)
                    self.weights_[layer] -= self.learning_rate * m_w_hat / (np.sqrt(v_w_hat) + eps)
                    self.biases_[layer] -= self.learning_rate * m_b_hat / (np.sqrt(v_b_hat) + eps)
            self.loss_curve_.append(epoch_loss / n_samples)

    def _raw_output(self, x: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "weights_")
        x = check_feature_matrix(x, allow_empty=True)
        if x.shape[1] != self.weights_[0].shape[0]:
            raise ValueError(f"expected {self.weights_[0].shape[0]} features, got {x.shape[1]}")
        output, _ = self._forward(x)
        return output

    # ------------------------------------------------------------------ ---
    def to_state(self) -> dict:
        """JSON-serialisable fitted state (bitwise-exact round-trip)."""
        check_is_fitted(self, "weights_")
        from repro.models.state import encode_array, serializable_seed

        try:
            seed = serializable_seed(self.random_state)
        except TypeError:
            seed = None
        return {
            "type": type(self).__name__,
            "params": {
                "hidden_layer_sizes": list(self.hidden_layer_sizes),
                "l2_penalty": self.l2_penalty,
                "learning_rate": self.learning_rate,
                "n_epochs": self.n_epochs,
                "batch_size": self.batch_size,
                "random_state": seed,
            },
            "weights": [encode_array(w) for w in self.weights_],
            "biases": [encode_array(b) for b in self.biases_],
            "loss_curve": list(self.loss_curve_),
        }

    @classmethod
    def from_state(cls, state: dict):
        """Rebuild a fitted network from its :meth:`to_state` form."""
        from repro.models.state import decode_array, expect_state_type

        expect_state_type(state, cls)
        params = dict(state["params"])
        params["hidden_layer_sizes"] = tuple(params["hidden_layer_sizes"])
        model = cls(**params)
        model.weights_ = [decode_array(w) for w in state["weights"]]
        model.biases_ = [decode_array(b) for b in state["biases"]]
        model.loss_curve_ = [float(value) for value in state["loss_curve"]]
        return model


class MLPRegressor(_BaseMLP, RegressorMixin):
    """Shallow l2-penalised neural network for regression (squared loss)."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> "MLPRegressor":
        """Fit on continuous targets."""
        x = check_feature_matrix(x)
        y = check_vector(y, n=x.shape[0])

        def _loss_and_grad(target, output):
            diff = output - target
            return float(np.mean(diff**2)), 2.0 * diff

        self._fit_loop(x, y, _loss_and_grad)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict continuous targets."""
        return self._raw_output(x)


class MLPClassifier(_BaseMLP, ClassifierMixin):
    """Shallow l2-penalised neural network for binary classification."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        """Fit on binary 0/1 labels with the logistic loss."""
        x = check_feature_matrix(x)
        y = check_binary_labels(y).astype(np.float64)
        if y.shape[0] != x.shape[0]:
            raise ValueError("X and y must have the same number of samples")

        def _loss_and_grad(target, output):
            p = np.clip(_sigmoid(output), 1e-12, 1 - 1e-12)
            loss = float(-np.mean(target * np.log(p) + (1 - target) * np.log(1 - p)))
            return loss, p - target

        self._fit_loop(x, y, _loss_and_grad)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Probability of the positive class."""
        return _sigmoid(self._raw_output(x))

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at the given probability threshold."""
        return (self.predict_proba(x) >= threshold).astype(np.int64)
