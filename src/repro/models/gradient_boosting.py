"""Gradient boosting on regression trees.

Section III of the paper uses gradient boosting for both meta tasks.  We
implement the standard formulation:

* **regression**: least-squares boosting (each tree fits the residuals);
* **binary classification**: boosting of the logistic loss; trees fit the
  negative gradient (residuals of the predicted probability), the prediction
  is the sigmoid of the accumulated raw scores.

Optional stochastic subsampling of rows per boosting round provides the usual
variance reduction and is also exercised by the ablation benchmarks.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.models.base import ClassifierMixin, RegressorMixin, check_is_fitted
from repro.models.tree import DecisionTreeRegressor
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_binary_labels, check_feature_matrix, check_vector


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z, dtype=np.float64)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class _BaseGradientBoosting:
    """Shared fitting machinery for the boosting estimators."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        max_features=None,
        random_state: RandomState = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.subsample = float(subsample)
        self.max_features = max_features
        self.random_state = random_state
        self.estimators_: Optional[List[DecisionTreeRegressor]] = None
        self.initial_prediction_ = 0.0
        self.train_loss_: List[float] = []

    def _new_tree(self, seed: int) -> DecisionTreeRegressor:
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=seed,
        )

    def _raw_predict(self, x: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        x = check_feature_matrix(x, allow_empty=True)
        raw = np.full(x.shape[0], self.initial_prediction_, dtype=np.float64)
        for tree in self.estimators_:
            raw += self.learning_rate * tree.predict(x)
        return raw

    def _fit_stages(self, x: np.ndarray, y: np.ndarray, negative_gradient, loss) -> None:
        rng = as_rng(self.random_state)
        n_samples = x.shape[0]
        raw = np.full(n_samples, self.initial_prediction_, dtype=np.float64)
        self.estimators_ = []
        self.train_loss_ = []
        for _ in range(self.n_estimators):
            residuals = negative_gradient(y, raw)
            if self.subsample < 1.0:
                size = max(2, int(round(self.subsample * n_samples)))
                idx = rng.choice(n_samples, size=size, replace=False)
            else:
                idx = np.arange(n_samples)
            tree = self._new_tree(seed=int(rng.integers(0, 2**31 - 1)))
            tree.fit(x[idx], residuals[idx])
            raw += self.learning_rate * tree.predict(x)
            self.estimators_.append(tree)
            self.train_loss_.append(loss(y, raw))

    # ------------------------------------------------------------------ ---
    def to_state(self) -> dict:
        """JSON-serialisable fitted state (bitwise-exact round-trip)."""
        check_is_fitted(self, "estimators_")
        from repro.models.state import serializable_seed

        try:
            seed = serializable_seed(self.random_state)
        except TypeError:
            seed = None
        return {
            "type": type(self).__name__,
            "params": {
                "n_estimators": self.n_estimators,
                "learning_rate": self.learning_rate,
                "max_depth": self.max_depth,
                "min_samples_leaf": self.min_samples_leaf,
                "subsample": self.subsample,
                "max_features": self.max_features,
                "random_state": seed,
            },
            "initial_prediction": self.initial_prediction_,
            "train_loss": list(self.train_loss_),
            "estimators": [tree.to_state() for tree in self.estimators_],
        }

    @classmethod
    def from_state(cls, state: dict):
        """Rebuild a fitted ensemble from its :meth:`to_state` form."""
        from repro.models.state import expect_state_type

        expect_state_type(state, cls)
        model = cls(**state["params"])
        model.initial_prediction_ = float(state["initial_prediction"])
        model.train_loss_ = [float(value) for value in state["train_loss"]]
        model.estimators_ = [
            DecisionTreeRegressor.from_state(tree_state)
            for tree_state in state["estimators"]
        ]
        return model


class GradientBoostingRegressor(_BaseGradientBoosting, RegressorMixin):
    """Least-squares gradient boosting for regression."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        """Fit the boosted ensemble to continuous targets."""
        x = check_feature_matrix(x)
        y = check_vector(y, n=x.shape[0])
        self.initial_prediction_ = float(y.mean())
        self._fit_stages(
            x,
            y,
            negative_gradient=lambda target, raw: target - raw,
            loss=lambda target, raw: float(np.mean((target - raw) ** 2)),
        )
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict continuous targets."""
        return self._raw_predict(x)


class GradientBoostingClassifier(_BaseGradientBoosting, ClassifierMixin):
    """Binary gradient boosting with the logistic loss."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        """Fit the boosted ensemble to binary 0/1 labels."""
        x = check_feature_matrix(x)
        y = check_binary_labels(y).astype(np.float64)
        if y.shape[0] != x.shape[0]:
            raise ValueError("X and y must have the same number of samples")
        positive_rate = float(np.clip(y.mean(), 1e-6, 1 - 1e-6))
        self.initial_prediction_ = float(np.log(positive_rate / (1 - positive_rate)))

        def _negative_gradient(target, raw):
            return target - _sigmoid(raw)

        def _loss(target, raw):
            p = np.clip(_sigmoid(raw), 1e-12, 1 - 1e-12)
            return float(-np.mean(target * np.log(p) + (1 - target) * np.log(1 - p)))

        self._fit_stages(x, y, negative_gradient=_negative_gradient, loss=_loss)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Probability of the positive class."""
        return _sigmoid(self._raw_predict(x))

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at the given probability threshold."""
        return (self.predict_proba(x) >= threshold).astype(np.int64)
