"""Common estimator conventions for the from-scratch models.

All models follow the familiar fit/predict pattern:

* ``fit(X, y)`` returns ``self``;
* classifiers additionally provide ``predict_proba`` returning the positive
  class probability (all meta classification tasks in the paper are binary);
* fitted attributes carry a trailing underscore.
"""

from __future__ import annotations

from typing import Any

import numpy as np


class NotFittedError(RuntimeError):
    """Raised when predict is called before fit."""


def check_is_fitted(estimator: Any, attribute: str) -> None:
    """Raise :class:`NotFittedError` if *estimator* lacks the fitted attribute."""
    if not hasattr(estimator, attribute) or getattr(estimator, attribute) is None:
        raise NotFittedError(
            f"{type(estimator).__name__} is not fitted yet; call fit() first"
        )


class RegressorMixin:
    """Mixin providing an R² ``score`` for regressors."""

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R² of the prediction."""
        y = np.asarray(y, dtype=np.float64).ravel()
        pred = np.asarray(self.predict(x), dtype=np.float64).ravel()
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        if ss_tot == 0.0:
            return 1.0 if ss_res == 0.0 else 0.0
        return 1.0 - ss_res / ss_tot


class ClassifierMixin:
    """Mixin providing accuracy ``score`` for binary classifiers."""

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy of ``predict`` on the given data."""
        y = np.asarray(y).ravel()
        pred = np.asarray(self.predict(x)).ravel()
        if y.shape[0] == 0:
            raise ValueError("cannot score on an empty dataset")
        return float(np.mean(pred == y))
