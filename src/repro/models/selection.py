"""Data splitting helpers for the meta tasks.

The paper splits the structured dataset of segment metrics into meta training
and meta test sets (80 %/20 % for Section II; 70 %/10 %/20 % for Section III)
and averages all reported numbers over 10 random resamplings of that split.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.utils.rng import RandomState, as_rng, split_indices
from repro.utils.validation import check_fractions


def train_test_split(
    *arrays: np.ndarray,
    test_fraction: float = 0.2,
    random_state: RandomState = None,
) -> List[np.ndarray]:
    """Randomly split arrays into train/test parts along their first axis.

    Returns ``[a_train, a_test, b_train, b_test, ...]`` in the familiar order.
    """
    if not arrays:
        raise ValueError("at least one array is required")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    n = len(arrays[0])
    for arr in arrays:
        if len(arr) != n:
            raise ValueError("all arrays must have the same length")
    train_idx, test_idx = split_indices(n, [1.0 - test_fraction, test_fraction], random_state)
    out: List[np.ndarray] = []
    for arr in arrays:
        arr = np.asarray(arr)
        out.extend([arr[train_idx], arr[test_idx]])
    return out


def train_val_test_split(
    n: int,
    fractions: Sequence[float] = (0.7, 0.1, 0.2),
    random_state: RandomState = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return index arrays for a three-way split (Section III uses 70/10/20)."""
    fractions = check_fractions(fractions)
    if len(fractions) != 3:
        raise ValueError("exactly three fractions are required")
    train_idx, val_idx, test_idx = split_indices(n, fractions, random_state)
    return train_idx, val_idx, test_idx


def k_fold_indices(
    n: int, n_folds: int = 5, random_state: RandomState = None
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Return (train_indices, test_indices) pairs for k-fold cross-validation."""
    if n_folds < 2:
        raise ValueError("n_folds must be >= 2")
    if n < n_folds:
        raise ValueError("need at least as many samples as folds")
    rng = as_rng(random_state)
    perm = rng.permutation(n)
    folds = np.array_split(perm, n_folds)
    out: List[Tuple[np.ndarray, np.ndarray]] = []
    for i in range(n_folds):
        test_idx = folds[i]
        train_idx = np.concatenate([folds[j] for j in range(n_folds) if j != i])
        out.append((train_idx, test_idx))
    return out
