"""Declarative sweep configurations.

A :class:`SweepConfig` describes a family of experiments as one *base*
:class:`~repro.api.config.ExperimentConfig` plus a *grid*: an ordered mapping
of dotted config fields to candidate values, e.g.::

    {
      "name": "meta-model-sweep",
      "base_path": "metaseg_small.json",
      "grid": {
        "meta_models.classifiers": [["logistic"], ["gradient_boosting"]],
        "seed": [0, 1]
      }
    }

The grid expands to its cartesian product in a deterministic order: fields
vary in declaration order with the *last* field varying fastest (row-major),
so point indices are stable across runs and machines.  Every point is a full
``ExperimentConfig`` — built by applying the overrides to the normalised
base dict and re-validating — and therefore inherits the library's
reproducibility contract (equal point config → bitwise-equal report), which
is what makes sweep results cacheable and their report JSONs diffable.

``base`` can be given inline or via ``base_path`` (resolved relative to the
sweep file for :meth:`SweepConfig.from_file`).
"""

from __future__ import annotations

import copy
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.api.config import ConfigError, ExperimentConfig, apply_dotted_override


@dataclass
class SweepPoint:
    """One expanded grid point: its overrides and the resulting config."""

    index: int
    overrides: Dict[str, object]
    config: ExperimentConfig

    @property
    def label(self) -> str:
        """Stable human-readable identifier (index + compact overrides)."""
        if not self.overrides:
            return f"point-{self.index:03d} (base)"
        pairs = ", ".join(
            f"{path}={json.dumps(value, sort_keys=True)}"
            for path, value in self.overrides.items()
        )
        return f"point-{self.index:03d} ({pairs})"


@dataclass
class SweepConfig:
    """A base experiment config plus a value grid over dotted fields.

    ``base`` is normalised through ``ExperimentConfig`` at validation time,
    so partial JSON configs work and grid paths are checked against the
    complete field set.  ``base_path`` is provenance only (where the base
    was loaded from); :meth:`from_dict` / :meth:`from_file` resolve it.
    """

    base: Dict[str, object]
    grid: Dict[str, List[object]] = field(default_factory=dict)
    name: str = ""
    base_path: str = ""

    # ------------------------------------------------------------- validation
    def validate(self) -> "SweepConfig":
        """Check base, grid shape and every grid path; returns self."""
        base_config = ExperimentConfig.from_dict(self.base)
        if not isinstance(self.grid, dict):
            raise ConfigError(f"sweep grid must be a dict, got {type(self.grid).__name__}")
        normalised = base_config.to_dict()
        for path, values in self.grid.items():
            if not isinstance(values, list) or not values:
                raise ConfigError(
                    f"sweep grid field {path!r} must map to a non-empty list of values"
                )
            # Raises ConfigError naming the path on typos.
            apply_dotted_override(copy.deepcopy(normalised), path, values[0])
        return self

    # ------------------------------------------------------------- expansion
    @property
    def n_points(self) -> int:
        """Number of grid points (product of the per-field value counts)."""
        count = 1
        for values in self.grid.values():
            count *= len(values)
        return count

    def points(self) -> Iterator[SweepPoint]:
        """Expand the grid into validated experiment configs, in order.

        A value that fails config validation raises :class:`ConfigError`
        naming the offending point, so a bad grid cell is reported before
        anything expensive runs (the driver expands eagerly).
        """
        base = ExperimentConfig.from_dict(self.base).to_dict()
        paths = list(self.grid)
        for index, combo in enumerate(
            itertools.product(*(self.grid[path] for path in paths))
        ):
            overrides = dict(zip(paths, combo))
            point_dict = copy.deepcopy(base)
            for path, value in overrides.items():
                apply_dotted_override(point_dict, path, value)
            try:
                config = ExperimentConfig.from_dict(point_dict)
            except ConfigError as exc:
                raise ConfigError(
                    f"sweep point {index} ({overrides!r}) is invalid: {exc}"
                ) from None
            yield SweepPoint(index=index, overrides=overrides, config=config)

    # ------------------------------------------------------- (de)serialisation
    @classmethod
    def from_dict(
        cls,
        payload: Dict[str, object],
        base_dir: Optional[Union[str, Path]] = None,
        validate: bool = True,
    ) -> "SweepConfig":
        """Build a sweep from a plain dict, rejecting unknown keys.

        Exactly one of ``base`` (inline config dict) and ``base_path`` (a
        JSON config file, resolved relative to *base_dir*) must be given.
        """
        if not isinstance(payload, dict):
            raise ConfigError(
                f"sweep payload must be a dict, got {type(payload).__name__}"
            )
        payload = dict(payload)
        name = payload.pop("name", "")
        base = payload.pop("base", None)
        base_path = payload.pop("base_path", "")
        grid = payload.pop("grid", {})
        if payload:
            raise ConfigError(
                f"unknown sweep config keys: {', '.join(sorted(map(str, payload)))}"
            )
        if (base is None) == (not base_path):
            raise ConfigError(
                "sweep config needs exactly one of 'base' (inline experiment "
                "config) or 'base_path' (path to an experiment config JSON)"
            )
        if base_path:
            path = Path(base_dir or ".") / base_path
            try:
                base = json.loads(path.read_text())
            except OSError as exc:
                raise ConfigError(f"cannot read sweep base config {path}: {exc}") from None
            except ValueError as exc:
                raise ConfigError(f"invalid JSON in sweep base config {path}: {exc}") from None
        sweep = cls(base=base, grid=grid, name=str(name), base_path=str(base_path))
        return sweep.validate() if validate else sweep

    @classmethod
    def from_file(cls, path: Union[str, Path], validate: bool = True) -> "SweepConfig":
        """Load a sweep JSON file; ``base_path`` resolves next to the file."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except ValueError as exc:
            raise ConfigError(f"invalid JSON in sweep config {path}: {exc}") from None
        return cls.from_dict(payload, base_dir=path.parent, validate=validate)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict view (always inlines the base config)."""
        out: Dict[str, object] = {"name": self.name, "base": self.base, "grid": self.grid}
        if self.base_path:
            out["base_path"] = self.base_path
        return out
