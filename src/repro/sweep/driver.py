"""The sweep driver: expand a grid, run every point, summarise and diff.

:func:`run_sweep` feeds every expanded :class:`~repro.sweep.config.SweepPoint`
through one :class:`~repro.api.runner.Runner` (any execution backend) with
result caching on by default, and returns a :class:`SweepResult` holding the
per-point reports, cache bookkeeping and the structural diffs of every
point's deterministic report payload against point 0 (the baseline).

Caching makes sweeps cheap twice over: a re-run of the whole sweep is served
entirely from the whole-report cache, and *within* a cold sweep the
``process`` backend reuses stage-1 shards across points whenever the varied
fields cannot influence them (e.g. a meta-model sweep recomputes extraction
exactly once).

With ``backend="distributed"`` the sweep fans its *points* out over the
fault-tolerant dispatch work queue (:mod:`repro.dispatch`): each worker
process runs one point end to end (serving it from / publishing it to the
shared store) and ships the report payload back; inside a worker the point
itself degrades to the serial walk, so there is no nested fan-out and the
reports stay bitwise identical to a serial sweep.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.api.runner import ExperimentReport, Runner
from repro.obs import NULL_TRACER
from repro.store import ResultStore
from repro.sweep.config import SweepConfig, SweepPoint
from repro.sweep.diff import DiffEntry, structural_diff, summarize_diff


@dataclass
class SweepPointResult:
    """One executed sweep point: the report plus run bookkeeping."""

    point: SweepPoint
    report: ExperimentReport
    seconds: float

    @property
    def cache_hit(self) -> bool:
        return bool(self.report.cache.get("hit"))

    @property
    def shard_cache(self) -> Dict[str, int]:
        return dict(self.report.cache.get("shards", {}))


@dataclass
class SweepResult:
    """All reports of one sweep run, with summaries and baseline diffs."""

    sweep: SweepConfig
    points: List[SweepPointResult] = field(default_factory=list)
    store_root: Optional[str] = None
    seconds: float = 0.0
    _diffs: Optional[Dict[str, List[DiffEntry]]] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------ ---
    @property
    def cache_hits(self) -> int:
        return sum(1 for point in self.points if point.cache_hit)

    def diffs(self) -> Dict[str, List[DiffEntry]]:
        """Structural diff of every point's report payload vs. point 0.

        Keyed by point label; the baseline itself is omitted.  Report
        payloads are the deterministic :meth:`ExperimentReport.to_dict`
        views (no timings, no cache bookkeeping), so every entry is a real
        effect of the swept fields — on the config echo or on the numbers.
        Memoised: summary and serialisation both consume it.
        """
        if not self.points:
            return {}
        if self._diffs is None:
            baseline = self.points[0].report.to_dict()
            self._diffs = {
                result.point.label: structural_diff(baseline, result.report.to_dict())
                for result in self.points[1:]
            }
        return self._diffs

    def summary_rows(self) -> List[str]:
        """Human-readable summary: per-point status plus baseline diffs."""
        sweep_name = self.sweep.name or "(unnamed)"
        rows = [
            f"sweep: {sweep_name}  points: {len(self.points)}  "
            f"grid fields: {', '.join(self.sweep.grid) or '(none)'}",
            f"cache: {self.store_root or 'disabled'}",
        ]
        diffs = self.diffs()
        for result in self.points:
            status = "cached" if result.cache_hit else "computed"
            shards = result.shard_cache
            shard_note = ""
            if shards.get("hits") or shards.get("misses"):
                shard_note = (
                    f", shards {shards.get('hits', 0)} cached"
                    f"/{shards.get('misses', 0)} computed"
                )
            rows.append(
                f"{result.point.label}  [{status}{shard_note}]  "
                f"{result.seconds:.2f}s"
            )
            if result.point.index == 0:
                rows.append("  (baseline for diffs)")
                continue
            entries = diffs.get(result.point.label, [])
            if not entries:
                rows.append("  identical to baseline")
            else:
                rows.extend("  " + line for line in summarize_diff(entries))
        rows.append(
            f"cache hits: {self.cache_hits}/{len(self.points)}  "
            f"total: {self.seconds:.2f}s"
        )
        return rows

    # ------------------------------------------------------- (de)serialisation
    def to_dict(self, include_run_info: bool = False) -> Dict[str, object]:
        """Plain-dict view of the sweep outcome.

        Without *include_run_info* the payload is fully deterministic (grid
        echo, per-point overrides + report payloads, baseline diffs): two
        runs of the same sweep serialise bitwise identically whether they
        were computed or served from cache.  Run info (wall-clock, cache
        hits, store root) is opt-in, mirroring the report-timings contract.
        """
        diffs = self.diffs()
        out: Dict[str, object] = {
            "name": self.sweep.name,
            "grid": self.sweep.grid,
            "n_points": len(self.points),
            "points": [
                {
                    "index": result.point.index,
                    "label": result.point.label,
                    "overrides": result.point.overrides,
                    "report": result.report.to_dict(),
                }
                for result in self.points
            ],
            "diffs_vs_baseline": {
                result.point.label: diffs[result.point.label]
                for result in self.points[1:]
            },
        }
        if include_run_info:
            out["run"] = {
                "store_root": self.store_root,
                "seconds": self.seconds,
                "cache_hits": self.cache_hits,
                "points": [
                    {
                        "label": result.point.label,
                        "seconds": result.seconds,
                        "cache_hit": result.cache_hit,
                        "shard_cache": result.shard_cache,
                    }
                    for result in self.points
                ],
            }
        return out

    def to_json(self, indent: int = 2, include_run_info: bool = False) -> str:
        """Deterministic JSON serialisation (see :meth:`to_dict`)."""
        return json.dumps(
            self.to_dict(include_run_info=include_run_info),
            indent=indent,
            sort_keys=True,
        )


def _sweep_point_payload(spec: Dict) -> Dict[str, object]:
    """Run one sweep point inside a dispatch worker; the report as plain data.

    The spec carries the point's full config dict plus the sweep's store
    root, so the worker serves/publishes through the same cache the parent
    would have.  Inside the worker the ``distributed`` backend degrades to
    the serial walk (no nested fan-out), so the payload is bitwise the
    report a serial sweep computes.
    """
    config = spec["config"]
    store = ResultStore(spec["store_root"]) if spec.get("store_root") else None
    start = time.perf_counter()  # repro: allow[det-wallclock] -- per-point run info (seconds), reported beside the deterministic result
    report = Runner(store=store).run(config)
    return {
        "report": report.to_dict(),
        "cache": dict(report.cache),
        "seconds": time.perf_counter() - start,  # repro: allow[det-wallclock] -- per-point run info (seconds), reported beside the deterministic result
    }


def _fan_out_points(points: List[SweepPoint]) -> bool:
    """True when this sweep should ship its points over the work queue."""
    from repro.dispatch.worker import is_worker_process

    return (
        len(points) > 1
        and not is_worker_process()
        and all(point.config.execution.backend == "distributed" for point in points)
    )


def _run_points_distributed(
    points: List[SweepPoint], store: Optional[ResultStore]
) -> List[SweepPointResult]:
    """Fan validated sweep points over the dispatch work queue, in order."""
    from repro.dispatch.backend import DistributedBackend

    specs = [
        {
            "config": point.config.to_dict(),
            "store_root": None if store is None else str(store.root),
        }
        for point in points
    ]
    queue = DistributedBackend(points[0].config.execution)
    payloads = queue._compute_shards(_sweep_point_payload, specs)
    results: List[SweepPointResult] = []
    for point, payload in zip(points, payloads):
        report = ExperimentReport.from_dict(payload["report"])
        report.cache = dict(payload.get("cache", {}))
        results.append(
            SweepPointResult(
                point=point,
                report=report,
                seconds=float(payload.get("seconds", 0.0)),
            )
        )
    return results


def run_sweep(
    sweep: SweepConfig,
    store: Optional[ResultStore] = None,
    no_cache: bool = False,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    streaming: Optional[bool] = None,
    tracer: Optional[object] = None,
) -> SweepResult:
    """Execute every point of a sweep and return the collected result.

    ``backend`` / ``workers`` / ``streaming`` override the execution section
    of *every* point (they are bit-neutral, so the reports are unaffected).
    Caching is on by default — ``store`` picks the store (default:
    :class:`ResultStore` at the standard root, ``$REPRO_CACHE_DIR``
    override) and ``no_cache=True`` disables it entirely.  ``tracer``
    (a :class:`repro.obs.Tracer`; default: disabled) collects one span per
    sweep point under a ``sweep`` root, with the Runner's stage spans as
    children — telemetry only, the reports are unaffected.
    """
    sweep.validate()
    if no_cache:
        store = None
    elif store is None:
        store = ResultStore()
    tracer = NULL_TRACER if tracer is None else tracer
    runner = Runner(store=store, tracer=tracer)
    result = SweepResult(
        sweep=sweep, store_root=None if store is None else str(store.root)
    )
    # Expand eagerly: an invalid grid cell anywhere must fail before any
    # point computes, not after earlier points burned their compute.
    points = list(sweep.points())
    sweep_start = time.perf_counter()  # repro: allow[det-wallclock] -- per-point run info (seconds), reported beside the deterministic result
    with tracer.span("sweep", sweep_name=sweep.name, n_points=len(points)):
        for point in points:
            config = point.config
            if backend is not None:
                config.execution.backend = backend
            if workers is not None:
                config.execution.workers = workers
            if streaming is not None:
                config.execution.streaming = streaming
            config.validate()
        if _fan_out_points(points):
            # Distributed sweeps ship whole points to queue workers; the
            # per-point Runner spans live in the workers, so the parent
            # trace only records the sweep envelope.
            result.points.extend(_run_points_distributed(points, store))
        else:
            for point in points:
                config = point.config
                start = time.perf_counter()  # repro: allow[det-wallclock] -- per-point run info (seconds), reported beside the deterministic result
                with tracer.span("point", label=point.label, index=point.index) as span:
                    report = runner.run(config)
                    span.set(cache_hit=bool(report.cache.get("hit")))
                result.points.append(
                    SweepPointResult(
                        point=point, report=report, seconds=time.perf_counter() - start  # repro: allow[det-wallclock] -- per-point run info (seconds), reported beside the deterministic result
                    )
                )
    result.seconds = time.perf_counter() - sweep_start  # repro: allow[det-wallclock] -- per-point run info (seconds), reported beside the deterministic result
    return result
