"""Structural diff of deterministic report payloads.

Experiment reports serialise deterministically (equal configs → bitwise
equal JSON), so the differences between two report dicts are exactly the
*effects* of the config fields a sweep varied.  :func:`structural_diff`
walks two JSON-like payloads and returns a flat list of change records::

    {"path": "tables.classification[3].mean", "change": "changed",
     "baseline": 0.918, "value": 0.922}

Change kinds: ``changed`` (leaf values differ), ``added`` / ``removed``
(dict key present on one side only), ``length`` (lists of different
length; the common prefix is still diffed element by element).  Floats are
compared exactly — the whole point of the determinism contract is that any
difference is a real one.
"""

from __future__ import annotations

from typing import Dict, List

#: One change record of a structural diff.
DiffEntry = Dict[str, object]


def structural_diff(baseline: object, value: object, path: str = "") -> List[DiffEntry]:
    """All structural differences between two JSON-like payloads.

    Returns an empty list iff the payloads are structurally equal.  Entries
    are emitted in a deterministic order (sorted dict keys, list positions
    ascending), so diffs of diffs are themselves stable.
    """
    entries: List[DiffEntry] = []
    _walk(baseline, value, path, entries)
    return entries


def _walk(baseline: object, value: object, path: str, out: List[DiffEntry]) -> None:
    if isinstance(baseline, dict) and isinstance(value, dict):
        for key in sorted(set(baseline) | set(value), key=str):
            sub_path = f"{path}.{key}" if path else str(key)
            if key not in value:
                out.append(
                    {"path": sub_path, "change": "removed",
                     "baseline": baseline[key], "value": None}
                )
            elif key not in baseline:
                out.append(
                    {"path": sub_path, "change": "added",
                     "baseline": None, "value": value[key]}
                )
            else:
                _walk(baseline[key], value[key], sub_path, out)
        return
    if isinstance(baseline, list) and isinstance(value, list):
        if len(baseline) != len(value):
            out.append(
                {"path": path, "change": "length",
                 "baseline": len(baseline), "value": len(value)}
            )
        for index in range(min(len(baseline), len(value))):
            _walk(baseline[index], value[index], f"{path}[{index}]", out)
        return
    # Leaves (or mismatched container types): exact comparison.  `==` with
    # a type guard so 1 vs 1.0 vs True register as changes, not equality.
    if type(baseline) is not type(value) or baseline != value:
        out.append(
            {"path": path, "change": "changed", "baseline": baseline, "value": value}
        )


def summarize_diff(entries: List[DiffEntry], limit: int = 12) -> List[str]:
    """Compact human-readable lines for a diff (truncated to *limit*)."""
    lines: List[str] = []
    for entry in entries[:limit]:
        if entry["change"] == "changed":
            lines.append(
                f"{entry['path']}: {_fmt(entry['baseline'])} -> {_fmt(entry['value'])}"
            )
        elif entry["change"] == "length":
            lines.append(
                f"{entry['path']}: length {entry['baseline']} -> {entry['value']}"
            )
        else:
            lines.append(f"{entry['path']}: {entry['change']}")
    if len(entries) > limit:
        lines.append(f"... and {len(entries) - limit} more difference(s)")
    return lines


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = repr(value)
    return text if len(text) <= 48 else text[:45] + "..."
