"""Declarative sweep driver over the unified experiment API.

A sweep is a base :class:`~repro.api.config.ExperimentConfig` plus a grid of
values over dotted config fields (``meta_models.classifiers``,
``extraction.chunk_size``, ``seed``, ...).  The driver expands the grid
deterministically, runs every point through the existing
:class:`~repro.api.runner.Runner` (any execution backend) with
content-addressed result caching (:mod:`repro.store`) on by default, and
emits a summary table plus a structural diff of the per-point deterministic
report payloads against the first point.

CLI: ``python -m repro sweep sweep.json [--no-cache] [--backend NAME]``.

Modules:

* :mod:`repro.sweep.config` — :class:`SweepConfig` / :class:`SweepPoint`
  (declarative grid, deterministic expansion, JSON loading);
* :mod:`repro.sweep.driver` — :func:`run_sweep`, :class:`SweepResult`;
* :mod:`repro.sweep.diff`   — :func:`structural_diff` over report payloads.
"""

from repro.sweep.config import SweepConfig, SweepPoint
from repro.sweep.diff import structural_diff, summarize_diff
from repro.sweep.driver import SweepPointResult, SweepResult, run_sweep

__all__ = [
    "SweepConfig",
    "SweepPoint",
    "SweepPointResult",
    "SweepResult",
    "run_sweep",
    "structural_diff",
    "summarize_diff",
]
