"""Binary classification metrics: accuracy, ROC curve, AUROC.

Table I and Table II of the paper report meta classification performance as
accuracy (ACC) and area under the ROC curve (AUROC), both in percent.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import check_binary_labels


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct binary predictions."""
    y_true = check_binary_labels(y_true, "y_true")
    y_pred = check_binary_labels(y_pred, "y_pred")
    if y_true.shape[0] != y_pred.shape[0]:
        raise ValueError("y_true and y_pred must have the same length")
    if y_true.shape[0] == 0:
        raise ValueError("cannot compute accuracy of empty arrays")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """2x2 confusion matrix ``[[TN, FP], [FN, TP]]``."""
    y_true = check_binary_labels(y_true, "y_true")
    y_pred = check_binary_labels(y_pred, "y_pred")
    if y_true.shape[0] != y_pred.shape[0]:
        raise ValueError("y_true and y_pred must have the same length")
    matrix = np.zeros((2, 2), dtype=np.int64)
    for true_value in (0, 1):
        for pred_value in (0, 1):
            matrix[true_value, pred_value] = int(
                np.sum((y_true == true_value) & (y_pred == pred_value))
            )
    return matrix


def roc_curve(y_true: np.ndarray, scores: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute the ROC curve.

    Returns
    -------
    false_positive_rate, true_positive_rate, thresholds:
        Arrays of equal length; thresholds are the distinct score values in
        decreasing order, preceded by ``+inf`` (the all-negative operating
        point).
    """
    y_true = check_binary_labels(y_true, "y_true")
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if y_true.shape[0] != scores.shape[0]:
        raise ValueError("y_true and scores must have the same length")
    if y_true.shape[0] == 0:
        raise ValueError("cannot compute a ROC curve of empty arrays")
    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_true = y_true[order]
    # Indices where the threshold changes (keep only distinct score values).
    distinct = np.nonzero(np.diff(sorted_scores))[0]
    threshold_idx = np.concatenate([distinct, [y_true.shape[0] - 1]])
    tps = np.cumsum(sorted_true)[threshold_idx].astype(np.float64)
    fps = (threshold_idx + 1 - tps).astype(np.float64)
    n_positive = float(y_true.sum())
    n_negative = float(y_true.shape[0] - n_positive)
    tpr = tps / n_positive if n_positive > 0 else np.zeros_like(tps)
    fpr = fps / n_negative if n_negative > 0 else np.zeros_like(fps)
    thresholds = np.concatenate([[np.inf], sorted_scores[threshold_idx]])
    return (
        np.concatenate([[0.0], fpr]),
        np.concatenate([[0.0], tpr]),
        thresholds,
    )


def auroc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve.

    Computed via the Mann-Whitney U statistic (probability that a randomly
    chosen positive sample receives a higher score than a randomly chosen
    negative one, ties counted as 1/2), which equals the trapezoidal area
    under the ROC curve.
    """
    y_true = check_binary_labels(y_true, "y_true")
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if y_true.shape[0] != scores.shape[0]:
        raise ValueError("y_true and scores must have the same length")
    n_positive = int(y_true.sum())
    n_negative = int(y_true.shape[0] - n_positive)
    if n_positive == 0 or n_negative == 0:
        raise ValueError("AUROC requires both positive and negative samples")
    # Midranks handle ties exactly.
    order = np.argsort(scores, kind="stable")
    ranks = np.empty_like(scores)
    sorted_scores = scores[order]
    rank_values = np.arange(1, scores.shape[0] + 1, dtype=np.float64)
    # Average ranks of tied groups.
    unique, inverse, counts = np.unique(sorted_scores, return_inverse=True, return_counts=True)
    cumulative = np.cumsum(counts)
    start = cumulative - counts
    average_rank = (start + cumulative + 1) / 2.0
    ranks[order] = average_rank[inverse]
    del rank_values
    rank_sum_positive = float(ranks[y_true == 1].sum())
    u_statistic = rank_sum_positive - n_positive * (n_positive + 1) / 2.0
    return float(u_statistic / (n_positive * n_negative))


def optimal_accuracy_threshold(y_true: np.ndarray, scores: np.ndarray) -> Tuple[float, float]:
    """Threshold on *scores* maximising accuracy, and that best accuracy.

    The naive baseline of Table I thresholds a random score; the learned meta
    classifiers threshold a predicted probability.  This helper scans all
    candidate thresholds (the distinct scores plus ±inf end points).
    """
    y_true = check_binary_labels(y_true, "y_true")
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if y_true.shape[0] != scores.shape[0]:
        raise ValueError("y_true and scores must have the same length")
    candidates = np.concatenate([[-np.inf], np.unique(scores), [np.inf]])
    best_threshold, best_accuracy = -np.inf, -1.0
    for threshold in candidates:
        pred = (scores >= threshold).astype(np.int64)
        acc = float(np.mean(pred == y_true))
        if acc > best_accuracy:
            best_accuracy = acc
            best_threshold = float(threshold)
    return best_threshold, best_accuracy
