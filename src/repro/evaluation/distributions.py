"""Empirical distribution functions and stochastic dominance.

Fig. 5 of the paper compares the Bayes and Maximum-Likelihood decision rules
through empirical cumulative distribution functions (CDFs) of segment-wise
precision and recall and argues with *first-order stochastic dominance*
(F ≺ G iff F(t) <= G(t) for all t, i.e. samples from F are "typically
larger").  This module provides the CDF object and the dominance test used by
the Fig. 5 harness and the decision-rule evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.utils.validation import check_vector


@dataclass(frozen=True)
class EmpiricalCDF:
    """Empirical cumulative distribution function of a 1-D sample."""

    sorted_values: np.ndarray

    @classmethod
    def from_sample(cls, sample: Sequence[float]) -> "EmpiricalCDF":
        """Build the CDF from an arbitrary (unsorted) sample."""
        values = check_vector(np.asarray(sample, dtype=np.float64), name="sample")
        if values.shape[0] == 0:
            raise ValueError("cannot build an empirical CDF from an empty sample")
        return cls(sorted_values=np.sort(values))

    @property
    def n_samples(self) -> int:
        """Number of samples the CDF is based on."""
        return int(self.sorted_values.shape[0])

    def __call__(self, t) -> np.ndarray:
        """Evaluate F(t) = P(X <= t) at scalar or array *t*."""
        t = np.asarray(t, dtype=np.float64)
        counts = np.searchsorted(self.sorted_values, t, side="right")
        result = counts / self.n_samples
        return float(result) if result.ndim == 0 else result

    def quantile(self, q: float) -> float:
        """Empirical quantile (inverse CDF) for q in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must lie in [0, 1]")
        index = min(self.n_samples - 1, int(np.ceil(q * self.n_samples)) - 1)
        return float(self.sorted_values[max(0, index)])

    def evaluation_grid(self, n_points: int = 101) -> Tuple[np.ndarray, np.ndarray]:
        """Return (t, F(t)) on a uniform grid spanning the sample range."""
        if n_points < 2:
            raise ValueError("n_points must be >= 2")
        low = float(self.sorted_values[0])
        high = float(self.sorted_values[-1])
        grid = np.linspace(low, high, n_points)
        return grid, self(grid)


def empirical_cdf(sample: Sequence[float]) -> EmpiricalCDF:
    """Convenience constructor for :class:`EmpiricalCDF`."""
    return EmpiricalCDF.from_sample(sample)


def first_order_dominates(
    cdf_smaller: EmpiricalCDF,
    cdf_larger: EmpiricalCDF,
    grid_points: int = 201,
    tolerance: float = 0.02,
) -> bool:
    """Test whether ``cdf_larger ≺ cdf_smaller`` in first-order stochastic dominance.

    In the paper's notation (Section IV), ``F_ML ≺ F_B`` means the Bayes
    values are typically larger, which in CDF terms means
    ``F_B(t) <= F_ML(t)`` for all t.  Here ``cdf_smaller`` is the CDF whose
    values should be *smaller* (its CDF lies above) and ``cdf_larger`` the one
    with typically larger values (its CDF lies below).

    The comparison is evaluated on a common grid; violations up to
    *tolerance* (in CDF units) are allowed to absorb finite-sample noise.
    """
    if grid_points < 2:
        raise ValueError("grid_points must be >= 2")
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    low = min(float(cdf_smaller.sorted_values[0]), float(cdf_larger.sorted_values[0]))
    high = max(float(cdf_smaller.sorted_values[-1]), float(cdf_larger.sorted_values[-1]))
    grid = np.linspace(low, high, grid_points)
    return bool(np.all(cdf_larger(grid) <= cdf_smaller(grid) + tolerance))


def dominance_gap(cdf_a: EmpiricalCDF, cdf_b: EmpiricalCDF, grid_points: int = 201) -> float:
    """Signed area between two CDFs, positive when ``cdf_a`` lies above ``cdf_b``.

    A positive value indicates that samples from *b* are typically larger than
    samples from *a* (because *a*'s CDF accumulates mass earlier).
    """
    if grid_points < 2:
        raise ValueError("grid_points must be >= 2")
    low = min(float(cdf_a.sorted_values[0]), float(cdf_b.sorted_values[0]))
    high = max(float(cdf_a.sorted_values[-1]), float(cdf_b.sorted_values[-1]))
    grid = np.linspace(low, high, grid_points)
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    return float(trapezoid(cdf_a(grid) - cdf_b(grid), grid))
