"""Pixel-level segmentation quality measures.

The paper contrasts segment-level meta classification with the usual global
indices "like the global accuracy over frames or the averaged intersection
over union (IoU) on class mask level".  These global indices are implemented
here; they are used to sanity-check the simulated networks (the Xception-like
profile must outperform the Mobilenet-like one) and by the ablation benches.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.utils.validation import check_label_map, check_same_shape


def pixel_accuracy(gt: np.ndarray, pred: np.ndarray, ignore_id: int = -1) -> float:
    """Fraction of non-ignored pixels predicted correctly."""
    gt = check_label_map(gt, "gt")
    pred = check_label_map(pred, "pred")
    check_same_shape(gt, pred, "gt", "pred")
    valid = gt != ignore_id
    if not np.any(valid):
        raise ValueError("all pixels are ignored; cannot compute accuracy")
    return float(np.mean(gt[valid] == pred[valid]))


def class_iou(
    gt: np.ndarray, pred: np.ndarray, n_classes: int, ignore_id: int = -1
) -> Dict[int, float]:
    """Per-class intersection over union on class-mask level.

    Classes absent from both ground truth and prediction are omitted from the
    result (their IoU is undefined).
    """
    gt = check_label_map(gt, "gt")
    pred = check_label_map(pred, "pred")
    check_same_shape(gt, pred, "gt", "pred")
    if n_classes < 2:
        raise ValueError("n_classes must be >= 2")
    valid = gt != ignore_id
    result: Dict[int, float] = {}
    for class_id in range(n_classes):
        gt_mask = (gt == class_id) & valid
        pred_mask = (pred == class_id) & valid
        union = int(np.sum(gt_mask | pred_mask))
        if union == 0:
            continue
        intersection = int(np.sum(gt_mask & pred_mask))
        result[class_id] = intersection / union
    return result


def mean_iou(
    gt: np.ndarray, pred: np.ndarray, n_classes: int, ignore_id: int = -1
) -> float:
    """Mean of the per-class IoU values over classes present in GT or prediction."""
    per_class = class_iou(gt, pred, n_classes, ignore_id)
    if not per_class:
        raise ValueError("no class present; cannot compute mean IoU")
    return float(np.mean(list(per_class.values())))


def accumulate_confusion(
    gt: np.ndarray,
    pred: np.ndarray,
    n_classes: int,
    ignore_id: int = -1,
    confusion: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Accumulate a (n_classes, n_classes) confusion matrix over images.

    ``confusion[i, j]`` counts pixels with ground truth *i* predicted as *j*.
    Pass the returned matrix back in to accumulate over a dataset.
    """
    gt = check_label_map(gt, "gt")
    pred = check_label_map(pred, "pred")
    check_same_shape(gt, pred, "gt", "pred")
    if confusion is None:
        confusion = np.zeros((n_classes, n_classes), dtype=np.int64)
    elif confusion.shape != (n_classes, n_classes):
        raise ValueError("confusion matrix has the wrong shape")
    valid = (gt != ignore_id) & (gt < n_classes) & (pred >= 0) & (pred < n_classes)
    indices = gt[valid] * n_classes + pred[valid]
    counts = np.bincount(indices, minlength=n_classes * n_classes)
    return confusion + counts.reshape(n_classes, n_classes)


def iou_from_confusion(confusion: np.ndarray) -> Dict[int, float]:
    """Per-class IoU from an accumulated confusion matrix."""
    confusion = np.asarray(confusion, dtype=np.float64)
    if confusion.ndim != 2 or confusion.shape[0] != confusion.shape[1]:
        raise ValueError("confusion must be a square matrix")
    result: Dict[int, float] = {}
    for class_id in range(confusion.shape[0]):
        intersection = confusion[class_id, class_id]
        union = confusion[class_id, :].sum() + confusion[:, class_id].sum() - intersection
        if union > 0:
            result[class_id] = float(intersection / union)
    return result
