"""Regression metrics: R², residual standard deviation, Pearson correlation.

Table I and Table II report meta regression performance as σ (the standard
deviation of the prediction residuals) and R²; Section II additionally quotes
Pearson correlation coefficients of single metrics with the segment IoU.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_vector


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination R²."""
    y_true = check_vector(y_true, name="y_true")
    y_pred = check_vector(y_pred, n=y_true.shape[0], name="y_pred")
    if y_true.shape[0] < 2:
        raise ValueError("R² requires at least two samples")
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def residual_std(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Standard deviation σ of the residuals (the paper's σ column)."""
    y_true = check_vector(y_true, name="y_true")
    y_pred = check_vector(y_pred, n=y_true.shape[0], name="y_pred")
    if y_true.shape[0] == 0:
        raise ValueError("residual_std requires at least one sample")
    residuals = y_true - y_pred
    return float(np.sqrt(np.mean(residuals**2)))


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute prediction error."""
    y_true = check_vector(y_true, name="y_true")
    y_pred = check_vector(y_pred, n=y_true.shape[0], name="y_pred")
    if y_true.shape[0] == 0:
        raise ValueError("mean_absolute_error requires at least one sample")
    return float(np.mean(np.abs(y_true - y_pred)))


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient R between two samples.

    Returns 0 when either sample is constant (the correlation is undefined
    there; 0 is the conservative choice for ranking metrics by |R|).
    """
    x = check_vector(x, name="x")
    y = check_vector(y, n=x.shape[0], name="y")
    if x.shape[0] < 2:
        raise ValueError("pearson_correlation requires at least two samples")
    x_centered = x - x.mean()
    y_centered = y - y.mean()
    denom = float(np.sqrt(np.sum(x_centered**2) * np.sum(y_centered**2)))
    if denom == 0.0:
        return 0.0
    return float(np.sum(x_centered * y_centered) / denom)
