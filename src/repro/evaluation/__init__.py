"""Evaluation metrics used throughout the reproduction.

Implements, with numpy only, every metric the paper reports: classification
accuracy and AUROC (Tables I and II, Fig. 2), regression R², residual standard
deviation σ and Pearson correlation (Tables I and II, the correlation claims
of Section II), segmentation quality measures (pixel accuracy, mean IoU), and
the empirical-CDF / stochastic-dominance machinery of Fig. 5.
"""

from repro.evaluation.classification import (
    accuracy,
    auroc,
    roc_curve,
    confusion_matrix,
    optimal_accuracy_threshold,
)
from repro.evaluation.regression import (
    r2_score,
    residual_std,
    pearson_correlation,
    mean_absolute_error,
)
from repro.evaluation.segmentation import pixel_accuracy, class_iou, mean_iou
from repro.evaluation.distributions import (
    EmpiricalCDF,
    first_order_dominates,
    empirical_cdf,
)

__all__ = [
    "accuracy",
    "auroc",
    "roc_curve",
    "confusion_matrix",
    "optimal_accuracy_threshold",
    "r2_score",
    "residual_std",
    "pearson_correlation",
    "mean_absolute_error",
    "pixel_accuracy",
    "class_iou",
    "mean_iou",
    "EmpiricalCDF",
    "first_order_dominates",
    "empirical_cdf",
]
