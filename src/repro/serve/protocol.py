"""Request parsing for the scoring server (stdlib + numpy only).

Three request encodings are accepted on ``POST /score``:

* ``application/x-npy`` — one softmax field as raw ``.npy`` bytes
  (``numpy.save``); the frame id comes from the ``X-Image-Id`` header.
* ``application/x-npz`` / ``application/zip`` — a ``numpy.savez`` archive;
  each member is one frame, member names are the frame ids, archive order is
  response order.
* ``application/json`` — ``{"probs": [[[...]]], "image_id": "..."}`` for one
  frame or ``{"frames": [{"image_id": ..., "probs": ...}, ...]}`` for a
  batch.

Parsing is strictly separated from scoring: everything here raises
:class:`RequestError` with an HTTP status and a machine-readable error code,
which the handler maps to a structured JSON error response — a malformed
request must never produce a stack trace on the wire.  Numerical validation
(row sums, class count) stays in the extractor and surfaces as ``ValueError``
→ 400 in the handler.
"""

from __future__ import annotations

import io
import json
import zipfile
from typing import List, Tuple

import numpy as np


class RequestError(Exception):
    """A client error with an HTTP status and machine-readable code."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.code = code
        self.message = message


def _check_frame(name: str, array: np.ndarray) -> np.ndarray:
    array = np.asarray(array)
    if array.ndim != 3:
        raise RequestError(
            400,
            "bad_shape",
            f"frame {name!r}: softmax fields are 3-D (H, W, C) arrays, "
            f"got {array.ndim}-D",
        )
    return array


def _parse_npy(body: bytes, image_id: str) -> List[Tuple[str, np.ndarray]]:
    try:
        array = np.load(io.BytesIO(body), allow_pickle=False)
    except Exception as exc:
        raise RequestError(
            400, "bad_payload", f"could not decode npy payload: {exc}"
        ) from None
    return [(image_id, _check_frame(image_id, array))]


def _parse_npz(body: bytes) -> List[Tuple[str, np.ndarray]]:
    try:
        archive = np.load(io.BytesIO(body), allow_pickle=False)
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        raise RequestError(
            400, "bad_payload", f"could not decode npz payload: {exc}"
        ) from None
    if not hasattr(archive, "files"):
        raise RequestError(400, "bad_payload", "expected an npz archive, got a bare array")
    frames: List[Tuple[str, np.ndarray]] = []
    for name in archive.files:
        frames.append((name, _check_frame(name, archive[name])))
    if not frames:
        raise RequestError(400, "bad_payload", "npz archive contains no frames")
    return frames


def _parse_json(body: bytes, default_image_id: str) -> List[Tuple[str, np.ndarray]]:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise RequestError(
            400, "bad_payload", f"could not decode JSON payload: {exc}"
        ) from None
    if not isinstance(payload, dict):
        raise RequestError(400, "bad_payload", "JSON payload must be an object")
    if "frames" in payload:
        entries = payload["frames"]
        if not isinstance(entries, list) or not entries:
            raise RequestError(400, "bad_payload", "'frames' must be a non-empty list")
    elif "probs" in payload:
        entries = [payload]
    else:
        raise RequestError(
            400, "bad_payload", "JSON payload needs a 'probs' or 'frames' field"
        )
    frames: List[Tuple[str, np.ndarray]] = []
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict) or "probs" not in entry:
            raise RequestError(
                400, "bad_payload", f"frame {index}: missing 'probs' field"
            )
        name = str(entry.get("image_id", f"{default_image_id}_{index}" if len(entries) > 1 else default_image_id))
        try:
            array = np.asarray(entry["probs"], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise RequestError(
                400, "bad_payload", f"frame {name!r}: non-numeric probs: {exc}"
            ) from None
        frames.append((name, _check_frame(name, array)))
    return frames


def parse_score_request(
    content_type: str, body: bytes, default_image_id: str = "frame"
) -> List[Tuple[str, np.ndarray]]:
    """Decode a ``/score`` request body into ``[(image_id, probs), ...]``.

    Raises :class:`RequestError` for anything the client got wrong.
    """
    media_type = (content_type or "").split(";")[0].strip().lower()
    if media_type == "application/x-npy":
        return _parse_npy(body, default_image_id)
    if media_type in ("application/x-npz", "application/zip"):
        return _parse_npz(body)
    if media_type == "application/json":
        return _parse_json(body, default_image_id)
    raise RequestError(
        415,
        "unsupported_media_type",
        f"unsupported content type {media_type or '(none)'!r}; use "
        f"application/x-npy, application/x-npz or application/json",
    )


__all__ = ["RequestError", "parse_score_request"]
