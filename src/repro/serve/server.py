"""Threaded HTTP scoring server (stdlib ``http.server`` + ``socketserver``).

Request handling is decoupled from accepting: the listener thread only
enqueues accepted connections into a **bounded** queue, and a fixed pool of
worker threads drains it.  Under overload the queue fills and new
connections are rejected immediately with a structured ``503`` JSON body
(backpressure, with a ``Retry-After`` hint) instead of piling up unbounded.
Every error path returns a JSON ``{"error": {"code", "message",
"request_id"}}`` document — never a stack trace.

Endpoints:

* ``GET /`` / ``GET /healthz`` — liveness + model descriptor.
* ``GET /model`` — the model descriptor alone.
* ``GET /metrics`` — JSON snapshot of the server's metrics registry
  (request counts/latency histogram, queue-depth gauge, rejections).
* ``POST /score`` — softmax field(s) in, per-segment scores out (see
  :mod:`repro.serve.protocol` for the accepted encodings).

Observability: every request is handled under a span of the server's
tracer (default: disabled) and assigned a ``req-<n>`` request id, echoed
in the ``X-Request-Id`` response header and in every structured error
body, so client logs correlate with server traces.  The metrics registry
is private to the server instance (pass a shared one to aggregate).

Worker threads are long-lived, so the extractor's thread-local ``(H, W, C)``
scratch buffers stay warm across the requests each worker serves.
"""

from __future__ import annotations

import itertools
import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Optional

from repro.obs import NULL_TRACER, MetricsRegistry
from repro.serve.protocol import RequestError, parse_score_request
from repro.serve.service import ScoringService

#: Default cap on request bodies (64 MiB holds a 1024x2048x19 float64 field).
DEFAULT_MAX_REQUEST_BYTES = 64 * 1024 * 1024

#: How much of an oversized body is drained before responding, so
#: well-behaved clients receive the 413 JSON instead of a connection reset.
_DRAIN_LIMIT = 1024 * 1024


class ScoringRequestHandler(BaseHTTPRequestHandler):
    """Maps HTTP requests onto the :class:`ScoringService`.

    One handler instance serves one connection on one worker thread
    (HTTP/1.0, one request per connection), so per-request attributes on
    ``self`` are single-threaded by construction; only the server's
    metrics/tracer — which are lock-guarded internally — are shared.
    """

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.0"

    #: Per-request id, allocated before dispatch; echoed in the
    #: ``X-Request-Id`` header and every structured error body.
    request_id = ""
    _response_status = 0

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # ------------------------------------------------------------------ ---
    def _send_json(self, status: int, payload: dict) -> None:
        self._response_status = status  # repro: allow[concurrency-shared-state] -- handler instance is per-connection, used by one worker thread
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.request_id:
            self.send_header("X-Request-Id", self.request_id)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, code: str, message: str) -> None:
        error = {"code": code, "message": message}
        if self.request_id:
            error["request_id"] = self.request_id
        self._send_json(status, {"error": error})

    # ------------------------------------------------------------------ ---
    def _dispatch(self, method: str, handler) -> None:
        """Run one request under its span, with id, latency and counters."""
        server = self.server
        self.request_id = server.next_request_id()  # repro: allow[concurrency-shared-state] -- handler instance is per-connection, used by one worker thread
        start = time.perf_counter()  # repro: allow[det-wallclock] -- request latency telemetry, never part of response payloads
        with server.tracer.span(
            "request", method=method, path=self.path, request_id=self.request_id
        ) as span:
            handler()
            span.set(status=self._response_status)
        elapsed = time.perf_counter() - start  # repro: allow[det-wallclock] -- request latency telemetry, never part of response payloads
        metrics = server.metrics
        metrics.counter("serve.requests.count").inc()
        if self._response_status >= 400:
            metrics.counter("serve.requests.errors").inc()
        metrics.histogram("serve.request.latency_seconds").observe(elapsed)

    def do_GET(self):  # noqa: N802 - stdlib naming
        self._dispatch("GET", self._handle_get)

    def do_POST(self):  # noqa: N802 - stdlib naming
        self._dispatch("POST", self._handle_post)

    def _handle_get(self) -> None:
        service: ScoringService = self.server.service
        if self.path in ("/", "/healthz"):
            self._send_json(200, {"status": "ok", **service.info()})
        elif self.path == "/model":
            self._send_json(200, service.info())
        elif self.path == "/metrics":
            self._send_json(200, self.server.metrics.snapshot())
        else:
            self._send_error_json(404, "not_found", f"unknown path {self.path!r}")

    def _handle_post(self) -> None:
        if self.path != "/score":
            self._send_error_json(404, "not_found", f"unknown path {self.path!r}")
            return
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            self._send_error_json(411, "length_required", "Content-Length is required")
            return
        try:
            length = int(raw_length)
        except ValueError:
            length = -1
        if length < 0:
            self._send_error_json(400, "bad_length", f"invalid Content-Length {raw_length!r}")
            return
        max_bytes = self.server.max_request_bytes
        if length > max_bytes:
            # Drain a bounded amount so the client sees the response instead
            # of a reset, then report the limit.
            try:
                self.rfile.read(min(length, _DRAIN_LIMIT))
            except OSError:
                pass
            self._send_error_json(
                413,
                "payload_too_large",
                f"request body of {length} bytes exceeds the limit of {max_bytes}",
            )
            return
        body = self.rfile.read(length)
        image_id = self.headers.get("X-Image-Id") or "frame"
        service: ScoringService = self.server.service
        try:
            frames = parse_score_request(
                self.headers.get("Content-Type"), body, default_image_id=image_id
            )
            result = service.score_frames(frames)
        except RequestError as exc:
            self._send_error_json(exc.status, exc.code, exc.message)
            return
        except ValueError as exc:
            # The extractor's numerical validation (shape/row-sum/classes).
            self._send_error_json(400, "bad_input", str(exc))
            return
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_json(
                500, "internal_error", f"{type(exc).__name__}: {exc}"
            )
            return
        self._send_json(200, result)


class ScoringServer(HTTPServer):
    """HTTP server with a bounded request queue and a worker-thread pool.

    Parameters
    ----------
    service:
        The :class:`ScoringService` to expose.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (see :attr:`url`).
    workers:
        Number of long-lived handler threads (>= 1).
    queue_depth:
        Bound on accepted-but-unhandled connections (>= 1).  When full, new
        connections get an immediate ``503`` (backpressure) instead of
        queueing unboundedly.
    max_request_bytes:
        Request-body cap enforced before reading the body (413 beyond it).
    verbose:
        Enable stdlib per-request logging (quiet by default).
    metrics:
        The :class:`repro.obs.MetricsRegistry` behind ``GET /metrics``.
        Defaults to a registry private to this server (pass one in to
        aggregate several servers or to share with other seams).
    tracer:
        A :class:`repro.obs.Tracer` recording one span per request
        (default: the shared no-op tracer — zero cost).
    """

    allow_reuse_address = True

    def __init__(
        self,
        service: ScoringService,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        queue_depth: int = 16,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        verbose: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[object] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_depth < 1:
            # Queue(maxsize=0) would mean *unbounded*, the opposite of
            # backpressure — reject it instead of silently flipping meaning.
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if max_request_bytes < 1:
            raise ValueError(f"max_request_bytes must be >= 1, got {max_request_bytes}")
        self.service = service
        self.max_request_bytes = int(max_request_bytes)
        self.verbose = bool(verbose)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Monotonic per-server request-id sequence (``next()`` is atomic in
        #: CPython, so the listener and worker threads can all draw from it).
        self._request_ids = itertools.count(1)
        self._queue: "queue.Queue[Optional[tuple]]" = queue.Queue(maxsize=queue_depth)
        self._workers = []
        # Pre-create the serving instruments so /metrics shows the full
        # contract (latency histogram + queue gauge) from the first scrape,
        # not only after traffic has arrived.
        self.metrics.counter("serve.requests.count")
        self.metrics.counter("serve.requests.errors")
        self.metrics.counter("serve.rejected.count")
        self.metrics.gauge("serve.queue.depth")
        self.metrics.histogram("serve.request.latency_seconds")
        super().__init__((host, port), ScoringRequestHandler)
        for index in range(workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"score-worker-{index}", daemon=True
            )
            thread.start()
            self._workers.append(thread)

    def next_request_id(self) -> str:
        """Allocate the next ``req-<n>`` id (thread-safe)."""
        return f"req-{next(self._request_ids)}"

    # ------------------------------------------------------------------ ---
    @property
    def url(self) -> str:
        """Base URL of the bound socket (resolves ephemeral ports)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def process_request(self, request, client_address):
        """Enqueue the accepted connection; reject with 503 when saturated."""
        try:
            self._queue.put_nowait((request, client_address))
        except queue.Full:
            self._reject(request)
            self.shutdown_request(request)
            return
        self.metrics.gauge("serve.queue.depth").set(self._queue.qsize())

    def _reject(self, request) -> None:
        """Raw 503 on the accepted socket (no handler thread available).

        The backpressure contract: a ``Retry-After`` hint (the queue drains
        in well under a second per slot) and a request id in both the
        ``X-Request-Id`` header and the error body, so rejected calls are
        correlatable even though no handler span ever ran.
        """
        request_id = self.next_request_id()
        self.metrics.counter("serve.rejected.count").inc()
        body = json.dumps(
            {"error": {"code": "overloaded",
                       "message": "request queue is full; retry later",
                       "request_id": request_id}}
        ).encode("utf-8")
        head = (
            "HTTP/1.0 503 Service Unavailable\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Retry-After: 1\r\n"
            f"X-Request-Id: {request_id}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            request.sendall(head + body)
        except OSError:
            pass

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            self.metrics.gauge("serve.queue.depth").set(self._queue.qsize())
            if item is None:
                return
            request, client_address = item
            try:
                self.finish_request(request, client_address)
            except Exception:
                self.handle_error(request, client_address)
            finally:
                self.shutdown_request(request)

    def handle_error(self, request, client_address):
        if self.verbose:
            super().handle_error(request, client_address)

    def close(self) -> None:
        """Stop the workers and close the listening socket."""
        for _ in self._workers:
            self._queue.put(None)
        for thread in self._workers:
            thread.join(timeout=5)
        self.server_close()


__all__ = [
    "DEFAULT_MAX_REQUEST_BYTES",
    "ScoringRequestHandler",
    "ScoringServer",
]
