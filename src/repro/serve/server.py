"""Threaded HTTP scoring server (stdlib ``http.server`` + ``socketserver``).

Request handling is decoupled from accepting: the listener thread only
enqueues accepted connections into a **bounded** queue, and a fixed pool of
worker threads drains it.  Under overload the queue fills and new
connections are rejected immediately with a structured ``503`` JSON body
(backpressure) instead of piling up unbounded.  Every error path returns a
JSON ``{"error": {"code", "message"}}`` document — never a stack trace.

Endpoints:

* ``GET /`` / ``GET /healthz`` — liveness + model descriptor.
* ``GET /model`` — the model descriptor alone.
* ``POST /score`` — softmax field(s) in, per-segment scores out (see
  :mod:`repro.serve.protocol` for the accepted encodings).

Worker threads are long-lived, so the extractor's thread-local ``(H, W, C)``
scratch buffers stay warm across the requests each worker serves.
"""

from __future__ import annotations

import json
import queue
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Optional

from repro.serve.protocol import RequestError, parse_score_request
from repro.serve.service import ScoringService

#: Default cap on request bodies (64 MiB holds a 1024x2048x19 float64 field).
DEFAULT_MAX_REQUEST_BYTES = 64 * 1024 * 1024

#: How much of an oversized body is drained before responding, so
#: well-behaved clients receive the 413 JSON instead of a connection reset.
_DRAIN_LIMIT = 1024 * 1024


class ScoringRequestHandler(BaseHTTPRequestHandler):
    """Maps HTTP requests onto the :class:`ScoringService`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.0"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # ------------------------------------------------------------------ ---
    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, code: str, message: str) -> None:
        self._send_json(status, {"error": {"code": code, "message": message}})

    # ------------------------------------------------------------------ ---
    def do_GET(self):  # noqa: N802 - stdlib naming
        service: ScoringService = self.server.service
        if self.path in ("/", "/healthz"):
            self._send_json(200, {"status": "ok", **service.info()})
        elif self.path == "/model":
            self._send_json(200, service.info())
        else:
            self._send_error_json(404, "not_found", f"unknown path {self.path!r}")

    def do_POST(self):  # noqa: N802 - stdlib naming
        if self.path != "/score":
            self._send_error_json(404, "not_found", f"unknown path {self.path!r}")
            return
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            self._send_error_json(411, "length_required", "Content-Length is required")
            return
        try:
            length = int(raw_length)
        except ValueError:
            length = -1
        if length < 0:
            self._send_error_json(400, "bad_length", f"invalid Content-Length {raw_length!r}")
            return
        max_bytes = self.server.max_request_bytes
        if length > max_bytes:
            # Drain a bounded amount so the client sees the response instead
            # of a reset, then report the limit.
            try:
                self.rfile.read(min(length, _DRAIN_LIMIT))
            except OSError:
                pass
            self._send_error_json(
                413,
                "payload_too_large",
                f"request body of {length} bytes exceeds the limit of {max_bytes}",
            )
            return
        body = self.rfile.read(length)
        image_id = self.headers.get("X-Image-Id") or "frame"
        service: ScoringService = self.server.service
        try:
            frames = parse_score_request(
                self.headers.get("Content-Type"), body, default_image_id=image_id
            )
            result = service.score_frames(frames)
        except RequestError as exc:
            self._send_error_json(exc.status, exc.code, exc.message)
            return
        except ValueError as exc:
            # The extractor's numerical validation (shape/row-sum/classes).
            self._send_error_json(400, "bad_input", str(exc))
            return
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_json(
                500, "internal_error", f"{type(exc).__name__}: {exc}"
            )
            return
        self._send_json(200, result)


class ScoringServer(HTTPServer):
    """HTTP server with a bounded request queue and a worker-thread pool.

    Parameters
    ----------
    service:
        The :class:`ScoringService` to expose.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (see :attr:`url`).
    workers:
        Number of long-lived handler threads (>= 1).
    queue_depth:
        Bound on accepted-but-unhandled connections (>= 1).  When full, new
        connections get an immediate ``503`` (backpressure) instead of
        queueing unboundedly.
    max_request_bytes:
        Request-body cap enforced before reading the body (413 beyond it).
    verbose:
        Enable stdlib per-request logging (quiet by default).
    """

    allow_reuse_address = True

    def __init__(
        self,
        service: ScoringService,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        queue_depth: int = 16,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        verbose: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_depth < 1:
            # Queue(maxsize=0) would mean *unbounded*, the opposite of
            # backpressure — reject it instead of silently flipping meaning.
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if max_request_bytes < 1:
            raise ValueError(f"max_request_bytes must be >= 1, got {max_request_bytes}")
        self.service = service
        self.max_request_bytes = int(max_request_bytes)
        self.verbose = bool(verbose)
        self._queue: "queue.Queue[Optional[tuple]]" = queue.Queue(maxsize=queue_depth)
        self._workers = []
        super().__init__((host, port), ScoringRequestHandler)
        for index in range(workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"score-worker-{index}", daemon=True
            )
            thread.start()
            self._workers.append(thread)

    # ------------------------------------------------------------------ ---
    @property
    def url(self) -> str:
        """Base URL of the bound socket (resolves ephemeral ports)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def process_request(self, request, client_address):
        """Enqueue the accepted connection; reject with 503 when saturated."""
        try:
            self._queue.put_nowait((request, client_address))
        except queue.Full:
            self._reject(request)
            self.shutdown_request(request)

    @staticmethod
    def _reject(request) -> None:
        """Raw 503 on the accepted socket (no handler thread available)."""
        body = json.dumps(
            {"error": {"code": "overloaded",
                       "message": "request queue is full; retry later"}}
        ).encode("utf-8")
        head = (
            "HTTP/1.0 503 Service Unavailable\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            request.sendall(head + body)
        except OSError:
            pass

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            request, client_address = item
            try:
                self.finish_request(request, client_address)
            except Exception:
                self.handle_error(request, client_address)
            finally:
                self.shutdown_request(request)

    def handle_error(self, request, client_address):
        if self.verbose:
            super().handle_error(request, client_address)

    def close(self) -> None:
        """Stop the workers and close the listening socket."""
        for _ in self._workers:
            self._queue.put(None)
        for thread in self._workers:
            thread.join(timeout=5)
        self.server_close()


__all__ = [
    "DEFAULT_MAX_REQUEST_BYTES",
    "ScoringRequestHandler",
    "ScoringServer",
]
