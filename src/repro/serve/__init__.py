"""Online scoring service: fit once, score many (``python -m repro serve``).

The batch experiment path re-extracts and re-fits per run; serving inverts
that: ``Runner.fit`` produces a persistent
:class:`~repro.api.fitted.FittedModel` (meta classifier + regressor +
scalers + label space + provenance, content-addressed through
:mod:`repro.store`), and this package exposes it over HTTP for scoring new
softmax fields without ground truth:

* :class:`ScoringService` — the warm model + extractor behind the endpoints;
* :class:`ScoringServer` — threaded stdlib HTTP server with a bounded
  request queue (structured 503 backpressure) and JSON error contracts;
* :mod:`repro.serve.protocol` — request decoding (npy / npz / JSON);
* :mod:`repro.serve.client` — stdlib client helpers used by tests, the
  benchmark and CI.

Server responses are bitwise identical to the batch reference
(``Runner.score``) because both go through ``FittedModel.score_frame``.
"""

from repro.serve.client import (
    health,
    npy_bytes,
    npz_bytes,
    score_batch,
    score_frame,
    wait_until_ready,
)
from repro.serve.protocol import RequestError, parse_score_request
from repro.serve.server import (
    DEFAULT_MAX_REQUEST_BYTES,
    ScoringRequestHandler,
    ScoringServer,
)
from repro.serve.service import ScoringService

__all__ = [
    "DEFAULT_MAX_REQUEST_BYTES",
    "RequestError",
    "ScoringRequestHandler",
    "ScoringServer",
    "ScoringService",
    "health",
    "npy_bytes",
    "npz_bytes",
    "parse_score_request",
    "score_batch",
    "score_frame",
    "wait_until_ready",
]
