"""Minimal stdlib client helpers for the scoring server.

Used by the tests, the benchmark and the CI smoke script; also a reference
for how to talk to the server from any HTTP client.
"""

from __future__ import annotations

import io
import json
import os
import time
import urllib.error
import urllib.request
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

#: Connect/read timeout applied when callers pass ``timeout=None`` — a
#: client helper must never hang forever on a wedged server.
DEFAULT_TIMEOUT = 60.0

#: Exponential-backoff base (seconds) for opt-in 503 retries.
RETRY_BACKOFF_BASE = 0.25

#: Cap on any single retry delay, including server-suggested ``Retry-After``.
RETRY_BACKOFF_CAP = 10.0


def npy_bytes(array: np.ndarray) -> bytes:
    """Serialize one array as raw ``.npy`` bytes (``numpy.save``)."""
    buffer = io.BytesIO()
    np.save(buffer, np.asarray(array))
    return buffer.getvalue()


def npz_bytes(frames: Sequence[Tuple[str, np.ndarray]]) -> bytes:
    """Serialize ordered (image_id, probs) pairs as an ``.npz`` archive."""
    buffer = io.BytesIO()
    np.savez(buffer, **{name: np.asarray(array) for name, array in frames})
    return buffer.getvalue()


def _jitter_fraction() -> float:
    """Retry jitter in ``[0, 0.5)`` drawn from ``os.urandom``.

    Backoff desynchronisation wants real entropy and must not touch any
    seeded RNG stream (or the stdlib global RNG) — wall-clock scheduling
    noise never enters scored results.
    """
    return int.from_bytes(os.urandom(2), "big") / 131072.0


def _retry_delay(attempt: int, retry_after: Optional[str]) -> float:
    """Seconds to sleep before retry *attempt* (0-based).

    A parseable ``Retry-After`` header is honoured (the server knows its
    queue better than we do), otherwise exponential backoff from
    :data:`RETRY_BACKOFF_BASE`; either way the delay is capped at
    :data:`RETRY_BACKOFF_CAP` and jittered up to +50%.
    """
    delay = None
    if retry_after is not None:
        try:
            delay = float(retry_after)
        except ValueError:
            delay = None
    if delay is None or delay < 0:
        delay = RETRY_BACKOFF_BASE * (2 ** attempt)
    return min(RETRY_BACKOFF_CAP, delay) * (1.0 + _jitter_fraction())


def _is_torn_connection(reason: object) -> bool:
    """True when a URLError wraps the server closing the socket on us."""
    return isinstance(reason, (BrokenPipeError, ConnectionResetError))


def _request(
    url: str,
    data: Optional[bytes] = None,
    headers: Optional[Dict[str, str]] = None,
    timeout: Optional[float] = DEFAULT_TIMEOUT,
    retries: int = 0,
) -> Dict[str, object]:
    """One JSON request; opt-in retry (``retries`` > 0) on 503 backpressure.

    ``timeout=None`` is normalised to :data:`DEFAULT_TIMEOUT` — the helpers
    never wait forever on a connect or read.  Retries cover 503 (the
    server's explicit "try again later") and connections the server tears
    down mid-request (broken pipe / reset): a backpressuring server that
    rejects at accept time closes the socket while a large body is still in
    flight, which surfaces client-side as ``URLError(EPIPE)`` rather than a
    readable 503 response.  Every other failure propagates immediately.
    """
    if timeout is None:
        timeout = DEFAULT_TIMEOUT
    attempt = 0
    while True:
        request = urllib.request.Request(url, data=data, headers=headers or {})
        retry_after: Optional[str] = None
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            if exc.code != 503 or attempt >= retries:
                raise
            retry_after = exc.headers.get("Retry-After") if exc.headers else None
            exc.close()
        except urllib.error.URLError as exc:
            if attempt >= retries or not _is_torn_connection(exc.reason):
                raise
        time.sleep(_retry_delay(attempt, retry_after))
        attempt += 1


def health(
    base_url: str, timeout: Optional[float] = DEFAULT_TIMEOUT, retries: int = 0
) -> Dict[str, object]:
    """GET /healthz."""
    return _request(
        f"{base_url.rstrip('/')}/healthz", timeout=timeout, retries=retries
    )


def score_frame(
    base_url: str,
    probs: np.ndarray,
    image_id: Optional[str] = None,
    timeout: Optional[float] = DEFAULT_TIMEOUT,
    retries: int = 0,
) -> Dict[str, object]:
    """POST one softmax field as npy bytes; returns the scored frame dict.

    The server always answers with a ``{"frames": [...], "n_frames": N}``
    envelope; this helper unwraps the single frame.  ``retries`` opts into
    backoff-with-jitter retries on 503 backpressure responses.
    """
    headers = {"Content-Type": "application/x-npy"}
    if image_id is not None:
        headers["X-Image-Id"] = image_id
    response = _request(
        f"{base_url.rstrip('/')}/score",
        data=npy_bytes(probs),
        headers=headers,
        timeout=timeout,
        retries=retries,
    )
    return response["frames"][0]


def score_batch(
    base_url: str,
    frames: Sequence[Tuple[str, np.ndarray]],
    timeout: Optional[float] = 120.0,
    retries: int = 0,
) -> Dict[str, object]:
    """POST a batch of frames as an npz archive; returns the response dict."""
    return _request(
        f"{base_url.rstrip('/')}/score",
        data=npz_bytes(frames),
        headers={"Content-Type": "application/x-npz"},
        timeout=timeout,
        retries=retries,
    )


def wait_until_ready(
    base_url: str, timeout: float = 30.0, interval: float = 0.1
) -> Dict[str, object]:
    """Poll /healthz until it answers; raises TimeoutError at the deadline."""
    deadline = time.monotonic() + timeout  # repro: allow[det-wallclock] -- readiness-poll deadline, not part of any scored result
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:  # repro: allow[det-wallclock] -- readiness-poll deadline, not part of any scored result
        try:
            return health(base_url, timeout=min(5.0, timeout))
        except (urllib.error.URLError, OSError, ValueError) as exc:
            last_error = exc
            time.sleep(interval)
    raise TimeoutError(f"server at {base_url} not ready after {timeout}s: {last_error}")


__all__ = [
    "DEFAULT_TIMEOUT",
    "RETRY_BACKOFF_BASE",
    "RETRY_BACKOFF_CAP",
    "health",
    "npy_bytes",
    "npz_bytes",
    "score_batch",
    "score_frame",
    "wait_until_ready",
]
