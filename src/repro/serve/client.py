"""Minimal stdlib client helpers for the scoring server.

Used by the tests, the benchmark and the CI smoke script; also a reference
for how to talk to the server from any HTTP client.
"""

from __future__ import annotations

import io
import json
import time
import urllib.error
import urllib.request
from typing import Dict, Optional, Sequence, Tuple

import numpy as np


def npy_bytes(array: np.ndarray) -> bytes:
    """Serialize one array as raw ``.npy`` bytes (``numpy.save``)."""
    buffer = io.BytesIO()
    np.save(buffer, np.asarray(array))
    return buffer.getvalue()


def npz_bytes(frames: Sequence[Tuple[str, np.ndarray]]) -> bytes:
    """Serialize ordered (image_id, probs) pairs as an ``.npz`` archive."""
    buffer = io.BytesIO()
    np.savez(buffer, **{name: np.asarray(array) for name, array in frames})
    return buffer.getvalue()


def _request(
    url: str,
    data: Optional[bytes] = None,
    headers: Optional[Dict[str, str]] = None,
    timeout: float = 60.0,
) -> Dict[str, object]:
    request = urllib.request.Request(url, data=data, headers=headers or {})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def health(base_url: str, timeout: float = 60.0) -> Dict[str, object]:
    """GET /healthz."""
    return _request(f"{base_url.rstrip('/')}/healthz", timeout=timeout)


def score_frame(
    base_url: str,
    probs: np.ndarray,
    image_id: Optional[str] = None,
    timeout: float = 60.0,
) -> Dict[str, object]:
    """POST one softmax field as npy bytes; returns the scored frame dict.

    The server always answers with a ``{"frames": [...], "n_frames": N}``
    envelope; this helper unwraps the single frame.
    """
    headers = {"Content-Type": "application/x-npy"}
    if image_id is not None:
        headers["X-Image-Id"] = image_id
    response = _request(
        f"{base_url.rstrip('/')}/score",
        data=npy_bytes(probs),
        headers=headers,
        timeout=timeout,
    )
    return response["frames"][0]


def score_batch(
    base_url: str,
    frames: Sequence[Tuple[str, np.ndarray]],
    timeout: float = 120.0,
) -> Dict[str, object]:
    """POST a batch of frames as an npz archive; returns the response dict."""
    return _request(
        f"{base_url.rstrip('/')}/score",
        data=npz_bytes(frames),
        headers={"Content-Type": "application/x-npz"},
        timeout=timeout,
    )


def wait_until_ready(
    base_url: str, timeout: float = 30.0, interval: float = 0.1
) -> Dict[str, object]:
    """Poll /healthz until it answers; raises TimeoutError at the deadline."""
    deadline = time.monotonic() + timeout  # repro: allow[det-wallclock] -- readiness-poll deadline, not part of any scored result
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:  # repro: allow[det-wallclock] -- readiness-poll deadline, not part of any scored result
        try:
            return health(base_url, timeout=min(5.0, timeout))
        except (urllib.error.URLError, OSError, ValueError) as exc:
            last_error = exc
            time.sleep(interval)
    raise TimeoutError(f"server at {base_url} not ready after {timeout}s: {last_error}")


__all__ = [
    "health",
    "npy_bytes",
    "npz_bytes",
    "score_batch",
    "score_frame",
    "wait_until_ready",
]
