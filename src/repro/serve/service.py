"""The scoring service: a warm FittedModel behind a frame-scoring API.

The service owns the model and one shared
:class:`~repro.core.metrics.SegmentMetricsExtractor` built at startup, so
the schema-drift check runs once and the extractor's per-thread ``(H, W, C)``
scratch buffers stay warm across requests — a worker thread that has scored
one frame of a given resolution re-uses its buffers for every following
frame of that resolution.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.api.fitted import FittedModel


class ScoringService:
    """Stateless-per-request scoring facade over a :class:`FittedModel`."""

    def __init__(self, model: FittedModel) -> None:
        self.model = model
        # Built once: validates the feature schema and keeps the extractor's
        # thread-local scratch warm across requests.
        self.extractor = model.build_extractor()

    def info(self) -> Dict[str, object]:
        """Compact model descriptor served on ``/`` and ``/model``."""
        provenance = self.model.provenance
        out: Dict[str, object] = {
            key: provenance[key]
            for key in (
                "kind", "name", "seed", "network", "classifier", "regressor",
                "n_images", "n_segments",
            )
            if key in provenance
        }
        out["n_classes"] = self.model.label_space.n_classes
        out["n_features"] = len(self.model.feature_names)
        out["connectivity"] = self.model.connectivity
        return out

    def score_frame(self, probs: np.ndarray, image_id: str = "frame") -> Dict[str, object]:
        """Score one softmax field; raises ValueError for invalid fields."""
        return self.model.score_frame(probs, extractor=self.extractor, image_id=image_id)

    def score_frames(
        self, frames: Sequence[Tuple[str, np.ndarray]]
    ) -> Dict[str, object]:
        """Score an ordered batch; response shape matches ``Runner.score``."""
        scored: List[Dict[str, object]] = [
            self.score_frame(probs, image_id=image_id) for image_id, probs in frames
        ]
        return {"frames": scored, "n_frames": len(scored)}


__all__ = ["ScoringService"]
