"""Pixel-wise dispersion heatmaps.

Section II of the paper constructs segment metrics "based on dispersion
measures of f_z(y|x,w) (entropy, probability margin)".  This module computes
those dispersion measures per pixel; :mod:`repro.core.metrics` aggregates them
over segments.

All heatmaps are normalised to [0, 1]:

* ``entropy_heatmap`` — Shannon entropy of the pixel's class distribution,
  divided by log(C);
* ``probability_margin_heatmap`` — 1 minus the difference between the largest
  and second-largest class probability (1 = maximal ambiguity);
* ``variation_ratio_heatmap`` — 1 minus the largest class probability.

``fused_dispersion_heatmaps`` computes all three (plus the max-probability
map itself) from **one** top-2 partition of the softmax field and one
validation pass, bitwise-identical to calling the individual functions; it is
the single-pass primitive behind the fused metric extraction of
:mod:`repro.core.metrics`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.utils.validation import check_probability_field


def entropy_heatmap(probs: np.ndarray) -> np.ndarray:
    """Normalised Shannon entropy per pixel (values in [0, 1])."""
    probs = check_probability_field(probs)
    n_classes = probs.shape[2]
    clipped = np.clip(probs, 1e-12, 1.0)
    entropy = -np.sum(clipped * np.log(clipped), axis=2)
    return entropy / np.log(n_classes)


def variation_ratio_heatmap(probs: np.ndarray) -> np.ndarray:
    """1 - max class probability per pixel (values in [0, 1])."""
    probs = check_probability_field(probs)
    return 1.0 - probs.max(axis=2)


def probability_margin_heatmap(probs: np.ndarray) -> np.ndarray:
    """1 - (largest minus second-largest class probability) per pixel."""
    probs = check_probability_field(probs)
    # Partition so the two largest probabilities sit in the last two slots.
    top_two = np.partition(probs, probs.shape[2] - 2, axis=2)[:, :, -2:]
    margin = top_two[:, :, 1] - top_two[:, :, 0]
    return 1.0 - margin


def dispersion_scratch(shape: Tuple[int, int, int]) -> Tuple[np.ndarray, np.ndarray]:
    """Two reusable (H, W, C) work buffers for one field shape.

    :func:`fused_dispersion_heatmaps` spends a large share of its wall clock
    faulting freshly-allocated (H, W, C) temporaries per call; video
    pipelines process thousands of equally-sized frames, so callers on the
    hot path allocate this scratch once and pass it to every call.  Two
    buffers suffice: the first holds the partition and is reused for the
    clipped field once the top-2 values are consumed, the second holds the
    entropy integrand.  The buffers are plain work space — nothing returned
    by the fused function aliases them — but they must not be shared between
    concurrent calls.
    """
    return (np.empty(shape), np.empty(shape))


def fused_dispersion_heatmaps(
    probs: np.ndarray,
    validate: bool = True,
    scratch: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
    """All dispersion heatmaps plus the max-probability map, in one pass.

    One partition yields both the largest and second-largest class
    probability, so V (1 - p_max), M (1 - (p_max - p_2nd)) and the ``pmax``
    map share a single pass over the (H, W, C) field instead of three, and
    the field is validated once instead of once per heatmap.  The probability
    maximum is one of the field's own (positive) entries, so reading it from
    the partition is bitwise-identical to ``probs.max(axis=2)``; with
    ``scratch`` (see :func:`dispersion_scratch`) the three (H, W, C)
    temporaries are reused instead of reallocated, which changes where the
    intermediates live but not a single arithmetic operation.

    Returns
    -------
    heatmaps, pmax:
        The ``{"E", "M", "V"}`` dict of :func:`dispersion_heatmaps` and the
        per-pixel maximum class probability.
    """
    if validate:
        probs = check_probability_field(probs)
    n_classes = probs.shape[2]
    if scratch is None:
        scratch = dispersion_scratch(probs.shape)
    work, integrand = scratch
    work[...] = probs
    work.partition(n_classes - 2, axis=2)
    top_two = work[:, :, -2:]
    # Consume the partition before the buffer is reused for the clipped
    # field: pmax as a contiguous copy (downstream per-segment reductions
    # ravel it, and it must not alias the work buffer), M as a fresh array.
    pmax = np.ascontiguousarray(top_two[:, :, 1])
    margin_heatmap = 1.0 - (top_two[:, :, 1] - top_two[:, :, 0])
    clipped = np.clip(probs, 1e-12, 1.0, out=work)
    # x*log(x) in place: identical multiplications in identical order, no
    # fresh (H, W, C) temporaries.
    np.log(clipped, out=integrand)
    np.multiply(clipped, integrand, out=integrand)
    entropy = -np.sum(integrand, axis=2)
    heatmaps = {
        "E": entropy / np.log(n_classes),
        "M": margin_heatmap,
        "V": 1.0 - pmax,
    }
    return heatmaps, pmax


def dispersion_heatmaps(probs: np.ndarray) -> Dict[str, np.ndarray]:
    """All dispersion heatmaps keyed by their short names (E, M, V)."""
    probs = check_probability_field(probs)
    heatmaps, _pmax = fused_dispersion_heatmaps(probs, validate=False)
    return heatmaps


def _reference_dispersion_heatmaps(probs: np.ndarray) -> Dict[str, np.ndarray]:
    """Seed implementation of :func:`dispersion_heatmaps` (one pass per map).

    Retained verbatim as the baseline of the fused-extraction parity tests
    and ``benchmarks/bench_extraction_fused.py``; do not use on hot paths.
    """
    probs = check_probability_field(probs)
    return {
        "E": entropy_heatmap(probs),
        "M": probability_margin_heatmap(probs),
        "V": variation_ratio_heatmap(probs),
    }
