"""Pixel-wise dispersion heatmaps.

Section II of the paper constructs segment metrics "based on dispersion
measures of f_z(y|x,w) (entropy, probability margin)".  This module computes
those dispersion measures per pixel; :mod:`repro.core.metrics` aggregates them
over segments.

All heatmaps are normalised to [0, 1]:

* ``entropy_heatmap`` — Shannon entropy of the pixel's class distribution,
  divided by log(C);
* ``probability_margin_heatmap`` — 1 minus the difference between the largest
  and second-largest class probability (1 = maximal ambiguity);
* ``variation_ratio_heatmap`` — 1 minus the largest class probability.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.utils.validation import check_probability_field


def entropy_heatmap(probs: np.ndarray) -> np.ndarray:
    """Normalised Shannon entropy per pixel (values in [0, 1])."""
    probs = check_probability_field(probs)
    n_classes = probs.shape[2]
    clipped = np.clip(probs, 1e-12, 1.0)
    entropy = -np.sum(clipped * np.log(clipped), axis=2)
    return entropy / np.log(n_classes)


def variation_ratio_heatmap(probs: np.ndarray) -> np.ndarray:
    """1 - max class probability per pixel (values in [0, 1])."""
    probs = check_probability_field(probs)
    return 1.0 - probs.max(axis=2)


def probability_margin_heatmap(probs: np.ndarray) -> np.ndarray:
    """1 - (largest minus second-largest class probability) per pixel."""
    probs = check_probability_field(probs)
    # Partition so the two largest probabilities sit in the last two slots.
    top_two = np.partition(probs, probs.shape[2] - 2, axis=2)[:, :, -2:]
    margin = top_two[:, :, 1] - top_two[:, :, 0]
    return 1.0 - margin


def dispersion_heatmaps(probs: np.ndarray) -> Dict[str, np.ndarray]:
    """All dispersion heatmaps keyed by their short names (E, M, V)."""
    probs = check_probability_field(probs)
    return {
        "E": entropy_heatmap(probs),
        "M": probability_margin_heatmap(probs),
        "V": variation_ratio_heatmap(probs),
    }
