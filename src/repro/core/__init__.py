"""MetaSeg: segment-wise false-positive detection and quality estimation.

This subpackage implements the paper's primary contribution (Section II):

1. pixel-wise *dispersion heatmaps* derived from the softmax output
   (:mod:`repro.core.heatmaps`);
2. extraction of predicted and ground-truth *segments* (connected components)
   and their segment-wise IoU (:mod:`repro.core.segments`);
3. aggregation of dispersion and geometry measures into segment-wise
   *metrics* µ(k) (:mod:`repro.core.metrics`) collected in a structured
   dataset (:mod:`repro.core.dataset`);
4. *meta classification* (IoU = 0 vs. IoU > 0, i.e. false-positive detection)
   and *meta regression* (direct IoU prediction) on top of those metrics
   (:mod:`repro.core.meta_classification`, :mod:`repro.core.meta_regression`);
5. an end-to-end pipeline reproducing the Table I protocol
   (:mod:`repro.core.pipeline`), the nested multi-resolution extension
   (:mod:`repro.core.multiresolution`) and Fig.-1-style visualisations
   (:mod:`repro.core.visualization`).
"""

from repro.core.heatmaps import (
    entropy_heatmap,
    probability_margin_heatmap,
    variation_ratio_heatmap,
    dispersion_heatmaps,
)
from repro.core.segments import (
    Segmentation,
    SegmentInfo,
    extract_segments,
    segment_iou,
    segment_ious,
    false_positive_segments,
    false_negative_segments,
)
from repro.core.metrics import SegmentMetricsExtractor, METRIC_GROUPS
from repro.core.dataset import MetricsDataset
from repro.core.meta_classification import MetaClassifier, naive_baseline_accuracy
from repro.core.meta_regression import MetaRegressor
from repro.core.pipeline import MetaSegPipeline, MetaSegResult
from repro.core.multiresolution import MultiResolutionInference
from repro.core.visualization import (
    labels_to_rgb,
    iou_to_rgb,
    write_ppm,
    render_ascii,
    fig1_panels,
)

__all__ = [
    "entropy_heatmap",
    "probability_margin_heatmap",
    "variation_ratio_heatmap",
    "dispersion_heatmaps",
    "Segmentation",
    "SegmentInfo",
    "extract_segments",
    "segment_iou",
    "segment_ious",
    "false_positive_segments",
    "false_negative_segments",
    "SegmentMetricsExtractor",
    "METRIC_GROUPS",
    "MetricsDataset",
    "MetaClassifier",
    "naive_baseline_accuracy",
    "MetaRegressor",
    "MetaSegPipeline",
    "MetaSegResult",
    "MultiResolutionInference",
    "labels_to_rgb",
    "iou_to_rgb",
    "write_ppm",
    "render_ascii",
    "fig1_panels",
]
