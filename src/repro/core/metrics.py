"""Construction of segment-wise metrics µ(k).

For every predicted segment k the paper aggregates pixel-wise dispersion
measures and geometric quantities into a metric vector µ(k) ∈ R^m (Section II,
eq. (3)).  Following the MetaSeg construction ([16] of the paper) we compute:

* geometry: segment size S, interior size S_in, boundary size S_bd, and the
  fractality ratios S/S_bd and S_in/S_bd ("quotient of volume and boundary
  length");
* dispersion: for each heatmap D ∈ {E (entropy), M (probability margin),
  V (variation ratio)} the means over the whole segment, its interior and its
  boundary (D̄, D̄_in, D̄_bd) plus the boundary-relative variants
  D̄·S_bd/S and D̄_in·S_bd/max(S_in,1);
* mean class probabilities: the softmax probability of every class averaged
  over the segment (cprob_0 … cprob_{C-1}) and the mean probability of the
  predicted class itself;
* context: the predicted class id, a thing/stuff flag and the normalised
  centroid position.

The extractor is fully vectorised over segments **and** over metric columns:
one top-2 partition of the softmax field yields V, M and the max-probability
map at once (:func:`repro.core.heatmaps.fused_dispersion_heatmaps`), and all
per-segment sums — dispersion heatmaps, pixel coordinates, max probability and
every per-class mean probability — come from a single grouped reduction (one
``np.bincount`` over ``component_id * n_columns + column`` codes with stacked
weights) plus one such pass each for the interior and boundary restrictions;
interior/boundary *counts* are derived by exact integer subtraction instead of
masked re-bincounts.  The column-at-a-time seed implementation is retained
verbatim as ``_reference_compute_features``; the fused path is bitwise-
identical to it (``tests/test_core_metrics_dataset.py`` fuzzes the parity,
``benchmarks/bench_extraction_fused.py`` gates the speedup).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import METRIC_GROUPS as METRIC_GROUP_REGISTRY
from repro.core.dataset import MetricsDataset
from repro.core.heatmaps import (
    _reference_dispersion_heatmaps,
    dispersion_scratch,
    fused_dispersion_heatmaps,
)
from repro.core.segments import Segmentation, extract_segments, segment_ious
from repro.segmentation.labels import LabelSpace, cityscapes_label_space
from repro.utils.validation import check_label_map, check_probability_field, check_same_shape

#: Named groups of metrics, usable to select feature subsets (ablations and
#: the entropy-only baseline of Table I).
METRIC_GROUPS: Dict[str, Sequence[str]] = {  # repro: allow[concurrency-shared-state] -- read-only after import (ablation name table)
    "entropy_only": ("E_mean",),
    "dispersion": (
        "E_mean", "E_in_mean", "E_bd_mean", "E_rel", "E_rel_in",
        "M_mean", "M_in_mean", "M_bd_mean", "M_rel", "M_rel_in",
        "V_mean", "V_in_mean", "V_bd_mean", "V_rel", "V_rel_in",
    ),
    "geometry": ("S", "S_in", "S_bd", "S_rel", "S_rel_in"),
    "context": ("predicted_class", "is_thing", "centroid_row", "centroid_col", "pmax_mean"),
}

# Expose the metric groups through the experiment-API registry ("all" = no
# restriction, i.e. the full metric vector of eq. (3)).
METRIC_GROUP_REGISTRY.register("all", None)
for _group_name, _group_features in METRIC_GROUPS.items():
    METRIC_GROUP_REGISTRY.register(_group_name, tuple(_group_features))


@dataclass
class ImageMetrics:
    """Intermediate result of metric extraction for one image."""

    dataset: MetricsDataset
    prediction: Segmentation
    ground_truth: Optional[Segmentation]


class SegmentMetricsExtractor:
    """Compute segment-wise metrics µ(k) from a softmax field.

    Parameters
    ----------
    label_space:
        Label space used to name the per-class probability features and to
        derive the thing/stuff flag.
    connectivity:
        Connectivity used for the connected-component decomposition.
    ignore_id:
        Ground-truth value marking pixels without annotation.
    """

    def __init__(
        self,
        label_space: Optional[LabelSpace] = None,
        connectivity: int = 8,
        ignore_id: int = -1,
    ) -> None:
        self.label_space = label_space or cityscapes_label_space()
        if connectivity not in (4, 8):
            raise ValueError("connectivity must be 4 or 8")
        self.connectivity = connectivity
        self.ignore_id = ignore_id
        # Per-shape scratch buffers (pixel coordinate grids) reused across
        # frames; video pipelines process thousands of equally-sized frames,
        # so the grids are allocated once per resolution instead of per frame.
        self._grid_cache: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
        # Mutable (H, W, C) work buffers for the fused extraction, reused
        # across frames of equal shape.  Unlike the read-only grids these are
        # written on every call, so they live in thread-local storage — the
        # batched extraction layer shares one extractor across a thread pool.
        self._scratch = threading.local()

    def _pixel_grids(self, height: int, width: int) -> Tuple[np.ndarray, np.ndarray]:
        """Cached (row, col) coordinate grids for a frame shape."""
        key = (height, width)
        grids = self._grid_cache.get(key)
        if grids is None:
            rows_grid, cols_grid = np.meshgrid(
                np.arange(height, dtype=np.float64),
                np.arange(width, dtype=np.float64),
                indexing="ij",
            )
            grids = (rows_grid, cols_grid)
            self._grid_cache[key] = grids  # repro: allow[concurrency-shared-state] -- idempotent per-key write; racing threads store identical grids
        return grids

    def _thread_scratch(self, height: int, width: int, n_classes: int):
        """This thread's reusable fused-extraction buffers for a field shape.

        Returns ``(dispersion_scratch, class_codes_buffer)``.  Only the most
        recent shape is retained per thread, which bounds the footprint to
        one working set while still serving the frame-after-frame video case.
        """
        shape = (height, width, n_classes)
        state = getattr(self._scratch, "state", None)
        if state is None or state[0] != shape:
            state = (
                shape,
                dispersion_scratch(shape),
                np.empty((height * width, n_classes), dtype=np.int64),
            )
            self._scratch.state = state
        return state[1], state[2]

    def __getstate__(self):
        """Drop unpicklable / bulky per-thread scratch state when pickled."""
        state = self.__dict__.copy()
        state["_scratch"] = None
        state["_grid_cache"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._grid_cache = {}
        self._scratch = threading.local()

    # ------------------------------------------------------------------ ---
    def feature_names(self) -> List[str]:
        """Names of all features produced by :meth:`extract`, in order."""
        names: List[str] = []
        names.extend(METRIC_GROUPS["geometry"])
        names.extend(METRIC_GROUPS["dispersion"])
        names.extend(METRIC_GROUPS["context"])
        names.extend(f"cprob_{spec.name.replace(' ', '_')}" for spec in self.label_space)
        return names

    def extract(
        self,
        probs: np.ndarray,
        gt_labels: Optional[np.ndarray] = None,
        image_id: str = "image",
    ) -> MetricsDataset:
        """Extract the structured metrics dataset for one image.

        Parameters
        ----------
        probs:
            (H, W, C) softmax field of the segmentation network.
        gt_labels:
            Optional ground-truth label map.  When given, the segment-wise IoU
            targets are computed; when omitted the dataset carries only
            features (used e.g. for deployment-time quality estimation).
        image_id:
            Identifier stored with every segment for bookkeeping.
        """
        return self.extract_full(probs, gt_labels=gt_labels, image_id=image_id).dataset

    def extract_full(
        self,
        probs: np.ndarray,
        gt_labels: Optional[np.ndarray] = None,
        image_id: str = "image",
    ) -> ImageMetrics:
        """Like :meth:`extract` but also return the segment decompositions."""
        probs = check_probability_field(probs)
        if probs.shape[2] != self.label_space.n_classes:
            raise ValueError(
                f"probability field has {probs.shape[2]} classes, "
                f"label space has {self.label_space.n_classes}"
            )
        predicted_labels = np.argmax(probs, axis=2).astype(np.int64)
        prediction = extract_segments(predicted_labels, connectivity=self.connectivity)
        ground_truth = None
        iou: Optional[np.ndarray] = None
        if gt_labels is not None:
            gt_labels = check_label_map(gt_labels)
            check_same_shape(probs, gt_labels, "probs", "gt_labels")
            ground_truth = extract_segments(
                gt_labels, connectivity=self.connectivity, ignore_id=self.ignore_id
            )
            iou_map = segment_ious(prediction, ground_truth, ignore_id=self.ignore_id)
            iou = np.array([iou_map[sid] for sid in prediction.segment_ids()], dtype=np.float64)

        features = self._compute_features(probs, prediction)
        segment_ids = np.array(prediction.segment_ids(), dtype=np.int64)
        class_ids = np.array(
            [prediction.segments[sid].class_id for sid in prediction.segment_ids()], dtype=np.int64
        )
        dataset = MetricsDataset(
            features=features,
            feature_names=self.feature_names(),
            segment_ids=segment_ids,
            class_ids=class_ids,
            image_ids=np.array([image_id] * segment_ids.shape[0], dtype=object),
            iou=iou,
        )
        return ImageMetrics(dataset=dataset, prediction=prediction, ground_truth=ground_truth)

    # ------------------------------------------------------------------ ---
    def _compute_features(self, probs: np.ndarray, prediction: Segmentation) -> np.ndarray:
        """Fused single-pass aggregation of all segment metrics.

        Bitwise-identical to :meth:`_reference_compute_features` (the seed
        column-at-a-time path): the stacked-weights ``np.bincount`` adds the
        same weights to the same bins in the same (pixel-major) order as the
        seed's one-bincount-per-column loop, and the interior/boundary counts
        it derives by subtraction are exact in float64.
        """
        components = prediction.components
        n_segments = prediction.n_segments
        n_bins = n_segments + 1
        flat_components = components.ravel()
        height, width = components.shape
        n_classes = probs.shape[2]

        sizes = np.bincount(flat_components, minlength=n_bins).astype(np.float64)
        interior = self._interior_mask(components)
        interior_flat = interior.ravel()
        boundary_flat = ~interior_flat
        components_interior = flat_components[interior_flat]
        components_boundary = flat_components[boundary_flat]
        sizes_in = np.bincount(components_interior, minlength=n_bins).astype(np.float64)
        # Exact: both operands are integers well below 2**53, so the
        # difference carries the same float64 bits as a direct bincount of
        # the boundary pixels.
        sizes_bd = sizes - sizes_in

        # probs is already validated by extract_full; one partition feeds V,
        # M and pmax, one log pass feeds E, and the (H, W, C) work buffers
        # are reused across equally-shaped frames.
        heatmap_scratch, class_codes = self._thread_scratch(height, width, n_classes)
        heatmaps, pmax = fused_dispersion_heatmaps(
            probs, validate=False, scratch=heatmap_scratch
        )

        def _mean(sums: np.ndarray, counts: np.ndarray) -> np.ndarray:
            """Per-segment mean from precomputed sums and counts."""
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.where(counts > 0, sums / np.maximum(counts, 1.0), 0.0)

        def _sum(values_flat: np.ndarray) -> np.ndarray:
            """Per-segment sum of an already-flat full-image value array."""
            return np.bincount(flat_components, weights=values_flat, minlength=n_bins)

        # The three interior/boundary-restricted dispersion reductions reuse
        # the hoisted component selections and the exact counts derived above
        # (the seed path re-extracts mask-selected components and re-counts
        # them for every heatmap).
        rows_grid, cols_grid = self._pixel_grids(height, width)

        columns: List[np.ndarray] = []
        # geometry ------------------------------------------------------------
        safe_bd = np.maximum(sizes_bd, 1.0)
        columns.append(sizes)                       # S
        columns.append(sizes_in)                    # S_in
        columns.append(sizes_bd)                    # S_bd
        columns.append(sizes / safe_bd)             # S_rel
        columns.append(sizes_in / safe_bd)          # S_rel_in
        # dispersion ----------------------------------------------------------
        for key in ("E", "M", "V"):
            heatmap_flat = heatmaps[key].ravel()
            mean_all = _mean(_sum(heatmap_flat), sizes)
            mean_in = _mean(
                np.bincount(
                    components_interior,
                    weights=heatmap_flat[interior_flat],
                    minlength=n_bins,
                ),
                sizes_in,
            )
            mean_bd = _mean(
                np.bincount(
                    components_boundary,
                    weights=heatmap_flat[boundary_flat],
                    minlength=n_bins,
                ),
                sizes_bd,
            )
            columns.append(mean_all)                               # D_mean
            columns.append(mean_in)                                # D_in_mean
            columns.append(mean_bd)                                # D_bd_mean
            columns.append(mean_all * sizes_bd / np.maximum(sizes, 1.0))      # D_rel
            columns.append(mean_in * sizes_bd / np.maximum(sizes_in, 1.0))    # D_rel_in
        # context ---------------------------------------------------------------
        class_per_segment = np.zeros(n_bins, dtype=np.float64)
        is_thing = np.zeros(n_bins, dtype=np.float64)
        thing_ids = set(self.label_space.thing_ids())
        for sid, info in prediction.segments.items():
            class_per_segment[sid] = info.class_id
            is_thing[sid] = 1.0 if info.class_id in thing_ids else 0.0
        columns.append(class_per_segment)
        columns.append(is_thing)
        columns.append(_mean(_sum(rows_grid.ravel()), sizes) / max(1, height - 1))
        columns.append(_mean(_sum(cols_grid.ravel()), sizes) / max(1, width - 1))
        columns.append(_mean(_sum(pmax.ravel()), sizes))            # pmax_mean
        # per-class mean probabilities -----------------------------------------
        # One grouped reduction (codes = component_id * C + class) over the
        # softmax field itself replaces the seed's per-class strided-slice
        # copy + bincount passes; the raveled field is the weight vector with
        # zero copies, and per bin the additions happen in the same pixel
        # order as the seed's per-column bincount.
        np.add(
            (flat_components * n_classes)[:, None],
            np.arange(n_classes, dtype=np.int64)[None, :],
            out=class_codes,
        )
        class_sums = np.bincount(
            class_codes.ravel(),
            weights=np.ascontiguousarray(probs).ravel(),
            minlength=n_bins * n_classes,
        ).reshape(n_bins, n_classes)
        for class_index in range(n_classes):
            columns.append(_mean(class_sums[:, class_index], sizes))

        matrix = np.stack(columns, axis=1)
        # Drop the background bin 0; segments are 1..n.
        return matrix[1:, :]

    def _reference_compute_features(
        self, probs: np.ndarray, prediction: Segmentation
    ) -> np.ndarray:
        """Seed column-at-a-time extraction (one bincount pass per metric).

        Retained verbatim as the parity ground truth of the fused
        :meth:`_compute_features` and as the baseline timed by
        ``benchmarks/bench_extraction_fused.py``; do not use on hot paths.
        """
        components = prediction.components
        n_segments = prediction.n_segments
        n_bins = n_segments + 1
        flat_components = components.ravel()
        height, width = components.shape

        sizes = np.bincount(flat_components, minlength=n_bins).astype(np.float64)
        interior = self._interior_mask(components)
        interior_flat = interior.ravel()
        sizes_in = np.bincount(
            flat_components[interior_flat], minlength=n_bins
        ).astype(np.float64)
        sizes_bd = sizes - sizes_in

        heatmaps = _reference_dispersion_heatmaps(probs)

        def _segment_mean(values: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
            """Mean of *values* per segment (optionally restricted to a mask)."""
            flat_values = values.ravel()
            if mask is None:
                sums = np.bincount(flat_components, weights=flat_values, minlength=n_bins)
                counts = sizes
            else:
                flat_mask = mask.ravel()
                sums = np.bincount(
                    flat_components[flat_mask], weights=flat_values[flat_mask], minlength=n_bins
                )
                counts = np.bincount(flat_components[flat_mask], minlength=n_bins).astype(np.float64)
            with np.errstate(divide="ignore", invalid="ignore"):
                means = np.where(counts > 0, sums / np.maximum(counts, 1.0), 0.0)
            return means

        columns: List[np.ndarray] = []
        # geometry ------------------------------------------------------------
        safe_bd = np.maximum(sizes_bd, 1.0)
        columns.append(sizes)                       # S
        columns.append(sizes_in)                    # S_in
        columns.append(sizes_bd)                    # S_bd
        columns.append(sizes / safe_bd)             # S_rel
        columns.append(sizes_in / safe_bd)          # S_rel_in
        # dispersion ----------------------------------------------------------
        boundary = ~interior
        for key in ("E", "M", "V"):
            heatmap = heatmaps[key]
            mean_all = _segment_mean(heatmap)
            mean_in = _segment_mean(heatmap, interior)
            mean_bd = _segment_mean(heatmap, boundary)
            columns.append(mean_all)                               # D_mean
            columns.append(mean_in)                                # D_in_mean
            columns.append(mean_bd)                                # D_bd_mean
            columns.append(mean_all * sizes_bd / np.maximum(sizes, 1.0))      # D_rel
            columns.append(mean_in * sizes_bd / np.maximum(sizes_in, 1.0))    # D_rel_in
        # context ---------------------------------------------------------------
        class_per_segment = np.zeros(n_bins, dtype=np.float64)
        is_thing = np.zeros(n_bins, dtype=np.float64)
        thing_ids = set(self.label_space.thing_ids())
        for sid, info in prediction.segments.items():
            class_per_segment[sid] = info.class_id
            is_thing[sid] = 1.0 if info.class_id in thing_ids else 0.0
        columns.append(class_per_segment)
        columns.append(is_thing)
        rows_grid, cols_grid = self._pixel_grids(height, width)
        centroid_row = _segment_mean(rows_grid) / max(1, height - 1)
        centroid_col = _segment_mean(cols_grid) / max(1, width - 1)
        columns.append(centroid_row)
        columns.append(centroid_col)
        columns.append(_segment_mean(probs.max(axis=2)))            # pmax_mean
        # per-class mean probabilities -----------------------------------------
        for class_index in range(self.label_space.n_classes):
            columns.append(_segment_mean(probs[:, :, class_index]))

        matrix = np.stack(columns, axis=1)
        # Drop the background bin 0; segments are 1..n.
        return matrix[1:, :]

    def _interior_mask(self, components: np.ndarray) -> np.ndarray:
        """Pixels all of whose 4-neighbours belong to the same segment."""
        height, width = components.shape
        interior = np.ones((height, width), dtype=bool)
        interior[:-1, :] &= components[:-1, :] == components[1:, :]
        interior[1:, :] &= components[1:, :] == components[:-1, :]
        interior[:, :-1] &= components[:, :-1] == components[:, 1:]
        interior[:, 1:] &= components[:, 1:] == components[:, :-1]
        # Image border pixels count as boundary pixels of their segment.
        interior[0, :] = False
        interior[-1, :] = False
        interior[:, 0] = False
        interior[:, -1] = False
        return interior
