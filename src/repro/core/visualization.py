"""Visualisation of label maps and segment-wise IoU (Fig. 1 of the paper).

The paper's Fig. 1 shows four panels: ground truth, predicted segments, the
true IoU of every predicted segment and the IoU predicted by meta regression,
with green indicating high and red indicating low IoU and white marking
regions without ground truth.  We render the same panels as RGB arrays and
provide a dependency-free PPM writer plus an ASCII renderer for quick
terminal inspection.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.core.dataset import MetricsDataset
from repro.core.segments import Segmentation
from repro.segmentation.labels import LabelSpace, cityscapes_label_space
from repro.utils.validation import check_label_map


def labels_to_rgb(
    labels: np.ndarray,
    label_space: Optional[LabelSpace] = None,
    ignore_color: tuple = (255, 255, 255),
) -> np.ndarray:
    """Colourise a label map with the label space's palette (uint8 RGB)."""
    labels = check_label_map(labels)
    label_space = label_space or cityscapes_label_space()
    palette = label_space.color_map()
    rgb = np.zeros((*labels.shape, 3), dtype=np.uint8)
    rgb[labels == -1] = ignore_color
    for class_id, color in palette.items():
        rgb[labels == class_id] = color
    return rgb


def iou_to_rgb(
    iou_per_segment: Dict[int, float],
    segmentation: Segmentation,
    gt_labels: Optional[np.ndarray] = None,
    ignore_id: int = -1,
) -> np.ndarray:
    """Render per-segment IoU values as a green (high) to red (low) image.

    Regions without ground truth (``gt_labels == ignore_id``) are white, as in
    Fig. 1 of the paper.
    """
    height, width = segmentation.components.shape
    rgb = np.zeros((height, width, 3), dtype=np.uint8)
    value_map = np.zeros(segmentation.n_segments + 1, dtype=np.float64)
    for segment_id, value in iou_per_segment.items():
        if not 0 <= segment_id <= segmentation.n_segments:
            raise KeyError(f"segment id {segment_id} outside the segmentation")
        value_map[segment_id] = float(np.clip(value, 0.0, 1.0))
    values = value_map[segmentation.components]
    rgb[..., 0] = np.round(255 * (1.0 - values)).astype(np.uint8)
    rgb[..., 1] = np.round(255 * values).astype(np.uint8)
    rgb[..., 2] = 0
    if gt_labels is not None:
        gt_labels = check_label_map(gt_labels)
        rgb[gt_labels == ignore_id] = (255, 255, 255)
    return rgb


def write_ppm(path: Union[str, Path], rgb: np.ndarray) -> Path:
    """Write an (H, W, 3) uint8 array as a binary PPM (P6) file."""
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError("rgb must have shape (H, W, 3)")
    if rgb.dtype != np.uint8:
        if rgb.max() <= 1.0:
            rgb = (rgb * 255).astype(np.uint8)
        else:
            rgb = np.clip(rgb, 0, 255).astype(np.uint8)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = f"P6\n{rgb.shape[1]} {rgb.shape[0]}\n255\n".encode("ascii")
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(rgb.tobytes())
    return path


def read_ppm(path: Union[str, Path]) -> np.ndarray:
    """Read back a binary PPM (P6) file written by :func:`write_ppm`."""
    with open(path, "rb") as handle:
        magic = handle.readline().strip()
        if magic != b"P6":
            raise ValueError(f"not a binary PPM file: {path}")
        dims = handle.readline().split()
        width, height = int(dims[0]), int(dims[1])
        maxval = int(handle.readline())
        if maxval != 255:
            raise ValueError("only 8-bit PPM files are supported")
        data = handle.read(width * height * 3)
    return np.frombuffer(data, dtype=np.uint8).reshape(height, width, 3)


_ASCII_RAMP = " .:-=+*#%@"


def render_ascii(values: np.ndarray, width: int = 80) -> str:
    """Render a 2-D float array (e.g. a heatmap) as ASCII art.

    Values are min-max normalised and mapped onto a 10-step character ramp;
    the output is resized to at most *width* characters per row.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError("values must be 2-D")
    if width < 2:
        raise ValueError("width must be >= 2")
    height = max(2, int(values.shape[0] * width / values.shape[1] / 2))
    row_idx = np.linspace(0, values.shape[0] - 1, height).astype(int)
    col_idx = np.linspace(0, values.shape[1] - 1, width).astype(int)
    small = values[np.ix_(row_idx, col_idx)]
    low, high = float(small.min()), float(small.max())
    if high > low:
        normalised = (small - low) / (high - low)
    else:
        normalised = np.zeros_like(small)
    indices = np.clip((normalised * (len(_ASCII_RAMP) - 1)).astype(int), 0, len(_ASCII_RAMP) - 1)
    return "\n".join("".join(_ASCII_RAMP[i] for i in row) for row in indices)


def fig1_panels(
    gt_labels: np.ndarray,
    prediction: Segmentation,
    true_iou: Dict[int, float],
    predicted_iou: Dict[int, float],
    label_space: Optional[LabelSpace] = None,
) -> Dict[str, np.ndarray]:
    """Assemble the four panels of Fig. 1 as RGB arrays.

    Returns a dict with keys ``ground_truth``, ``prediction``, ``true_iou``
    and ``predicted_iou``.
    """
    label_space = label_space or cityscapes_label_space()
    return {
        "ground_truth": labels_to_rgb(gt_labels, label_space),
        "prediction": labels_to_rgb(prediction.labels, label_space),
        "true_iou": iou_to_rgb(true_iou, prediction, gt_labels=gt_labels),
        "predicted_iou": iou_to_rgb(predicted_iou, prediction, gt_labels=gt_labels),
    }


def dataset_iou_maps(
    dataset: MetricsDataset,
    prediction: Segmentation,
    predicted_iou: np.ndarray,
) -> Dict[str, Dict[int, float]]:
    """Helper building the {segment id → IoU} dicts for :func:`fig1_panels`.

    ``dataset`` must contain exactly the segments of ``prediction`` (i.e. be
    the per-image dataset extracted from it) and ``predicted_iou`` must be
    aligned with the dataset rows.
    """
    if len(dataset) != prediction.n_segments:
        raise ValueError("dataset and segmentation disagree on the number of segments")
    predicted_iou = np.asarray(predicted_iou, dtype=np.float64).ravel()
    if predicted_iou.shape[0] != len(dataset):
        raise ValueError("predicted_iou must be aligned with the dataset rows")
    true_map = {int(sid): float(v) for sid, v in zip(dataset.segment_ids, dataset.target_iou())}
    pred_map = {int(sid): float(v) for sid, v in zip(dataset.segment_ids, predicted_iou)}
    return {"true": true_map, "predicted": pred_map}
