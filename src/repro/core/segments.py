"""Segment extraction and segment-wise IoU.

The paper's failure-mode definitions operate on *segments*: connected
components of the predicted class masks (set Ķ_x) and of the ground-truth
masks (set K_x).  For a predicted segment k of class c, the segment-wise IoU
is computed against K' = the union of all ground-truth components of class c
that intersect k (eq. (2) of the paper):

    IoU(k) = |k ∩ K'| / |k ∪ K'|.

A predicted segment with IoU = 0 is a **false positive**; a ground-truth
segment with zero intersection with predicted components of its class is a
**false negative** ("completely overlooked").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.utils.connected_components import connected_components, component_slices
from repro.utils.validation import check_label_map, check_same_shape


@dataclass(frozen=True)
class SegmentInfo:
    """Bookkeeping for one segment (connected component of one class mask)."""

    segment_id: int
    class_id: int
    size: int
    bounding_box: Tuple[int, int, int, int]
    """(top, left, bottom, right), bottom/right exclusive."""
    centroid: Tuple[float, float]


@dataclass
class Segmentation:
    """A label map decomposed into segments.

    Attributes
    ----------
    labels:
        The (H, W) label map the decomposition came from.
    components:
        (H, W) ``int64`` array of segment ids (0 = ignore / background).
    segments:
        Per-segment information indexed by segment id.
    connectivity:
        Neighbourhood used for the decomposition (4 or 8).
    """

    labels: np.ndarray
    components: np.ndarray
    segments: Dict[int, SegmentInfo] = field(default_factory=dict)
    connectivity: int = 8

    @property
    def n_segments(self) -> int:
        """Number of segments in the decomposition."""
        return len(self.segments)

    def segment_ids(self) -> List[int]:
        """All segment ids in ascending order."""
        return sorted(self.segments)

    def mask(self, segment_id: int) -> np.ndarray:
        """Boolean mask of one segment."""
        if segment_id not in self.segments:
            raise KeyError(f"unknown segment id {segment_id}")
        return self.components == segment_id

    def class_of(self, segment_id: int) -> int:
        """Class id of one segment."""
        if segment_id not in self.segments:
            raise KeyError(f"unknown segment id {segment_id}")
        return self.segments[segment_id].class_id

    def segments_of_class(self, class_id: int) -> List[int]:
        """Ids of all segments of the given class."""
        return [sid for sid, info in self.segments.items() if info.class_id == class_id]


def extract_segments(labels: np.ndarray, connectivity: int = 8, ignore_id: int = -1) -> Segmentation:
    """Decompose a label map into connected components per class.

    All classes are decomposed at once: two neighbouring pixels belong to the
    same segment iff they carry the same class label.
    """
    labels = check_label_map(labels)
    components, n_components = connected_components(
        labels, connectivity=connectivity, background=ignore_id
    )
    segments: Dict[int, SegmentInfo] = {}
    boxes = component_slices(components)
    sizes = np.bincount(components.ravel(), minlength=n_components + 1)
    for segment_id in range(1, n_components + 1):
        rows_slice, cols_slice = boxes[segment_id]
        local = components[rows_slice, cols_slice] == segment_id
        local_rows, local_cols = np.nonzero(local)
        centroid = (
            float(local_rows.mean() + rows_slice.start),
            float(local_cols.mean() + cols_slice.start),
        )
        sample_row = local_rows[0] + rows_slice.start
        sample_col = local_cols[0] + cols_slice.start
        segments[segment_id] = SegmentInfo(
            segment_id=segment_id,
            class_id=int(labels[sample_row, sample_col]),
            size=int(sizes[segment_id]),
            bounding_box=(rows_slice.start, cols_slice.start, rows_slice.stop, cols_slice.stop),
            centroid=centroid,
        )
    return Segmentation(labels=labels, components=components, segments=segments, connectivity=connectivity)


def segment_iou(
    prediction: Segmentation,
    ground_truth: Segmentation,
    segment_id: int,
    ignore_id: int = -1,
) -> float:
    """Segment-wise IoU of one predicted segment against the ground truth.

    Following eq. (2) of the paper, the ground-truth reference K' is the union
    of all ground-truth components that intersect the predicted segment *and*
    carry the predicted segment's class.  Pixels without ground truth
    (``ignore_id``) are excluded from both intersection and union.
    """
    ious = segment_ious(prediction, ground_truth, ignore_id=ignore_id, segment_ids=[segment_id])
    return ious[segment_id]


def segment_ious(
    prediction: Segmentation,
    ground_truth: Segmentation,
    ignore_id: int = -1,
    segment_ids: Optional[List[int]] = None,
) -> Dict[int, float]:
    """Segment-wise IoU for all (or selected) predicted segments.

    Returns a dict mapping predicted segment id → IoU(k) in [0, 1].
    """
    check_same_shape(prediction.labels, ground_truth.labels, "prediction", "ground_truth")
    gt_labels = ground_truth.labels
    gt_components = ground_truth.components
    valid = gt_labels != ignore_id
    if segment_ids is None:
        segment_ids = prediction.segment_ids()
    result: Dict[int, float] = {}
    for segment_id in segment_ids:
        info = prediction.segments[segment_id]
        top, left, bottom, right = info.bounding_box
        # The reference union K' can extend beyond the predicted segment's
        # bounding box, so identify intersecting GT components first and then
        # work on the union of both extents.
        pred_mask_box = prediction.components[top:bottom, left:right] == segment_id
        gt_in_box = gt_components[top:bottom, left:right]
        intersecting = np.unique(gt_in_box[pred_mask_box])
        intersecting = [
            gid
            for gid in intersecting
            if gid != 0 and ground_truth.segments[int(gid)].class_id == info.class_id
        ]
        if not intersecting:
            result[segment_id] = 0.0
            continue
        reference_mask = np.isin(gt_components, intersecting)
        pred_mask = prediction.components == segment_id
        intersection = np.sum(pred_mask & reference_mask & valid)
        union = np.sum((pred_mask | reference_mask) & valid)
        result[segment_id] = float(intersection / union) if union > 0 else 0.0
    return result


def false_positive_segments(
    prediction: Segmentation, ground_truth: Segmentation, ignore_id: int = -1
) -> List[int]:
    """Ids of predicted segments with zero intersection with same-class ground truth."""
    ious = segment_ious(prediction, ground_truth, ignore_id=ignore_id)
    return sorted(sid for sid, value in ious.items() if value == 0.0)


def false_negative_segments(
    prediction: Segmentation, ground_truth: Segmentation, ignore_id: int = -1
) -> List[int]:
    """Ids of ground-truth segments completely overlooked by the prediction.

    A ground-truth segment of class c is a false negative iff no pixel of it
    is predicted as class c (zero intersection with the predicted class mask).
    """
    check_same_shape(prediction.labels, ground_truth.labels, "prediction", "ground_truth")
    pred_labels = prediction.labels
    out: List[int] = []
    for segment_id, info in ground_truth.segments.items():
        if info.class_id == ignore_id:
            continue
        mask = ground_truth.components == segment_id
        if not np.any(pred_labels[mask] == info.class_id):
            out.append(segment_id)
    return sorted(out)


def segment_precision_recall(
    prediction: Segmentation,
    ground_truth: Segmentation,
    class_ids: List[int],
    ignore_id: int = -1,
) -> Tuple[Dict[int, float], Dict[int, float]]:
    """Segment-wise precision and recall restricted to the given classes.

    Used by the decision-rule experiments of Section IV (Fig. 5).  The
    matching is performed at the level of the given class *set* (a category
    such as "human" = {person, rider}), as in the paper:

    * precision of a *predicted* segment k whose class is in the set is the
      fraction of its pixels whose ground truth also lies in the set;
    * recall of a *ground-truth* segment k' whose class is in the set is the
      fraction of its pixels predicted as any class of the set.

    Returns
    -------
    precision:
        Dict predicted-segment-id → precision, for predicted segments whose
        class is in *class_ids*.
    recall:
        Dict ground-truth-segment-id → recall, for ground-truth segments whose
        class is in *class_ids*.
    """
    check_same_shape(prediction.labels, ground_truth.labels, "prediction", "ground_truth")
    class_set = set(int(c) for c in class_ids)
    class_list = sorted(class_set)
    valid = ground_truth.labels != ignore_id
    precision: Dict[int, float] = {}
    for segment_id, info in prediction.segments.items():
        if info.class_id not in class_set:
            continue
        mask = (prediction.components == segment_id) & valid
        denom = int(mask.sum())
        if denom == 0:
            continue
        hits = int(np.sum(np.isin(ground_truth.labels[mask], class_list)))
        precision[segment_id] = hits / denom
    recall: Dict[int, float] = {}
    for segment_id, info in ground_truth.segments.items():
        if info.class_id not in class_set:
            continue
        mask = ground_truth.components == segment_id
        denom = int(mask.sum())
        if denom == 0:
            continue
        hits = int(np.sum(np.isin(prediction.labels[mask], class_list)))
        recall[segment_id] = hits / denom
    return precision, recall
