"""Segment extraction and segment-wise IoU.

The paper's failure-mode definitions operate on *segments*: connected
components of the predicted class masks (set Ķ_x) and of the ground-truth
masks (set K_x).  For a predicted segment k of class c, the segment-wise IoU
is computed against K' = the union of all ground-truth components of class c
that intersect k (eq. (2) of the paper):

    IoU(k) = |k ∩ K'| / |k ∪ K'|.

A predicted segment with IoU = 0 is a **false positive**; a ground-truth
segment with zero intersection with predicted components of its class is a
**false negative** ("completely overlooked").

Contingency-table matching
--------------------------

All matching routines are vectorised through a *sparse contingency table*
(:func:`repro.utils.connected_components.pair_contingency`): one
``np.bincount`` pass over the paired ``(pred_component, gt_component)`` ids
yields the intersection size of **every** predicted/ground-truth component
pair at once.  From that table the per-segment quantities fall out without
ever re-scanning the image:

* ``|k ∩ K'|`` is the sum of the table entries of k against the intersecting
  same-class ground-truth components (eq. (2)'s union K');
* ``|k ∪ K'|`` is ``|k ∩ valid| + |K'| - |k ∩ K'|`` where ``valid`` masks the
  annotated (non-ignore) pixels, so no union mask is ever materialised;
* false negatives and category-level precision/recall use a second table of
  ``(gt_component, predicted_label)`` pairs, again one pass.

The previous per-segment implementations — O(n_segments × H×W) full-image
scans — are retained verbatim as ``_reference_segment_ious``,
``_reference_false_negative_segments``, ``_reference_false_positive_segments``
and ``_reference_segment_precision_recall``; the parity-fuzz suite
(``tests/test_segments_parity_fuzz.py``, run with ``pytest -m fuzz``) asserts
the vectorised results are bitwise-equal to them on hundreds of randomized
label maps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.utils.connected_components import (
    component_slices,
    connected_components,
    pair_contingency,
)
from repro.utils.validation import check_label_map, check_same_shape

#: Sentinel class id that never equals a real class (used in lookup tables for
#: component ids that carry no segment, e.g. the background id 0).
_NO_CLASS = np.iinfo(np.int64).min


@dataclass(frozen=True)
class SegmentInfo:
    """Bookkeeping for one segment (connected component of one class mask)."""

    segment_id: int
    class_id: int
    size: int
    bounding_box: Tuple[int, int, int, int]
    """(top, left, bottom, right), bottom/right exclusive."""
    centroid: Tuple[float, float]


@dataclass
class Segmentation:
    """A label map decomposed into segments.

    Attributes
    ----------
    labels:
        The (H, W) label map the decomposition came from.
    components:
        (H, W) ``int64`` array of segment ids (0 = ignore / background).
    segments:
        Per-segment information indexed by segment id.
    connectivity:
        Neighbourhood used for the decomposition (4 or 8).
    """

    labels: np.ndarray
    components: np.ndarray
    segments: Dict[int, SegmentInfo] = field(default_factory=dict)
    connectivity: int = 8

    @property
    def n_segments(self) -> int:
        """Number of segments in the decomposition."""
        return len(self.segments)

    def segment_ids(self) -> List[int]:
        """All segment ids in ascending order."""
        return sorted(self.segments)

    def mask(self, segment_id: int) -> np.ndarray:
        """Boolean mask of one segment."""
        if segment_id not in self.segments:
            raise KeyError(f"unknown segment id {segment_id}")
        return self.components == segment_id

    def class_of(self, segment_id: int) -> int:
        """Class id of one segment."""
        if segment_id not in self.segments:
            raise KeyError(f"unknown segment id {segment_id}")
        return self.segments[segment_id].class_id

    def segments_of_class(self, class_id: int) -> List[int]:
        """Ids of all segments of the given class."""
        return [sid for sid, info in self.segments.items() if info.class_id == class_id]

    def max_component_id(self) -> int:
        """Largest component id present (0 when there are no segments)."""
        upper = int(self.components.max()) if self.components.size else 0
        if self.segments:
            upper = max(upper, max(self.segments))
        return upper

    def pixel_groups(self) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
        """Per-segment pixel coordinates ``(rows, cols)`` in scan order.

        One stable argsort of the component image groups the pixels of every
        segment at once, so no caller ever needs a dense per-segment mask or a
        full-image scan per segment (the tracker's shifted-overlap fast path
        builds on this).  The result is cached on the instance; each array
        pair matches ``np.nonzero(components == segment_id)`` exactly.
        """
        cached = getattr(self, "_pixel_groups", None)
        if cached is not None:
            return cached
        groups: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        flat = self.components.ravel()
        if flat.size:
            width = self.components.shape[1]
            # Stable sort keeps equal ids in ascending pixel order, so each
            # run of the sorted index array is already in scan order.
            order = np.argsort(flat, kind="stable")
            sorted_ids = flat[order]
            run_starts = np.nonzero(np.diff(sorted_ids))[0] + 1
            starts = np.concatenate([[0], run_starts])
            stops = np.concatenate([run_starts, [sorted_ids.size]])
            for start, stop in zip(starts, stops):
                segment_id = int(sorted_ids[start])
                if segment_id == 0:
                    continue
                pixel_index = order[start:stop]
                groups[segment_id] = (pixel_index // width, pixel_index % width)
        self._pixel_groups = groups
        return groups

    def class_lookup(self, size: Optional[int] = None) -> np.ndarray:
        """Dense component-id → class-id lookup table.

        Ids without a segment (notably the background id 0) map to a sentinel
        that never compares equal to a real class.
        """
        upper = self.max_component_id() if size is None else size
        table = np.full(upper + 1, _NO_CLASS, dtype=np.int64)
        for sid, info in self.segments.items():
            if 0 <= sid <= upper:
                table[sid] = info.class_id
        return table


def extract_segments(labels: np.ndarray, connectivity: int = 8, ignore_id: int = -1) -> Segmentation:
    """Decompose a label map into connected components per class.

    All classes are decomposed at once: two neighbouring pixels belong to the
    same segment iff they carry the same class label.  Sizes, centroids,
    bounding boxes and class ids of all segments are computed in a handful of
    full-image passes (``np.bincount`` / ``find_objects``) rather than one
    scan per segment.
    """
    labels = check_label_map(labels)
    components, n_components = connected_components(
        labels, connectivity=connectivity, background=ignore_id
    )
    segments: Dict[int, SegmentInfo] = {}
    if n_components > 0:
        n_bins = n_components + 1
        flat = components.ravel()
        width = components.shape[1]
        sizes = np.bincount(flat, minlength=n_bins)
        pixel_index = np.arange(flat.size)
        row_sums = np.bincount(flat, weights=pixel_index // width, minlength=n_bins)
        col_sums = np.bincount(flat, weights=pixel_index % width, minlength=n_bins)
        component_ids, first_index = np.unique(flat, return_index=True)
        class_ids = labels.ravel()[first_index]
        boxes = component_slices(components)
        for component_id, class_id in zip(component_ids, class_ids):
            segment_id = int(component_id)
            if segment_id == 0:
                continue
            rows_slice, cols_slice = boxes[segment_id]
            size = int(sizes[segment_id])
            # Centroid as mean of bounding-box-local coordinates plus the box
            # offset: the coordinate sums are exact integers in float64, so
            # this reproduces the per-segment np.mean()-based result bitwise.
            centroid = (
                float((row_sums[segment_id] - size * rows_slice.start) / size + rows_slice.start),
                float((col_sums[segment_id] - size * cols_slice.start) / size + cols_slice.start),
            )
            segments[segment_id] = SegmentInfo(
                segment_id=segment_id,
                class_id=int(class_id),
                size=size,
                bounding_box=(rows_slice.start, cols_slice.start, rows_slice.stop, cols_slice.stop),
                centroid=centroid,
            )
    return Segmentation(labels=labels, components=components, segments=segments, connectivity=connectivity)


def segment_iou(
    prediction: Segmentation,
    ground_truth: Segmentation,
    segment_id: int,
    ignore_id: int = -1,
) -> float:
    """Segment-wise IoU of one predicted segment against the ground truth.

    Following eq. (2) of the paper, the ground-truth reference K' is the union
    of all ground-truth components that intersect the predicted segment *and*
    carry the predicted segment's class.  Pixels without ground truth
    (``ignore_id``) are excluded from both intersection and union.
    """
    ious = segment_ious(prediction, ground_truth, ignore_id=ignore_id, segment_ids=[segment_id])
    return ious[segment_id]


def segment_ious(
    prediction: Segmentation,
    ground_truth: Segmentation,
    ignore_id: int = -1,
    segment_ids: Optional[List[int]] = None,
) -> Dict[int, float]:
    """Segment-wise IoU for all (or selected) predicted segments.

    Vectorised over segments: two contingency-table passes replace the per
    segment full-image scans (see the module docstring).  Returns a dict
    mapping predicted segment id → IoU(k) in [0, 1]; a segment whose reference
    union K' is empty — including the all-ignore ground-truth case where the
    union of annotated pixels is zero — gets IoU 0.0.
    """
    check_same_shape(prediction.labels, ground_truth.labels, "prediction", "ground_truth")
    if segment_ids is None:
        segment_ids = prediction.segment_ids()
    else:
        for segment_id in segment_ids:
            if segment_id not in prediction.segments:
                raise KeyError(segment_id)
    if not segment_ids:
        return {}

    n_pred = prediction.max_component_id()
    n_gt = ground_truth.max_component_id()
    pred_class = prediction.class_lookup(n_pred)
    gt_class = ground_truth.class_lookup(n_gt)

    valid_flat = (ground_truth.labels != ignore_id).ravel()
    pred_flat = prediction.components.ravel()
    gt_flat = ground_truth.components.ravel()

    # Intersecting (k, k') pairs are determined on the raw component images —
    # exactly like the reference, which collects candidates before masking out
    # unannotated pixels — while intersection/union sizes only count valid
    # (annotated) pixels.
    pair_pred, pair_gt, _pair_counts = pair_contingency(pred_flat, gt_flat)
    vpred_flat = pred_flat[valid_flat]
    vgt_flat = gt_flat[valid_flat]
    vpair_pred, vpair_gt, vpair_counts = pair_contingency(vpred_flat, vgt_flat)

    matched = (
        (pair_pred > 0)
        & (pair_gt > 0)
        & (pred_class[np.clip(pair_pred, 0, n_pred)] == gt_class[np.clip(pair_gt, 0, n_gt)])
    )
    vmatched = (
        (vpair_pred > 0)
        & (vpair_gt > 0)
        & (pred_class[np.clip(vpair_pred, 0, n_pred)] == gt_class[np.clip(vpair_gt, 0, n_gt)])
    )

    n_bins = n_pred + 1
    gt_valid_sizes = np.bincount(vgt_flat[vgt_flat > 0], minlength=n_gt + 1).astype(np.float64)
    pred_valid_sizes = np.bincount(vpred_flat, minlength=n_bins).astype(np.float64)
    intersections = np.bincount(
        vpair_pred[vmatched], weights=vpair_counts[vmatched], minlength=n_bins
    )
    # |K'| per predicted segment: each intersecting GT component appears in
    # exactly one table row per predicted segment, so its valid size is
    # counted once.
    reference_sizes = np.bincount(
        pair_pred[matched], weights=gt_valid_sizes[pair_gt[matched]], minlength=n_bins
    )
    has_reference = np.zeros(n_bins, dtype=bool)
    has_reference[pair_pred[matched]] = True

    unions = pred_valid_sizes + reference_sizes - intersections
    with np.errstate(divide="ignore", invalid="ignore"):
        ious = np.where(
            has_reference & (unions > 0), intersections / np.maximum(unions, 1.0), 0.0
        )
    return {segment_id: float(ious[segment_id]) for segment_id in segment_ids}


def false_positive_segments(
    prediction: Segmentation, ground_truth: Segmentation, ignore_id: int = -1
) -> List[int]:
    """Ids of predicted segments with zero intersection with same-class ground truth."""
    ious = segment_ious(prediction, ground_truth, ignore_id=ignore_id)
    return sorted(sid for sid, value in ious.items() if value == 0.0)


def false_negative_segments(
    prediction: Segmentation, ground_truth: Segmentation, ignore_id: int = -1
) -> List[int]:
    """Ids of ground-truth segments completely overlooked by the prediction.

    A ground-truth segment of class c is a false negative iff no pixel of it
    is predicted as class c (zero intersection with the predicted class mask).
    Computed from one ``(gt_component, predicted_label)`` contingency pass.
    """
    check_same_shape(prediction.labels, ground_truth.labels, "prediction", "ground_truth")
    n_gt = ground_truth.max_component_id()
    gt_class = ground_truth.class_lookup(n_gt)
    pair_gt, pair_label, _counts = pair_contingency(
        ground_truth.components, prediction.labels
    )
    covered = (pair_gt > 0) & (pair_label == gt_class[np.clip(pair_gt, 0, n_gt)])
    detected = np.zeros(n_gt + 1, dtype=bool)
    detected[pair_gt[covered]] = True
    return sorted(
        sid
        for sid, info in ground_truth.segments.items()
        if info.class_id != ignore_id and not detected[sid]
    )


def segment_precision_recall(
    prediction: Segmentation,
    ground_truth: Segmentation,
    class_ids: List[int],
    ignore_id: int = -1,
) -> Tuple[Dict[int, float], Dict[int, float]]:
    """Segment-wise precision and recall restricted to the given classes.

    Used by the decision-rule experiments of Section IV (Fig. 5).  The
    matching is performed at the level of the given class *set* (a category
    such as "human" = {person, rider}), as in the paper:

    * precision of a *predicted* segment k whose class is in the set is the
      fraction of its pixels whose ground truth also lies in the set;
    * recall of a *ground-truth* segment k' whose class is in the set is the
      fraction of its pixels predicted as any class of the set.

    Both directions are computed from one contingency-table pass each
    (predicted components × ground-truth labels and ground-truth components ×
    predicted labels).  A predicted segment every pixel of which is
    unannotated (``ignore_id``) has no defined precision and is **silently
    skipped** — it appears in neither returned dict.

    Returns
    -------
    precision:
        Dict predicted-segment-id → precision, for predicted segments whose
        class is in *class_ids*.
    recall:
        Dict ground-truth-segment-id → recall, for ground-truth segments whose
        class is in *class_ids*.
    """
    check_same_shape(prediction.labels, ground_truth.labels, "prediction", "ground_truth")
    class_set = set(int(c) for c in class_ids)
    class_list = np.array(sorted(class_set), dtype=np.int64)
    valid_flat = (ground_truth.labels != ignore_id).ravel()

    n_pred = prediction.max_component_id()
    pred_flat = prediction.components.ravel()
    vpred_flat = pred_flat[valid_flat]
    vgt_labels_flat = ground_truth.labels.ravel()[valid_flat]
    pair_pred, pair_gt_label, pair_counts = pair_contingency(vpred_flat, vgt_labels_flat)
    pred_denoms = np.bincount(pair_pred, weights=pair_counts, minlength=n_pred + 1)
    in_set = np.isin(pair_gt_label, class_list)
    pred_hits = np.bincount(
        pair_pred[in_set], weights=pair_counts[in_set], minlength=n_pred + 1
    )
    precision: Dict[int, float] = {}
    for segment_id, info in prediction.segments.items():
        if info.class_id not in class_set:
            continue
        denom = int(pred_denoms[segment_id]) if segment_id <= n_pred else 0
        if denom == 0:
            continue
        precision[segment_id] = int(pred_hits[segment_id]) / denom

    n_gt = ground_truth.max_component_id()
    pair_gt, pair_pred_label, pair_counts = pair_contingency(
        ground_truth.components, prediction.labels
    )
    gt_denoms = np.bincount(pair_gt, weights=pair_counts, minlength=n_gt + 1)
    in_set = np.isin(pair_pred_label, class_list)
    gt_hits = np.bincount(
        pair_gt[in_set], weights=pair_counts[in_set], minlength=n_gt + 1
    )
    recall: Dict[int, float] = {}
    for segment_id, info in ground_truth.segments.items():
        if info.class_id not in class_set:
            continue
        denom = int(gt_denoms[segment_id]) if segment_id <= n_gt else 0
        if denom == 0:
            continue
        recall[segment_id] = int(gt_hits[segment_id]) / denom
    return precision, recall


# --------------------------------------------------------------------------- -
# Reference implementations (per-segment full-image scans).
#
# These are the original O(n_segments × H×W) routines the vectorised fast
# paths above replaced.  They are kept as the ground truth of the parity-fuzz
# suite and for the matching benchmark; do not use them on hot paths.


def _reference_segment_ious(
    prediction: Segmentation,
    ground_truth: Segmentation,
    ignore_id: int = -1,
    segment_ids: Optional[List[int]] = None,
) -> Dict[int, float]:
    """Per-segment-loop reference for :func:`segment_ious`."""
    check_same_shape(prediction.labels, ground_truth.labels, "prediction", "ground_truth")
    gt_labels = ground_truth.labels
    gt_components = ground_truth.components
    valid = gt_labels != ignore_id
    if segment_ids is None:
        segment_ids = prediction.segment_ids()
    result: Dict[int, float] = {}
    for segment_id in segment_ids:
        info = prediction.segments[segment_id]
        top, left, bottom, right = info.bounding_box
        # The reference union K' can extend beyond the predicted segment's
        # bounding box, so identify intersecting GT components first and then
        # work on the union of both extents.
        pred_mask_box = prediction.components[top:bottom, left:right] == segment_id
        gt_in_box = gt_components[top:bottom, left:right]
        intersecting = np.unique(gt_in_box[pred_mask_box])
        intersecting = [
            gid
            for gid in intersecting
            if gid != 0 and ground_truth.segments[int(gid)].class_id == info.class_id
        ]
        if not intersecting:
            result[segment_id] = 0.0
            continue
        reference_mask = np.isin(gt_components, intersecting)
        pred_mask = prediction.components == segment_id
        intersection = np.sum(pred_mask & reference_mask & valid)
        union = np.sum((pred_mask | reference_mask) & valid)
        result[segment_id] = float(intersection / union) if union > 0 else 0.0
    return result


def _reference_false_positive_segments(
    prediction: Segmentation, ground_truth: Segmentation, ignore_id: int = -1
) -> List[int]:
    """Per-segment-loop reference for :func:`false_positive_segments`."""
    ious = _reference_segment_ious(prediction, ground_truth, ignore_id=ignore_id)
    return sorted(sid for sid, value in ious.items() if value == 0.0)


def _reference_false_negative_segments(
    prediction: Segmentation, ground_truth: Segmentation, ignore_id: int = -1
) -> List[int]:
    """Per-segment-loop reference for :func:`false_negative_segments`."""
    check_same_shape(prediction.labels, ground_truth.labels, "prediction", "ground_truth")
    pred_labels = prediction.labels
    out: List[int] = []
    for segment_id, info in ground_truth.segments.items():
        if info.class_id == ignore_id:
            continue
        mask = ground_truth.components == segment_id
        if not np.any(pred_labels[mask] == info.class_id):
            out.append(segment_id)
    return sorted(out)


def _reference_segment_precision_recall(
    prediction: Segmentation,
    ground_truth: Segmentation,
    class_ids: List[int],
    ignore_id: int = -1,
) -> Tuple[Dict[int, float], Dict[int, float]]:
    """Per-segment-loop reference for :func:`segment_precision_recall`."""
    check_same_shape(prediction.labels, ground_truth.labels, "prediction", "ground_truth")
    class_set = set(int(c) for c in class_ids)
    class_list = sorted(class_set)
    valid = ground_truth.labels != ignore_id
    precision: Dict[int, float] = {}
    for segment_id, info in prediction.segments.items():
        if info.class_id not in class_set:
            continue
        mask = (prediction.components == segment_id) & valid
        denom = int(mask.sum())
        if denom == 0:
            continue
        hits = int(np.sum(np.isin(ground_truth.labels[mask], class_list)))
        precision[segment_id] = hits / denom
    recall: Dict[int, float] = {}
    for segment_id, info in ground_truth.segments.items():
        if info.class_id not in class_set:
            continue
        mask = ground_truth.components == segment_id
        denom = int(mask.sum())
        if denom == 0:
            continue
        hits = int(np.sum(np.isin(prediction.labels[mask], class_list)))
        recall[segment_id] = hits / denom
    return precision, recall
