"""End-to-end MetaSeg pipeline reproducing the Section II / Table I protocol.

The pipeline wires the substrate and the core pieces together:

1. run the (simulated) segmentation network on every image of a dataset,
2. extract the structured dataset M of segment metrics with IoU targets,
3. repeatedly split M into meta train / meta test (80 %/20 % by default),
4. fit and evaluate the meta classification and meta regression variants of
   Table I (penalised, unpenalised, entropy-only, naive baseline),
5. aggregate means and standard deviations over the runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import META_CLASSIFIERS, META_REGRESSORS
from repro.core.batching import (
    extraction_defaults,
    iter_indexed_chunks,
    map_ordered,
    normalize_max_workers,
)
from repro.core.dataset import MetricsAccumulator, MetricsDataset
from repro.core.meta_classification import MetaClassifier, naive_baseline_accuracy
from repro.core.meta_regression import MetaRegressor
from repro.core.metrics import METRIC_GROUPS, SegmentMetricsExtractor
from repro.evaluation.regression import pearson_correlation
from repro.segmentation.datasets import SegmentationSample
from repro.segmentation.labels import LabelSpace, cityscapes_label_space
from repro.segmentation.network import SimulatedSegmentationNetwork
from repro.utils.arrays import mean_std
from repro.utils.rng import RandomState, as_rng

if TYPE_CHECKING:  # pragma: no cover - import would cycle at runtime
    from repro.api.config import ExtractionConfig


@dataclass
class MetaSegResult:
    """Aggregated Table-I-style result of one MetaSeg evaluation run.

    ``classification`` and ``regression`` map a variant name (e.g.
    ``"penalized"``, ``"entropy_only"``) to a dict of metric name →
    ``(mean, std)`` over the random resampling runs.
    """

    network_name: str
    n_segments: int
    false_positive_fraction: float
    n_runs: int
    classification: Dict[str, Dict[str, Tuple[float, float]]] = field(default_factory=dict)
    regression: Dict[str, Dict[str, Tuple[float, float]]] = field(default_factory=dict)
    naive_accuracy: float = 0.0

    def summary_rows(self) -> List[str]:
        """Human-readable rows mirroring the layout of Table I."""
        rows = [f"network: {self.network_name}  segments: {self.n_segments}  "
                f"FP fraction: {self.false_positive_fraction:.3f}  runs: {self.n_runs}"]
        rows.append("Meta Classification IoU = 0, > 0")
        for variant, metrics in self.classification.items():
            for metric in ("train_accuracy", "test_accuracy", "train_auroc", "test_auroc"):
                mean, std = metrics[metric]
                rows.append(f"  {metric:<16s} {variant:<14s} {100 * mean:6.2f}% (+/-{100 * std:4.2f}%)")
        rows.append(f"  accuracy         naive          {100 * self.naive_accuracy:6.2f}%")
        rows.append("Meta Regression IoU")
        for variant, metrics in self.regression.items():
            for metric in ("train_sigma", "test_sigma", "train_r2", "test_r2"):
                mean, std = metrics[metric]
                if "sigma" in metric:
                    rows.append(f"  {metric:<16s} {variant:<14s} {mean:6.3f} (+/-{std:5.3f})")
                else:
                    rows.append(f"  {metric:<16s} {variant:<14s} {100 * mean:6.2f}% (+/-{100 * std:4.2f}%)")
        return rows


class MetaSegPipeline:
    """Orchestrates network inference, metric extraction and the meta tasks.

    Parameters
    ----------
    network:
        A (simulated) segmentation network exposing ``predict_probabilities``.
    label_space:
        Label space shared by network and metric extractor.
    connectivity:
        Connectivity of the segment decomposition.
    classification_penalty, regression_penalty:
        l2 strengths of the "penalized" variants of Table I.
    extraction:
        Optional :class:`repro.api.config.ExtractionConfig` providing the
        default ``chunk_size``/``max_workers`` for the extraction methods, so
        execution parameters are configured once per experiment instead of
        per call.  Explicit keyword arguments still win.
    """

    def __init__(
        self,
        network: SimulatedSegmentationNetwork,
        label_space: Optional[LabelSpace] = None,
        connectivity: int = 8,
        classification_penalty: float = 1.0,
        regression_penalty: float = 1.0,
        extraction: Optional["ExtractionConfig"] = None,
    ) -> None:
        self.network = network
        self.label_space = label_space or cityscapes_label_space()
        self.extractor = SegmentMetricsExtractor(
            label_space=self.label_space, connectivity=connectivity
        )
        self.classification_penalty = float(classification_penalty)
        self.regression_penalty = float(regression_penalty)
        self._default_chunk_size, self._default_max_workers = extraction_defaults(extraction)

    # ------------------------------------------------------------------ ---
    def extract_dataset(
        self,
        samples: Iterable[SegmentationSample],
        index_offset: int = 0,
    ) -> MetricsDataset:
        """Run inference and metric extraction over an iterable of samples."""
        return self.extract_dataset_batched(samples, index_offset=index_offset)

    def _extract_one(self, indexed_sample: Tuple[int, SegmentationSample]) -> MetricsDataset:
        """Inference + metric extraction for one (index, sample) pair."""
        index, sample = indexed_sample
        probs = self.network.predict_probabilities(sample.labels, index=index)
        return self.extractor.extract(probs, gt_labels=sample.labels, image_id=sample.image_id)

    def _iter_extract_parts(
        self,
        samples: Iterable[SegmentationSample],
        index_offset: int,
        chunk_size: int,
        max_workers: Optional[int],
    ) -> Iterable[List[MetricsDataset]]:
        """Yield the per-image datasets of one chunk of samples at a time.

        Chunks widen beyond ``chunk_size`` when workers are requested (see
        :func:`repro.core.batching.iter_indexed_chunks`), so the parallelism
        is actually achievable — a chunk is the unit fanned out to the pool.
        """
        for indexed in iter_indexed_chunks(samples, chunk_size, max_workers, index_offset):
            yield map_ordered(self._extract_one, indexed, max_workers=max_workers)

    def _resolve_execution(
        self, chunk_size: Optional[int], max_workers: Optional[int]
    ) -> Tuple[int, Optional[int]]:
        """Fill unset execution parameters from the pipeline-level defaults.

        Worker counts follow the library-wide contract of
        :func:`repro.core.batching.normalize_max_workers` (None/0/1 serial,
        negative rejected).
        """
        if chunk_size is None:
            chunk_size = self._default_chunk_size
        return chunk_size, normalize_max_workers(max_workers, self._default_max_workers)

    def iter_extract_batched(
        self,
        samples: Iterable[SegmentationSample],
        index_offset: int = 0,
        chunk_size: Optional[int] = None,
        max_workers: Optional[int] = None,
    ) -> Iterable[MetricsDataset]:
        """Stream metric extraction chunk by chunk.

        Yields one concatenated :class:`MetricsDataset` per chunk of samples
        instead of accumulating per-image datasets in a Python list, so the
        peak memory is bounded by the chunk size regardless of the dataset
        size.  ``max_workers`` > 1 fans the per-sample work of each chunk out
        across a thread pool; chunks then widen to several pool-widths (see
        :func:`repro.core.batching.iter_indexed_chunks`), so the effective
        memory bound is ``max(chunk_size, 4 * max_workers)`` samples.
        Results are order-preserving either way, so the streamed parts are
        bit-identical to a serial run.  Unset parameters fall back to the
        pipeline's extraction config (serial, default chunk size when none
        was given).
        """
        chunk_size, max_workers = self._resolve_execution(chunk_size, max_workers)
        for parts in self._iter_extract_parts(samples, index_offset, chunk_size, max_workers):
            yield MetricsDataset.concatenate(parts)

    def extract_dataset_batched(
        self,
        samples: Iterable[SegmentationSample],
        index_offset: int = 0,
        chunk_size: Optional[int] = None,
        max_workers: Optional[int] = None,
    ) -> MetricsDataset:
        """Batched variant of :meth:`extract_dataset`.

        Chunks the sample stream, optionally fans each chunk out over
        ``max_workers`` threads, and concatenates the per-image parts once at
        the end (no per-chunk intermediate copies).  The result is
        bit-identical to the serial path for every configuration.  Unset
        parameters fall back to the pipeline's extraction config.
        """
        chunk_size, max_workers = self._resolve_execution(chunk_size, max_workers)
        parts: List[MetricsDataset] = []
        for chunk_parts in self._iter_extract_parts(
            samples, index_offset, chunk_size, max_workers
        ):
            parts.extend(chunk_parts)
        if not parts:
            raise ValueError("no samples provided")
        return MetricsDataset.concatenate(parts)

    def extract_dataset_streaming(
        self,
        samples: Iterable[SegmentationSample],
        index_offset: int = 0,
        chunk_size: Optional[int] = None,
        max_workers: Optional[int] = None,
    ) -> MetricsDataset:
        """Never-concatenate variant of :meth:`extract_dataset_batched`.

        Consumes :meth:`iter_extract_batched` and folds every streamed chunk
        into a :class:`repro.core.dataset.MetricsAccumulator` as it arrives,
        so neither the sample list nor the list of per-image parts is ever
        materialised: the peak transient memory is one chunk of samples plus
        the output buffers, instead of O(dataset).  The accumulated rows are
        plain copies, so the result is bitwise identical to the batched and
        serial paths for every configuration.
        """
        accumulator = MetricsAccumulator()
        for chunk in self.iter_extract_batched(
            samples, index_offset=index_offset,
            chunk_size=chunk_size, max_workers=max_workers,
        ):
            accumulator.add(chunk)
        if accumulator.empty:
            raise ValueError("no samples provided")
        return accumulator.result()

    # ------------------------------------------------------------------ ---
    def run_table1_protocol(
        self,
        dataset: MetricsDataset,
        n_runs: int = 10,
        train_fraction: float = 0.8,
        random_state: RandomState = 0,
        classification_methods: Sequence[str] = ("logistic",),
        regression_methods: Sequence[str] = ("linear",),
        feature_subset: Optional[Sequence[str]] = None,
        model_params: Optional[Dict[str, dict]] = None,
        fit_cache=None,
    ) -> MetaSegResult:
        """Evaluate all Table I variants with repeated random splits.

        Parameters
        ----------
        dataset:
            Structured metrics dataset (with IoU targets) of all segments.
        n_runs:
            Number of random train/test resamplings (the paper uses 10).
        train_fraction:
            Fraction of segments used for meta training (the paper uses 0.8).
        classification_methods, regression_methods:
            Model families to evaluate; the default matches Section II
            (logistic / linear models).  Names are resolved through the
            ``meta_classifiers`` / ``meta_regressors`` registries, so custom
            registered factories work here.  A factory is called as
            ``factory(penalty=..., feature_subset=..., random_state=...,
            **model_params[name])`` and must return an object with the
            ``evaluate(train, test)`` protocol of the built-in meta models.
        feature_subset:
            Optional metric-group restriction for the main variants (e.g. a
            named group from the ``metric_groups`` registry); ``None`` uses
            all features, as in Table I.  The entropy-only baseline always
            uses its own single feature.
        model_params:
            Optional per-method extra keyword arguments, e.g.
            ``{"gradient_boosting": {"n_estimators": 20}}``.
        fit_cache:
            Optional :class:`repro.store.FitCache`: previously performed
            meta-model fits are loaded from the store instead of re-fitted.
            Bitwise neutral — every model derives its internal RNG from the
            per-run split seed, never from the shared protocol stream, so
            skipping a fit cannot perturb later runs.  Models without the
            state protocol (custom registry factories) fit in place.
        """
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        if n_runs < 1:
            raise ValueError("n_runs must be >= 1")
        rng = as_rng(random_state)
        subset = list(feature_subset) if feature_subset is not None else None
        model_params = model_params or {}
        # Resolve the model families up front so unknown names fail fast
        # (before any split is consumed from the RNG stream).
        classifier_factories = {
            method: META_CLASSIFIERS.get(method) for method in classification_methods
        }
        regressor_factories = {
            method: META_REGRESSORS.get(method) for method in regression_methods
        }
        classification_runs: Dict[str, List[Dict[str, float]]] = {}
        regression_runs: Dict[str, List[Dict[str, float]]] = {}

        def evaluate(model, train, test, split):
            """Evaluate one variant, loading a cached fit when possible."""
            if fit_cache is not None and fit_cache.supports(model):
                fitted = fit_cache.fit_or_load(model, train, split)
                return fitted.evaluate_fitted(train, test)
            return model.evaluate(train, test)

        for _ in range(n_runs):
            split_seed = int(rng.integers(0, 2**31 - 1))
            split = {
                "protocol": "table1",
                "split_seed": split_seed,
                "train_fraction": train_fraction,
            }
            train, test = dataset.split((train_fraction, 1.0 - train_fraction), split_seed)
            for method, factory in classifier_factories.items():
                params = model_params.get(method, {})
                variants = {
                    f"{method}_penalized": factory(
                        penalty=self.classification_penalty,
                        feature_subset=subset, random_state=split_seed, **params,
                    ),
                    f"{method}_unpenalized": factory(
                        penalty=0.0,
                        feature_subset=subset, random_state=split_seed, **params,
                    ),
                }
                for name, classifier in variants.items():
                    result = evaluate(classifier, train, test, split).as_dict()
                    classification_runs.setdefault(name, []).append(result)
            entropy_classifier = MetaClassifier(
                method="logistic", penalty=0.0,
                feature_subset=list(METRIC_GROUPS["entropy_only"]), random_state=split_seed,
            )
            classification_runs.setdefault("entropy_only", []).append(
                evaluate(entropy_classifier, train, test, split).as_dict()
            )
            for method, factory in regressor_factories.items():
                regressor = factory(
                    penalty=self.regression_penalty,
                    feature_subset=subset, random_state=split_seed,
                    **model_params.get(method, {}),
                )
                regression_runs.setdefault(f"{method}_all_metrics", []).append(
                    evaluate(regressor, train, test, split).as_dict()
                )
            entropy_regressor = MetaRegressor(
                method="linear", penalty=0.0,
                feature_subset=list(METRIC_GROUPS["entropy_only"]), random_state=split_seed,
            )
            regression_runs.setdefault("entropy_only", []).append(
                evaluate(entropy_regressor, train, test, split).as_dict()
            )

        result = MetaSegResult(
            network_name=self.network.profile.name,
            n_segments=len(dataset),
            false_positive_fraction=dataset.false_positive_fraction(),
            n_runs=n_runs,
            naive_accuracy=naive_baseline_accuracy(dataset),
        )
        for name, runs in classification_runs.items():
            result.classification[name] = {
                key: mean_std([run[key] for run in runs]) for key in runs[0]
            }
        for name, runs in regression_runs.items():
            result.regression[name] = {
                key: mean_std([run[key] for run in runs]) for key in runs[0]
            }
        return result

    # ------------------------------------------------------------------ ---
    def metric_iou_correlations(self, dataset: MetricsDataset) -> Dict[str, float]:
        """Pearson correlation of every metric with the segment IoU.

        Section II reports |R| values of up to ~0.85 for single constructed
        metrics; this method reproduces that analysis.
        """
        iou = dataset.target_iou()
        return {
            name: pearson_correlation(dataset.feature(name), iou)
            for name in dataset.feature_names
        }
