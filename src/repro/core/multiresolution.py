"""Nested multi-resolution inference (the pyramid extension of MetaSeg).

Section II of the paper summarises the extension of [18]: "a sequence of
nested image crops with common center point are resized to a common size,
then as a whole batch of input data inferred by the neural network, resized to
their original size and then treated as an ensemble of predictions.  Of this
ensemble we can investigate mean and variance of dispersion measures and
introduce further metrics", yielding roughly 3 pp. gains for both meta tasks.

With the simulated network the pyramid is realised as follows: each ensemble
member corresponds to one nested centre crop; the member's prediction is
obtained by running the network on the crop (resized to the full resolution,
which changes the effective object scale exactly like the paper's resizing
does) with an independent noise seed, then mapping the result back into the
full image.  Outside its crop a member reuses the full-resolution prediction,
so every member is a complete probability field and the ensemble is
well-defined everywhere.

Additional per-segment metrics derived from the ensemble: the mean and the
variance (over members) of every dispersion heatmap, averaged over the
segment.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.dataset import MetricsDataset
from repro.core.heatmaps import dispersion_heatmaps
from repro.core.metrics import SegmentMetricsExtractor
from repro.segmentation.labels import LabelSpace, cityscapes_label_space
from repro.segmentation.network import SimulatedSegmentationNetwork
from repro.utils.arrays import renormalise_probabilities, resize_bilinear, resize_nearest
from repro.utils.validation import check_label_map


class MultiResolutionInference:
    """Ensemble of predictions over nested centre crops.

    Parameters
    ----------
    network:
        The segmentation network used for every ensemble member.
    crop_fractions:
        Relative sizes of the nested crops; must start with 1.0 (the full
        image) and be strictly decreasing.
    label_space:
        Label space for metric extraction.
    """

    def __init__(
        self,
        network: SimulatedSegmentationNetwork,
        crop_fractions: Sequence[float] = (1.0, 0.8, 0.6),
        label_space: Optional[LabelSpace] = None,
        connectivity: int = 8,
    ) -> None:
        fractions = tuple(float(f) for f in crop_fractions)
        if not fractions or fractions[0] != 1.0:
            raise ValueError("crop_fractions must start with 1.0 (the full image)")
        if any(not 0.0 < f <= 1.0 for f in fractions):
            raise ValueError("crop fractions must lie in (0, 1]")
        if any(b >= a for a, b in zip(fractions, fractions[1:])):
            raise ValueError("crop fractions must be strictly decreasing")
        self.network = network
        self.crop_fractions = fractions
        self.label_space = label_space or cityscapes_label_space()
        self.extractor = SegmentMetricsExtractor(
            label_space=self.label_space, connectivity=connectivity
        )

    # ------------------------------------------------------------------ ---
    def predict_ensemble(self, gt_labels: np.ndarray, index: int = 0) -> List[np.ndarray]:
        """Return one (H, W, C) probability field per pyramid level."""
        gt = check_label_map(gt_labels)
        height, width = gt.shape
        members: List[np.ndarray] = []
        full_probs = self.network.predict_probabilities(gt, index=index)
        members.append(full_probs)
        for level, fraction in enumerate(self.crop_fractions[1:], start=1):
            crop_height = max(8, int(round(fraction * height)))
            crop_width = max(8, int(round(fraction * width)))
            top = (height - crop_height) // 2
            left = (width - crop_width) // 2
            crop = gt[top : top + crop_height, left : left + crop_width]
            # Resize the crop to full resolution (changing the effective scale),
            # infer with an independent noise seed, and map back to crop size.
            upscaled = resize_nearest(crop, height, width)
            member_probs = self.network.predict_probabilities(
                upscaled, index=index * 1000 + level
            )
            crop_probs = resize_bilinear(member_probs, crop_height, crop_width)
            crop_probs = renormalise_probabilities(crop_probs)
            canvas = full_probs.copy()
            canvas[top : top + crop_height, left : left + crop_width] = crop_probs
            members.append(canvas)
        return members

    def ensemble_probabilities(self, members: Sequence[np.ndarray]) -> np.ndarray:
        """Mean probability field of the ensemble, renormalised per pixel."""
        if not members:
            raise ValueError("members must be non-empty")
        return renormalise_probabilities(np.mean(np.stack(members, axis=0), axis=0))

    # ------------------------------------------------------------------ ---
    def extract(
        self,
        gt_labels: np.ndarray,
        index: int = 0,
        image_id: str = "image",
    ) -> MetricsDataset:
        """Extract the extended metrics dataset for one image.

        The baseline metric set is computed from the ensemble-mean probability
        field; the ensemble-specific columns (mean and variance over members
        of each dispersion heatmap, averaged per segment) are appended.
        """
        members = self.predict_ensemble(gt_labels, index=index)
        mean_probs = self.ensemble_probabilities(members)
        base = self.extractor.extract_full(mean_probs, gt_labels=gt_labels, image_id=image_id)
        dataset = base.dataset
        components = base.prediction.components
        n_bins = base.prediction.n_segments + 1
        flat = components.ravel()
        sizes = np.bincount(flat, minlength=n_bins).astype(np.float64)
        sizes = np.maximum(sizes, 1.0)

        member_maps = [dispersion_heatmaps(member) for member in members]
        extra_columns: List[np.ndarray] = []
        extra_names: List[str] = []
        for key in ("E", "M", "V"):
            stack = np.stack([maps[key] for maps in member_maps], axis=0)
            ensemble_mean = stack.mean(axis=0)
            ensemble_var = stack.var(axis=0)
            mean_per_segment = np.bincount(flat, weights=ensemble_mean.ravel(), minlength=n_bins) / sizes
            var_per_segment = np.bincount(flat, weights=ensemble_var.ravel(), minlength=n_bins) / sizes
            extra_columns.append(mean_per_segment[1:])
            extra_columns.append(var_per_segment[1:])
            extra_names.append(f"{key}_ens_mean")
            extra_names.append(f"{key}_ens_var")

        features = np.hstack([dataset.features, np.stack(extra_columns, axis=1)])
        return MetricsDataset(
            features=features,
            feature_names=list(dataset.feature_names) + extra_names,
            segment_ids=dataset.segment_ids,
            class_ids=dataset.class_ids,
            image_ids=dataset.image_ids,
            iou=dataset.iou,
        )

    def extract_many(self, samples, index_offset: int = 0) -> MetricsDataset:
        """Extract and concatenate extended metrics for an iterable of samples."""
        parts = [
            self.extract(sample.labels, index=index_offset + position, image_id=sample.image_id)
            for position, sample in enumerate(samples)
        ]
        if not parts:
            raise ValueError("no samples provided")
        return MetricsDataset.concatenate(parts)
