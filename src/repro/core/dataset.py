"""The structured dataset M of segment-wise metrics.

Eq. (3) of the paper defines M = {µ(k) : x ∈ X, k ∈ Ķ_x} — the collection of
metric vectors over all predicted segments of all images, together with the
segment-wise IoU targets.  :class:`MetricsDataset` is that collection: a
feature matrix plus aligned bookkeeping arrays (image id, segment id,
predicted class, IoU target), with helpers for concatenation, feature
selection, splitting and target derivation (IoU = 0 vs. > 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import RandomState, split_indices


@dataclass
class MetricsDataset:
    """Structured dataset of segment-wise metrics.

    Attributes
    ----------
    features:
        (n_segments, n_features) float matrix of metrics µ(k).
    feature_names:
        Column names, length ``n_features``.
    segment_ids:
        Per-row segment id within its image.
    class_ids:
        Per-row predicted class id.
    image_ids:
        Per-row image identifier (object array of str).
    iou:
        Per-row segment-wise IoU target in [0, 1]; ``None`` when no ground
        truth was available at extraction time.
    """

    features: np.ndarray
    feature_names: List[str]
    segment_ids: np.ndarray
    class_ids: np.ndarray
    image_ids: np.ndarray
    iou: Optional[np.ndarray] = None
    extra: dict = field(default_factory=dict)
    """Free-form per-dataset metadata (e.g. the training composition tag)."""

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float64)
        if self.features.ndim != 2:
            raise ValueError("features must be a 2-D matrix")
        n = self.features.shape[0]
        if len(self.feature_names) != self.features.shape[1]:
            raise ValueError(
                f"{len(self.feature_names)} feature names for "
                f"{self.features.shape[1]} feature columns"
            )
        self.segment_ids = np.asarray(self.segment_ids, dtype=np.int64).ravel()
        self.class_ids = np.asarray(self.class_ids, dtype=np.int64).ravel()
        self.image_ids = np.asarray(self.image_ids, dtype=object).ravel()
        for name, arr in (
            ("segment_ids", self.segment_ids),
            ("class_ids", self.class_ids),
            ("image_ids", self.image_ids),
        ):
            if arr.shape[0] != n:
                raise ValueError(f"{name} must have length {n}, got {arr.shape[0]}")
        if self.iou is not None:
            self.iou = np.asarray(self.iou, dtype=np.float64).ravel()
            if self.iou.shape[0] != n:
                raise ValueError(f"iou must have length {n}, got {self.iou.shape[0]}")
            if np.any((self.iou < -1e-9) | (self.iou > 1 + 1e-9)):
                raise ValueError("iou targets must lie in [0, 1]")
            self.iou = np.clip(self.iou, 0.0, 1.0)

    # ------------------------------------------------------------------ ---
    def __len__(self) -> int:
        return int(self.features.shape[0])

    @property
    def n_features(self) -> int:
        """Number of feature columns."""
        return int(self.features.shape[1])

    @property
    def has_targets(self) -> bool:
        """Whether IoU targets are available."""
        return self.iou is not None

    def target_iou(self) -> np.ndarray:
        """Continuous IoU targets (meta regression)."""
        if self.iou is None:
            raise ValueError("this dataset carries no IoU targets")
        return self.iou

    def target_iou0(self) -> np.ndarray:
        """Binary targets: 1 if IoU > 0 (true positive), 0 if IoU = 0 (false positive)."""
        return (self.target_iou() > 0.0).astype(np.int64)

    def false_positive_fraction(self) -> float:
        """Fraction of segments with IoU = 0."""
        return float(np.mean(self.target_iou0() == 0))

    # ------------------------------------------------------------------ ---
    def feature_matrix(self, feature_subset: Optional[Sequence[str]] = None) -> np.ndarray:
        """Return the feature matrix, optionally restricted to named columns."""
        if feature_subset is None:
            return self.features
        indices = [self._feature_index(name) for name in feature_subset]
        return self.features[:, indices]

    def feature(self, name: str) -> np.ndarray:
        """Return one feature column by name."""
        return self.features[:, self._feature_index(name)]

    def _feature_index(self, name: str) -> int:
        try:
            return self.feature_names.index(name)
        except ValueError as exc:
            raise KeyError(f"unknown feature {name!r}") from exc

    def subset(self, indices: np.ndarray) -> "MetricsDataset":
        """Return a new dataset containing only the given rows."""
        indices = np.asarray(indices)
        return MetricsDataset(
            features=self.features[indices],
            feature_names=list(self.feature_names),
            segment_ids=self.segment_ids[indices],
            class_ids=self.class_ids[indices],
            image_ids=self.image_ids[indices],
            iou=None if self.iou is None else self.iou[indices],
            extra=dict(self.extra),
        )

    def split(
        self, fractions: Sequence[float] = (0.8, 0.2), random_state: RandomState = None
    ) -> Tuple["MetricsDataset", ...]:
        """Randomly split the dataset row-wise into parts of the given fractions.

        The paper's Section II protocol uses an 80 %/20 % meta train/test
        split of the predicted segments; Section III uses 70 %/10 %/20 %.
        """
        groups = split_indices(len(self), fractions, random_state)
        return tuple(self.subset(group) for group in groups)

    @staticmethod
    def concatenate(datasets: Sequence["MetricsDataset"]) -> "MetricsDataset":
        """Concatenate several datasets with identical feature columns."""
        datasets = list(datasets)
        if not datasets:
            raise ValueError("need at least one dataset to concatenate")
        names = datasets[0].feature_names
        for ds in datasets[1:]:
            if ds.feature_names != names:
                raise ValueError("datasets have differing feature columns")
        have_targets = [ds.has_targets for ds in datasets]
        if any(have_targets) and not all(have_targets):
            raise ValueError("cannot concatenate datasets with and without IoU targets")
        return MetricsDataset(
            features=np.vstack([ds.features for ds in datasets]),
            feature_names=list(names),
            segment_ids=np.concatenate([ds.segment_ids for ds in datasets]),
            class_ids=np.concatenate([ds.class_ids for ds in datasets]),
            image_ids=np.concatenate([ds.image_ids for ds in datasets]),
            iou=np.concatenate([ds.target_iou() for ds in datasets]) if all(have_targets) else None,
            extra=dict(datasets[0].extra),
        )

    def with_iou(self, iou: np.ndarray) -> "MetricsDataset":
        """Return a copy of the dataset with (pseudo) IoU targets attached.

        Used by the pseudo-ground-truth compositions of Section III, where IoU
        targets for unlabelled frames are derived from a reference network.
        """
        return MetricsDataset(
            features=self.features,
            feature_names=list(self.feature_names),
            segment_ids=self.segment_ids,
            class_ids=self.class_ids,
            image_ids=self.image_ids,
            iou=np.asarray(iou, dtype=np.float64),
            extra=dict(self.extra),
        )

    def per_image(self) -> List["MetricsDataset"]:
        """Split the dataset back into one dataset per distinct image id."""
        out: List[MetricsDataset] = []
        seen: List[str] = []
        for image_id in self.image_ids:
            if image_id not in seen:
                seen.append(image_id)
        for image_id in seen:
            mask = np.array([iid == image_id for iid in self.image_ids])
            out.append(self.subset(np.nonzero(mask)[0]))
        return out


class MetricsAccumulator:
    """Folds streamed :class:`MetricsDataset` chunks into one dataset.

    The never-concatenate counterpart of :meth:`MetricsDataset.concatenate`:
    instead of holding every per-image (or per-chunk) part until a final
    ``vstack``, chunks are copied into growing preallocated buffers as they
    arrive, so the peak transient memory of a streamed extraction walk is
    bounded by one chunk plus the (amortised, at most 2x) output buffers —
    never by the full list of parts.  Row values are plain copies, so the
    accumulated dataset is bitwise identical to a one-shot concatenation of
    the same chunks.

    Usage::

        acc = MetricsAccumulator()
        for chunk in pipeline.iter_extract_batched(samples):
            acc.add(chunk)
        dataset = acc.result()
    """

    def __init__(self) -> None:
        self._n = 0
        self._capacity = 0
        self._features: Optional[np.ndarray] = None
        self._segment_ids: Optional[np.ndarray] = None
        self._class_ids: Optional[np.ndarray] = None
        self._image_ids: Optional[np.ndarray] = None
        self._iou: Optional[np.ndarray] = None
        self._feature_names: Optional[List[str]] = None
        self._extra: Optional[dict] = None
        self._has_targets: Optional[bool] = None

    def __len__(self) -> int:
        return self._n

    @property
    def empty(self) -> bool:
        """True while no chunk has been folded in yet."""
        return self._feature_names is None

    def _grow(self, needed: int, n_features: int) -> None:
        """Ensure capacity for *needed* more rows (geometric growth)."""
        required = self._n + needed
        if required <= self._capacity:
            return
        new_capacity = max(required, 2 * self._capacity, 64)
        def _resize(buffer: Optional[np.ndarray], shape, dtype) -> np.ndarray:
            grown = np.empty(shape, dtype=dtype)
            if buffer is not None and self._n:
                grown[: self._n] = buffer[: self._n]
            return grown
        self._features = _resize(
            self._features, (new_capacity, n_features), np.float64
        )
        self._segment_ids = _resize(self._segment_ids, (new_capacity,), np.int64)
        self._class_ids = _resize(self._class_ids, (new_capacity,), np.int64)
        self._image_ids = _resize(self._image_ids, (new_capacity,), object)
        if self._has_targets:
            self._iou = _resize(self._iou, (new_capacity,), np.float64)
        self._capacity = new_capacity

    def add(self, chunk: MetricsDataset) -> None:
        """Fold one streamed chunk into the accumulator."""
        if self._feature_names is None:
            self._feature_names = list(chunk.feature_names)
            self._extra = dict(chunk.extra)
            self._has_targets = chunk.has_targets
        elif chunk.feature_names != self._feature_names:
            raise ValueError("chunks have differing feature columns")
        elif chunk.has_targets != self._has_targets:
            raise ValueError("cannot accumulate chunks with and without IoU targets")
        n_new = len(chunk)
        if not n_new:
            return
        self._grow(n_new, chunk.n_features)
        stop = self._n + n_new
        self._features[self._n: stop] = chunk.features
        self._segment_ids[self._n: stop] = chunk.segment_ids
        self._class_ids[self._n: stop] = chunk.class_ids
        self._image_ids[self._n: stop] = chunk.image_ids
        if self._has_targets:
            self._iou[self._n: stop] = chunk.target_iou()
        self._n = stop

    def result(self) -> MetricsDataset:
        """The accumulated dataset (views of the buffers, trimmed to size)."""
        if self._feature_names is None:
            raise ValueError("no chunks accumulated")
        if self._features is None:  # only empty chunks arrived
            self._grow(1, len(self._feature_names))
        return MetricsDataset(
            features=self._features[: self._n],
            feature_names=list(self._feature_names),
            segment_ids=self._segment_ids[: self._n],
            class_ids=self._class_ids[: self._n],
            image_ids=self._image_ids[: self._n],
            iou=self._iou[: self._n] if self._has_targets else None,
            extra=dict(self._extra),
        )
