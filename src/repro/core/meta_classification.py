"""Meta classification: detecting false-positive segments (IoU = 0 vs. > 0).

Given the structured dataset M of segment metrics, meta classification is the
binary task of predicting, without ground truth at inference time, whether a
predicted segment intersects the ground truth (IoU > 0) or is a false
positive (IoU = 0).  Section II of the paper solves the task with (penalised
and unpenalised) logistic regression; Section III additionally uses gradient
boosting and shallow neural networks.  Two baselines are reported in Table I:

* *entropy only* — the same model fitted on the single feature "mean entropy
  over the segment";
* *naive random guessing* — assigning a random score to every segment, whose
  best achievable accuracy is the majority-class fraction and whose AUROC is
  0.5 in expectation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.api.registry import META_CLASSIFIERS
from repro.core.dataset import MetricsDataset
from repro.core.metrics import METRIC_GROUPS
from repro.evaluation.classification import accuracy, auroc
from repro.models.gradient_boosting import GradientBoostingClassifier
from repro.models.logistic import LogisticRegression
from repro.models.neural_network import MLPClassifier
from repro.models.scaler import StandardScaler
from repro.utils.rng import RandomState, as_rng

#: Model families supported for the meta classification task.
CLASSIFIER_METHODS = ("logistic", "gradient_boosting", "neural_network")


def naive_baseline_accuracy(dataset: MetricsDataset) -> float:
    """Best accuracy achievable by random guessing (the majority-class rate).

    Thresholding a random score can at best predict the majority class for
    every segment, so the expected best accuracy equals the larger of the two
    class fractions — this is the "naive baseline" row of Table I.
    """
    targets = dataset.target_iou0()
    positive_rate = float(np.mean(targets))
    return max(positive_rate, 1.0 - positive_rate)


@dataclass
class MetaClassificationResult:
    """Evaluation result of a meta classifier on train and test splits."""

    train_accuracy: float
    test_accuracy: float
    train_auroc: float
    test_auroc: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (used by the benchmark harnesses)."""
        return {
            "train_accuracy": self.train_accuracy,
            "test_accuracy": self.test_accuracy,
            "train_auroc": self.train_auroc,
            "test_auroc": self.test_auroc,
        }


class MetaClassifier:
    """Segment-wise false-positive detector operating on metric datasets.

    Parameters
    ----------
    method:
        One of ``"logistic"``, ``"gradient_boosting"``, ``"neural_network"``.
    penalty:
        l2 penalty strength (used by the logistic and neural-network models;
        the "penalized" / "unpenalized" rows of Table I correspond to
        ``penalty > 0`` / ``penalty = 0``).
    feature_subset:
        Optional list of feature names to restrict the model to; pass
        ``["E_mean"]`` (or ``METRIC_GROUPS["entropy_only"]``) for the entropy
        baseline.
    random_state:
        Seed for the stochastic models (gradient boosting subsampling,
        neural-network initialisation).
    model_params:
        Extra keyword arguments forwarded to the underlying model.
    """

    def __init__(
        self,
        method: str = "logistic",
        penalty: float = 0.0,
        feature_subset: Optional[Sequence[str]] = None,
        random_state: RandomState = 0,
        **model_params,
    ) -> None:
        if method not in CLASSIFIER_METHODS:
            raise ValueError(f"method must be one of {CLASSIFIER_METHODS}, got {method!r}")
        if penalty < 0:
            raise ValueError("penalty must be non-negative")
        self.method = method
        self.penalty = float(penalty)
        self.feature_subset = list(feature_subset) if feature_subset is not None else None
        self.random_state = random_state
        self.model_params = model_params
        self.scaler_: Optional[StandardScaler] = None
        self.model_ = None

    # ------------------------------------------------------------------ ---
    def _build_model(self):
        rng = as_rng(self.random_state)
        seed = int(rng.integers(0, 2**31 - 1))
        if self.method == "logistic":
            params = {"penalty": self.penalty, "max_iter": 300}
            params.update(self.model_params)
            return LogisticRegression(**params)
        if self.method == "gradient_boosting":
            params = {"n_estimators": 60, "max_depth": 3, "learning_rate": 0.1,
                      "min_samples_leaf": 5, "random_state": seed}
            params.update(self.model_params)
            return GradientBoostingClassifier(**params)
        params = {"hidden_layer_sizes": (32,), "l2_penalty": self.penalty,
                  "n_epochs": 150, "learning_rate": 1e-2, "random_state": seed}
        params.update(self.model_params)
        return MLPClassifier(**params)

    def fit(self, dataset: MetricsDataset) -> "MetaClassifier":
        """Fit the meta classifier on a metrics dataset with IoU targets."""
        features = dataset.feature_matrix(self.feature_subset)
        targets = dataset.target_iou0()
        if np.unique(targets).size < 2:
            raise ValueError(
                "meta classification needs both IoU = 0 and IoU > 0 segments in training data"
            )
        self.scaler_ = StandardScaler().fit(features)
        self.model_ = self._build_model()
        self.model_.fit(self.scaler_.transform(features), targets)
        return self

    def predict_proba(self, dataset: MetricsDataset) -> np.ndarray:
        """Probability that each segment is a true positive (IoU > 0)."""
        if self.model_ is None:
            raise RuntimeError("MetaClassifier is not fitted yet")
        features = dataset.feature_matrix(self.feature_subset)
        return self.model_.predict_proba(self.scaler_.transform(features))

    def predict(self, dataset: MetricsDataset, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 decision: 1 = IoU > 0 (keep), 0 = false positive."""
        return (self.predict_proba(dataset) >= threshold).astype(np.int64)

    def evaluate(
        self, train: MetricsDataset, test: MetricsDataset
    ) -> MetaClassificationResult:
        """Fit on *train* and report ACC/AUROC on both splits (Table I protocol)."""
        self.fit(train)
        return self.evaluate_fitted(train, test)

    def evaluate_fitted(
        self, train: MetricsDataset, test: MetricsDataset
    ) -> MetaClassificationResult:
        """Report ACC/AUROC on both splits without re-fitting."""
        train_scores = self.predict_proba(train)
        test_scores = self.predict_proba(test)
        train_targets = train.target_iou0()
        test_targets = test.target_iou0()
        return MetaClassificationResult(
            train_accuracy=accuracy(train_targets, (train_scores >= 0.5).astype(np.int64)),
            test_accuracy=accuracy(test_targets, (test_scores >= 0.5).astype(np.int64)),
            train_auroc=auroc(train_targets, train_scores),
            test_auroc=auroc(test_targets, test_scores),
        )

    # ------------------------------------------------------------------ ---
    def param_state(self) -> dict:
        """Canonical constructor parameters (the identity part of a fit key).

        Raises TypeError for non-integer seeds: an ambiguous seed must never
        silently alias two different fits under one cache key.
        """
        from repro.models.state import serializable_seed

        return {
            "type": type(self).__name__,
            "method": self.method,
            "penalty": self.penalty,
            "feature_subset": self.feature_subset,
            "random_state": serializable_seed(self.random_state),
            "model_params": dict(self.model_params),
        }

    def to_state(self) -> dict:
        """JSON-serialisable fitted state (bitwise-exact round-trip)."""
        if self.model_ is None:
            raise RuntimeError("MetaClassifier is not fitted yet")
        from repro.models.state import model_to_state

        state = self.param_state()
        state["scaler"] = self.scaler_.to_state()
        state["model"] = model_to_state(self.model_)
        return state

    @classmethod
    def from_state(cls, state: dict) -> "MetaClassifier":
        """Rebuild a fitted meta classifier from its :meth:`to_state` form."""
        from repro.models.state import expect_state_type, model_from_state

        expect_state_type(state, cls)
        meta = cls(
            method=state["method"],
            penalty=state["penalty"],
            feature_subset=state["feature_subset"],
            random_state=state["random_state"],
            **state["model_params"],
        )
        meta.scaler_ = StandardScaler.from_state(state["scaler"])
        meta.model_ = model_from_state(state["model"])
        return meta


# Register the supported model families as named factories: a registry entry
# is a MetaClassifier constructor with the method baked in, so configs select
# a variant purely by name.
def _classifier_factory(method: str):
    def factory(**kwargs) -> MetaClassifier:
        return MetaClassifier(method=method, **kwargs)

    factory.__name__ = f"{method}_meta_classifier"
    factory.__doc__ = f"MetaClassifier factory for the {method!r} model family."
    return factory


for _method in CLASSIFIER_METHODS:
    META_CLASSIFIERS.register(_method, _classifier_factory(_method))


def entropy_baseline_classifier(
    penalty: float = 0.0, random_state: RandomState = 0
) -> MetaClassifier:
    """Meta classifier restricted to the mean-entropy feature (Table I baseline)."""
    return MetaClassifier(
        method="logistic",
        penalty=penalty,
        feature_subset=list(METRIC_GROUPS["entropy_only"]),
        random_state=random_state,
    )


def random_baseline_scores(n: int, random_state: RandomState = None) -> np.ndarray:
    """Random scores in [0, 1] for the naive random-guessing baseline."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = as_rng(random_state)
    return rng.uniform(0.0, 1.0, size=n)
