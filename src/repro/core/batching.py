"""Shared batched execution layer for the extraction pipelines.

All three pipelines (`core.pipeline.MetaSegPipeline`,
`timedynamic.pipeline.TimeDynamicPipeline`, `decision.pipeline.
DecisionRuleComparison`) walk a stream of independent work items — images,
video sequences, evaluation samples — through a pure per-item function.  This
module provides the common machinery for doing that in batches:

* :func:`chunked` splits any iterable into fixed-size chunks so results can be
  streamed (and memory bounded) instead of accumulated in one Python list;
* :func:`map_ordered` applies a function to every item, optionally fanning out
  across a ``concurrent.futures`` thread pool, while **always** returning the
  results in input order so batched runs are bit-identical to serial runs.

Thread fan-out is safe for the simulated networks and the metric extractor:
``predict_probabilities`` derives its RNG from ``(master_seed, index)`` per
call and the extractor's scratch caches are written idempotently.  NumPy
releases the GIL inside the heavy array kernels, so threads give real
parallelism without requiring the work items to be picklable.
"""

from __future__ import annotations

import inspect
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, TypeVar

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Default number of work items per streamed chunk.
DEFAULT_CHUNK_SIZE = 8


def extraction_defaults(extraction) -> "tuple[int, Optional[int]]":
    """(chunk_size, max_workers) defaults from an optional ExtractionConfig.

    Shared by the three pipelines' constructors so the fallback semantics
    (library default chunk size, serial execution) live in one place.  The
    config object is duck-typed (``chunk_size``/``max_workers`` attributes)
    to keep this module import-light.
    """
    if extraction is None:
        return DEFAULT_CHUNK_SIZE, None
    chunk_size = (
        DEFAULT_CHUNK_SIZE if extraction.chunk_size is None else int(extraction.chunk_size)
    )
    return chunk_size, normalize_max_workers(extraction.max_workers)


def normalize_max_workers(
    max_workers: Optional[int], default: Optional[int] = None
) -> Optional[int]:
    """The library-wide worker-count contract, in one place.

    ``None`` falls back to *default* (itself normalised); ``None``, 0 and 1
    all mean serial execution; negative values raise :class:`ValueError`.
    All three pipelines route their ``max_workers`` keyword arguments through
    this function, so the contract cannot drift between call sites.
    """
    if max_workers is None:
        if default is None:
            return None
        max_workers = default
    max_workers = int(max_workers)
    if max_workers < 0:
        raise ValueError(
            f"max_workers must be >= 0 (None, 0 and 1 run serially), got {max_workers}"
        )
    return max_workers


def supports_cache_kwarg(accessor: Callable) -> bool:
    """Whether a dataset accessor accepts the ``cache`` keyword argument.

    The built-in substrates' sample accessors do (``cache=False`` powers the
    memory-bounded streaming walks); custom registered substrates may not,
    in which case callers fall back to the default cached accessor — still
    correct, just without the memory bound.  One probe shared by every
    streaming call site so the capability contract cannot drift.
    """
    try:
        return "cache" in inspect.signature(accessor).parameters
    except (TypeError, ValueError):  # builtins / exotic callables
        return False


def chunked(items: Iterable[ItemT], chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[List[ItemT]]:
    """Yield successive lists of at most ``chunk_size`` items.

    Works on arbitrary (lazy) iterables; only one chunk is materialised at a
    time, so a streaming producer is never fully buffered.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    chunk: List[ItemT] = []
    for item in items:
        chunk.append(item)
        if len(chunk) == chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def iter_indexed_chunks(
    items: Iterable[ItemT],
    chunk_size: int,
    max_workers: Optional[int],
    index_offset: int = 0,
) -> Iterator[List["tuple[int, ItemT]"]]:
    """Yield ``(global_index, item)`` pairs, one pool-ready chunk at a time.

    The shared walk of every streamed fan-out path: items are consumed
    lazily (memory stays bounded by one chunk), each item is paired with its
    global index (``index_offset`` + position, which seeds the per-item
    RNG), and chunks widen to several pool-widths so a ThreadPoolExecutor is
    amortised over many items and the per-chunk barrier rarely idles a
    worker.  One implementation keeps the widening/bookkeeping contract from
    drifting between pipelines.
    """
    position = index_offset
    for chunk in chunked(items, max(chunk_size, 4 * (max_workers or 0))):
        indexed = list(zip(range(position, position + len(chunk)), chunk))
        position += len(chunk)
        yield indexed


def map_ordered(
    fn: Callable[[ItemT], ResultT],
    items: Sequence[ItemT],
    max_workers: Optional[int] = None,
) -> List[ResultT]:
    """Apply ``fn`` to every item, preserving input order in the results.

    ``max_workers`` follows the library-wide contract of
    :func:`normalize_max_workers`: ``None``, 0 and 1 run serially
    (deterministic default), larger values fan the items out across a thread
    pool, and negative values raise :class:`ValueError`.  Either way the
    returned list is ordered like ``items``, so downstream reductions (metric
    concatenation, accuracy sums) produce bit-identical results regardless of
    the worker count.
    """
    items = list(items)
    max_workers = normalize_max_workers(max_workers)
    if max_workers is None or max_workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=min(max_workers, len(items))) as pool:
        return list(pool.map(fn, items))
