"""Meta regression: predicting the segment-wise IoU without ground truth.

While meta classification yields a 0/1 decision, meta regression predicts the
IoU value itself as a gradual quality measure ("this can also be viewed as a
quality measure", Section II).  Table I reports the residual standard
deviation σ and R² for linear regression on all metrics and for the
entropy-only baseline; Section III adds gradient boosting and shallow neural
networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.api.registry import META_REGRESSORS
from repro.core.dataset import MetricsDataset
from repro.core.metrics import METRIC_GROUPS
from repro.evaluation.regression import r2_score, residual_std
from repro.models.gradient_boosting import GradientBoostingRegressor
from repro.models.linear import LinearRegression
from repro.models.neural_network import MLPRegressor
from repro.models.scaler import StandardScaler
from repro.utils.rng import RandomState, as_rng

#: Model families supported for the meta regression task.
REGRESSOR_METHODS = ("linear", "gradient_boosting", "neural_network")


@dataclass
class MetaRegressionResult:
    """Evaluation result of a meta regressor on train and test splits."""

    train_sigma: float
    test_sigma: float
    train_r2: float
    test_r2: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (used by the benchmark harnesses)."""
        return {
            "train_sigma": self.train_sigma,
            "test_sigma": self.test_sigma,
            "train_r2": self.train_r2,
            "test_r2": self.test_r2,
        }


class MetaRegressor:
    """Segment-wise IoU estimator operating on metric datasets.

    Parameters
    ----------
    method:
        One of ``"linear"``, ``"gradient_boosting"``, ``"neural_network"``.
    penalty:
        l2 penalty strength (ridge weight for the linear model, weight decay
        for the neural network).
    feature_subset:
        Optional list of feature names (e.g. the entropy-only baseline).
    clip_predictions:
        Whether to clip predicted IoU values to [0, 1].
    random_state:
        Seed for the stochastic models.
    model_params:
        Extra keyword arguments forwarded to the underlying model.
    """

    def __init__(
        self,
        method: str = "linear",
        penalty: float = 0.0,
        feature_subset: Optional[Sequence[str]] = None,
        clip_predictions: bool = True,
        random_state: RandomState = 0,
        **model_params,
    ) -> None:
        if method not in REGRESSOR_METHODS:
            raise ValueError(f"method must be one of {REGRESSOR_METHODS}, got {method!r}")
        if penalty < 0:
            raise ValueError("penalty must be non-negative")
        self.method = method
        self.penalty = float(penalty)
        self.feature_subset = list(feature_subset) if feature_subset is not None else None
        self.clip_predictions = clip_predictions
        self.random_state = random_state
        self.model_params = model_params
        self.scaler_: Optional[StandardScaler] = None
        self.model_ = None

    # ------------------------------------------------------------------ ---
    def _build_model(self):
        rng = as_rng(self.random_state)
        seed = int(rng.integers(0, 2**31 - 1))
        if self.method == "linear":
            params = {"alpha": self.penalty}
            params.update(self.model_params)
            return LinearRegression(**params)
        if self.method == "gradient_boosting":
            params = {"n_estimators": 60, "max_depth": 3, "learning_rate": 0.1,
                      "min_samples_leaf": 5, "random_state": seed}
            params.update(self.model_params)
            return GradientBoostingRegressor(**params)
        params = {"hidden_layer_sizes": (32,), "l2_penalty": self.penalty,
                  "n_epochs": 150, "learning_rate": 1e-2, "random_state": seed}
        params.update(self.model_params)
        return MLPRegressor(**params)

    def fit(self, dataset: MetricsDataset) -> "MetaRegressor":
        """Fit the meta regressor on a metrics dataset with IoU targets."""
        features = dataset.feature_matrix(self.feature_subset)
        targets = dataset.target_iou()
        self.scaler_ = StandardScaler().fit(features)
        self.model_ = self._build_model()
        self.model_.fit(self.scaler_.transform(features), targets)
        return self

    def predict(self, dataset: MetricsDataset) -> np.ndarray:
        """Predicted IoU per segment (clipped to [0, 1] unless disabled)."""
        if self.model_ is None:
            raise RuntimeError("MetaRegressor is not fitted yet")
        features = dataset.feature_matrix(self.feature_subset)
        predictions = self.model_.predict(self.scaler_.transform(features))
        if self.clip_predictions:
            predictions = np.clip(predictions, 0.0, 1.0)
        return predictions

    def evaluate(self, train: MetricsDataset, test: MetricsDataset) -> MetaRegressionResult:
        """Fit on *train* and report σ/R² on both splits (Table I protocol)."""
        self.fit(train)
        return self.evaluate_fitted(train, test)

    def evaluate_fitted(
        self, train: MetricsDataset, test: MetricsDataset
    ) -> MetaRegressionResult:
        """Report σ/R² on both splits without re-fitting."""
        train_pred = self.predict(train)
        test_pred = self.predict(test)
        train_targets = train.target_iou()
        test_targets = test.target_iou()
        return MetaRegressionResult(
            train_sigma=residual_std(train_targets, train_pred),
            test_sigma=residual_std(test_targets, test_pred),
            train_r2=r2_score(train_targets, train_pred),
            test_r2=r2_score(test_targets, test_pred),
        )

    # ------------------------------------------------------------------ ---
    def param_state(self) -> dict:
        """Canonical constructor parameters (the identity part of a fit key).

        Raises TypeError for non-integer seeds: an ambiguous seed must never
        silently alias two different fits under one cache key.
        """
        from repro.models.state import serializable_seed

        return {
            "type": type(self).__name__,
            "method": self.method,
            "penalty": self.penalty,
            "feature_subset": self.feature_subset,
            "clip_predictions": bool(self.clip_predictions),
            "random_state": serializable_seed(self.random_state),
            "model_params": dict(self.model_params),
        }

    def to_state(self) -> dict:
        """JSON-serialisable fitted state (bitwise-exact round-trip)."""
        if self.model_ is None:
            raise RuntimeError("MetaRegressor is not fitted yet")
        from repro.models.state import model_to_state

        state = self.param_state()
        state["scaler"] = self.scaler_.to_state()
        state["model"] = model_to_state(self.model_)
        return state

    @classmethod
    def from_state(cls, state: dict) -> "MetaRegressor":
        """Rebuild a fitted meta regressor from its :meth:`to_state` form."""
        from repro.models.state import expect_state_type, model_from_state

        expect_state_type(state, cls)
        meta = cls(
            method=state["method"],
            penalty=state["penalty"],
            feature_subset=state["feature_subset"],
            clip_predictions=state["clip_predictions"],
            random_state=state["random_state"],
            **state["model_params"],
        )
        meta.scaler_ = StandardScaler.from_state(state["scaler"])
        meta.model_ = model_from_state(state["model"])
        return meta


# Register the supported model families as named factories (see the
# matching block in repro.core.meta_classification).
def _regressor_factory(method: str):
    def factory(**kwargs) -> MetaRegressor:
        return MetaRegressor(method=method, **kwargs)

    factory.__name__ = f"{method}_meta_regressor"
    factory.__doc__ = f"MetaRegressor factory for the {method!r} model family."
    return factory


for _method in REGRESSOR_METHODS:
    META_REGRESSORS.register(_method, _regressor_factory(_method))


def entropy_baseline_regressor(
    penalty: float = 0.0, random_state: RandomState = 0
) -> MetaRegressor:
    """Meta regressor restricted to the mean-entropy feature (Table I baseline)."""
    return MetaRegressor(
        method="linear",
        penalty=penalty,
        feature_subset=list(METRIC_GROUPS["entropy_only"]),
        random_state=random_state,
    )
