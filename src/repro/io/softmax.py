"""Network adapter serving precomputed softmax dumps from disk.

The paper scores the softmax output of *real* segmentation networks; this
adapter replaces the simulated degradation model with per-frame probability
fields dumped by any external network.  Two dump formats are supported under
a dump root:

.. code-block:: text

    <dump_root>/manifest.json                             # metadata (optional)
    <dump_root>/<split>/<city>/<frame>_softmax.npy        # format "npy"
    <dump_root>/<split>.npz                               # format "npz"
                                                          #   (members "<city>/<frame>")

``.npy`` dumps are opened with ``np.memmap`` (via ``np.load(mmap_mode="r")``),
so a 1024×2048×19 float field is *sliced, never fully materialised*: the
extraction pipeline reads pages on demand and its transient buffers stay
O(H×W), a factor ``n_classes`` below the field itself.  ``.npz`` archives
cannot be memmapped; each member is decompressed on access (still one frame
at a time, never the whole dump).

The adapter presents the exact duck-typed network interface the pipelines
consume — ``predict_probabilities(gt_labels, index)``, ``profile.name``,
``label_space``, ``n_classes`` — so it drops into every experiment kind that
walks single frames (``metaseg`` / ``decision``), every execution backend and
streaming mode unchanged.  ``index`` is the position in the validation walk;
frames are ordered by (city, frame id), the same deterministic order the
disk dataset uses, and :meth:`SoftmaxDumpNetwork.check_dataset` cross-checks
the two listings up front so a frame/dump mismatch is a
:class:`~repro.api.config.ConfigError` at resolve time, not a wrong number.

The manifest records the producing network's name (surfacing in report
provenance as if the real network had run), the class count and the dump
format::

    {"format": "npy", "profile": "mobilenetv2", "n_classes": 19, "split": "val"}
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.api.config import ConfigError
from repro.api.registry import NETWORK_PROFILES
from repro.segmentation.labels import LabelSpace, cityscapes_label_space

#: Suffix of per-frame ``.npy`` dump files.
DUMP_SUFFIX = "_softmax.npy"
#: Name of the optional metadata file under the dump root.
MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class SoftmaxDumpProfile:
    """Lightweight stand-in for a ``NetworkProfile`` (name only).

    Pipelines read ``network.profile.name`` for report provenance; for a
    dump-served network that is the name of the network that produced the
    dumps (from the manifest), so a disk-backed report is attributed to the
    real network, not to the adapter.
    """

    name: str = "softmax_dump"


def _load_manifest(root: Path) -> dict:
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.is_file():
        return {}
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, ValueError) as exc:
        raise ConfigError(f"network: unreadable dump manifest {manifest_path}: {exc}") from None
    if not isinstance(manifest, dict):
        raise ConfigError(f"network: dump manifest {manifest_path} must be a JSON object")
    return manifest


class SoftmaxDumpNetwork:
    """Serves per-frame (H, W, C) probability fields from on-disk dumps.

    Parameters
    ----------
    root:
        Dump directory (see the module docstring for the layout).
    label_space:
        Label space the dumps were produced for; its class count must match
        the manifest's ``n_classes`` when present.
    split:
        Which split's dumps to serve (overrides the manifest's ``split``;
        the default is the validation split, which is what every
        single-frame experiment kind walks).
    mmap:
        Serve ``.npy`` dumps through ``np.memmap`` (the default).  Disabling
        it materialises each frame — only useful on filesystems without
        mmap support; the numbers are identical either way.
    """

    def __init__(
        self,
        root: Union[str, Path],
        label_space: Optional[LabelSpace] = None,
        split: Optional[str] = None,
        mmap: bool = True,
    ) -> None:
        self.root = Path(root)
        if not self.root.is_dir():
            raise ConfigError(f"network: softmax dump root {self.root} does not exist")
        self.label_space = label_space or cityscapes_label_space()
        self.mmap = bool(mmap)
        manifest = _load_manifest(self.root)
        self.split = split or str(manifest.get("split", "val"))
        self.profile = SoftmaxDumpProfile(name=str(manifest.get("profile", "softmax_dump")))
        declared = manifest.get("n_classes")
        if declared is not None and int(declared) != self.label_space.n_classes:
            raise ConfigError(
                f"network: dump manifest declares {declared} classes but the "
                f"label space has {self.label_space.n_classes}"
            )
        declared_format = manifest.get("format")
        self._npz_path = self.root / f"{self.split}.npz"
        if declared_format is None:
            declared_format = "npz" if self._npz_path.is_file() else "npy"
        if declared_format not in ("npy", "npz"):
            raise ConfigError(
                f"network: unknown dump format {declared_format!r} (use 'npy' or 'npz')"
            )
        self.format = declared_format
        #: Ordered (frame id, member-or-path) pairs; the index order of the walk.
        self._frames: List[Tuple[str, str]] = (
            self._discover_npz() if self.format == "npz" else self._discover_npy()
        )
        if not self._frames:
            raise ConfigError(
                f"network: no softmax dumps for split {self.split!r} under {self.root}"
            )

    def __repr__(self) -> str:
        return (
            f"SoftmaxDumpNetwork(root={str(self.root)!r}, split={self.split!r}, "
            f"format={self.format!r}, n_frames={len(self._frames)}, mmap={self.mmap})"
        )

    # ------------------------------------------------------------ discovery --
    def _discover_npy(self) -> List[Tuple[str, str]]:
        split_dir = self.root / self.split
        if not split_dir.is_dir():
            raise ConfigError(
                f"network: dump root {self.root} has no {self.split!r} split directory"
            )
        frames: List[Tuple[str, str]] = []
        for city_dir in sorted(p for p in split_dir.iterdir() if p.is_dir()):
            for dump_path in sorted(city_dir.glob(f"*{DUMP_SUFFIX}")):
                frame_id = dump_path.name[: -len(DUMP_SUFFIX)]
                frames.append((frame_id, str(dump_path)))
        return frames

    def _discover_npz(self) -> List[Tuple[str, str]]:
        if not self._npz_path.is_file():
            raise ConfigError(f"network: dump archive {self._npz_path} does not exist")
        try:
            with np.load(self._npz_path) as archive:
                members = list(archive.files)
        except (OSError, ValueError) as exc:
            raise ConfigError(
                f"network: unreadable dump archive {self._npz_path}: {exc}"
            ) from None
        # Members are "<city>/<frame>"; sorting them reproduces the
        # (city, frame id) order of the npy layout and the disk dataset.
        return [(member.rsplit("/", 1)[-1], member) for member in sorted(members)]

    # ------------------------------------------------------------------ API --
    @property
    def n_classes(self) -> int:
        """Number of classes in the dumped softmax fields."""
        return self.label_space.n_classes

    @property
    def n_frames(self) -> int:
        """Number of dumped frames of the served split."""
        return len(self._frames)

    def frame_ids(self) -> List[str]:
        """Ordered frame ids of the served split (the walk's index order)."""
        return [frame_id for frame_id, _ in self._frames]

    def check_dataset(self, dataset) -> None:
        """Fail fast on a frame/dump mismatch with the dataset to be walked.

        Called by the Runner after both components are built.  A substrate
        that exposes per-split ``frame_ids`` (the disk dataset) is checked
        frame by frame; any other substrate (e.g. a synthetic one whose
        softmax fields were dumped) is checked by count.
        """
        ids = None
        frame_ids = getattr(dataset, "frame_ids", None)
        if callable(frame_ids):
            ids = list(frame_ids("val"))
        n_val = getattr(dataset, "n_val", None)
        if ids is not None:
            if ids != self.frame_ids():
                missing = sorted(set(ids) - set(self.frame_ids()))[:3]
                extra = sorted(set(self.frame_ids()) - set(ids))[:3]
                raise ConfigError(
                    f"network: softmax dumps do not match the dataset frames "
                    f"(dataset has {len(ids)}, dumps have {self.n_frames}; "
                    f"e.g. missing dumps {missing}, unmatched dumps {extra})"
                )
        elif n_val is not None and int(n_val) != self.n_frames:
            raise ConfigError(
                f"network: {self.n_frames} softmax dumps for a dataset with "
                f"n_val={int(n_val)} validation samples"
            )
        n_classes = getattr(dataset, "n_classes", None)
        if n_classes is not None and int(n_classes) != self.n_classes:
            raise ConfigError(
                f"network: dumps carry {self.n_classes} classes, "
                f"dataset has {int(n_classes)}"
            )

    # ---------------------------------------------------------------- serving --
    def _read(self, frame_id: str, ref: str) -> np.ndarray:
        if self.format == "npz":
            try:
                with np.load(self._npz_path) as archive:
                    return archive[ref]
            except (OSError, ValueError, KeyError, zipfile_error) as exc:
                raise ConfigError(
                    f"network: cannot read dump of frame {frame_id!r} "
                    f"from {self._npz_path}: {exc}"
                ) from None
        try:
            return np.load(ref, mmap_mode="r" if self.mmap else None)
        except (OSError, ValueError) as exc:
            raise ConfigError(
                f"network: cannot read softmax dump {ref} of frame {frame_id!r}: {exc}"
            ) from None

    def predict_probabilities(self, gt_labels: np.ndarray, index: int = 0) -> np.ndarray:
        """Return the dumped (H, W, C) softmax field of frame *index*.

        ``gt_labels`` is only used to validate the spatial shape — the dump
        *is* the network output; nothing is recomputed.  For ``.npy`` dumps
        the returned array is a read-only memmap: downstream code slices it
        and the field is paged in on demand, never loaded wholesale.
        """
        if not 0 <= index < len(self._frames):
            raise ConfigError(
                f"network: sample index {index} is outside the dumped range "
                f"[0, {len(self._frames)}); the dataset and the dump disagree"
            )
        frame_id, ref = self._frames[index]
        probs = self._read(frame_id, ref)
        if probs.ndim != 3 or probs.shape[2] != self.n_classes:
            raise ConfigError(
                f"network: dump of frame {frame_id!r} has shape {probs.shape}, "
                f"expected (H, W, {self.n_classes})"
            )
        gt = np.asarray(gt_labels)
        if probs.shape[:2] != gt.shape:
            raise ConfigError(
                f"network: dump of frame {frame_id!r} is {probs.shape[:2]} "
                f"but its label map is {gt.shape}"
            )
        return probs

    def predict_labels(self, gt_labels: np.ndarray, index: int = 0) -> np.ndarray:
        """MAP (argmax) prediction of frame *index* (streams through the memmap)."""
        probs = self.predict_probabilities(gt_labels, index=index)
        return np.argmax(probs, axis=2).astype(np.int64)

    def __call__(self, gt_labels: np.ndarray, index: int = 0) -> np.ndarray:
        return self.predict_probabilities(gt_labels, index=index)


# zipfile raises its own BadZipFile (a subclass of Exception, not OSError)
# for corrupt .npz archives; alias it so _read's except clause stays flat.
from zipfile import BadZipFile as zipfile_error  # noqa: E402


# ---------------------------------------------------------------- registry --

@NETWORK_PROFILES.register("softmax_dump")
def build_softmax_dump(network, seed: int) -> SoftmaxDumpNetwork:
    """Serve precomputed softmax dumps (.npy memmap / .npz) instead of simulating."""
    if not network.dump_root:
        raise ConfigError(
            "network: the softmax_dump profile requires network.dump_root "
            "(path to a softmax dump directory)"
        )
    # Dumps are deterministic data; the seed only drives simulated networks.
    return SoftmaxDumpNetwork(root=network.dump_root, mmap=network.mmap)


#: Marks the entry as a network *adapter* factory: the Runner calls it as
#: ``factory(config.network, seed)`` and uses the returned network directly,
#: instead of calling it with no arguments for a NetworkProfile to wrap.
build_softmax_dump.builds_network = True
