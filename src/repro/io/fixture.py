"""Deterministic on-disk fixture generator for the real-data I/O layer.

Tests and CI need a Cityscapes-layout tree plus matching softmax dumps, but
must not download anything.  :func:`write_disk_fixture` materialises both
from the repo's own synthetic generators, mirroring the Runner's component
flow exactly:

* the label maps are the scenes of the ``cityscapes_like`` substrate built
  with the data seed ``derived_seeds(seed).data``, written as raw-id
  ``gtFine`` PNGs (train→raw through the label space, ignore → raw 0);
* the softmax dumps are the fields of the named simulated network built with
  the network seed ``derived_seeds(seed).network``, evaluated at each
  validation index and saved verbatim (float64, never re-quantised).

Because both sides round-trip losslessly, an experiment run against the
written tree (``cityscapes_disk`` + ``softmax_dump``) is *bitwise identical*
to the in-memory synthetic run of the same seed and sizes — the property the
parity tests pin down, and the reason the fixture needs no golden files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.api.config import DataConfig
from repro.api.registry import DATASETS, NETWORK_PROFILES
from repro.api.runner import derived_seeds
from repro.io.cityscapes import IMAGE_DIR, IMAGE_SUFFIX, LABEL_DIR, LABEL_SUFFIX
from repro.io.png import write_png_gray8
from repro.io.softmax import DUMP_SUFFIX, MANIFEST_NAME
from repro.segmentation.labels import IGNORE_ID
from repro.segmentation.network import SimulatedSegmentationNetwork


def _train_to_raw_lut(label_space) -> np.ndarray:
    """(n_classes + 1,) train-id → raw-id table, indexed by ``train_id + 1``.

    Index 0 is the ignore id (train id -1), which encodes as raw 0 — the
    Cityscapes "unlabeled" class — so decoding through the raw→train table
    reproduces the original label map bit-exactly.
    """
    lut = np.zeros(label_space.n_classes + 1, dtype=np.uint8)
    for spec in label_space:
        lut[spec.train_id + 1] = label_space.train_id_to_raw(spec.train_id)
    return lut


def write_disk_fixture(
    root: Union[str, Path],
    dump_root: Optional[Union[str, Path]] = None,
    seed: int = 7,
    n_train: int = 2,
    n_val: int = 4,
    height: int = 32,
    width: int = 64,
    profile: str = "mobilenetv2",
    dump_format: str = "npy",
    write_images: bool = True,
) -> Dict[str, object]:
    """Write a Cityscapes-layout tree + softmax dumps from the synthetic stack.

    Parameters mirror the synthetic experiment the fixture must be bitwise
    equal to: ``seed``/``n_train``/``n_val``/``height``/``width`` configure
    the ``cityscapes_like`` substrate, ``profile`` the simulated network
    whose fields are dumped.  ``dump_root`` defaults to ``<root>/softmax``;
    ``dump_format`` is ``"npy"`` (per-frame files, memmappable) or ``"npz"``
    (one archive per split).  ``write_images`` additionally writes
    placeholder ``leftImg8bit`` PNGs (the raw label map re-used as a
    grayscale image) so the authoritative image-driven discovery path is
    exercised; label-only trees are also valid Cityscapes dumps.

    Returns a summary dict (paths, frame counts, manifest) for logging.
    """
    root = Path(root)
    dump_root = Path(dump_root) if dump_root is not None else root / "softmax"
    if dump_format not in ("npy", "npz"):
        raise ValueError(f"dump_format must be 'npy' or 'npz', got {dump_format!r}")
    seeds = derived_seeds(seed)
    data_cfg = DataConfig(
        dataset="cityscapes_like", n_train=n_train, n_val=n_val, height=height, width=width
    )
    dataset = DATASETS.get("cityscapes_like")(data_cfg, seeds.data)
    network = SimulatedSegmentationNetwork(
        NETWORK_PROFILES.get(profile)(), random_state=seeds.network
    )
    encode_lut = _train_to_raw_lut(dataset.label_space)

    n_frames: Dict[str, int] = {}
    for split, n_samples, sample_of in (
        ("train", n_train, dataset.train_sample),
        ("val", n_val, dataset.val_sample),
    ):
        city_dir = root / LABEL_DIR / split / split  # one city named like the split
        image_dir = root / IMAGE_DIR / split / split
        city_dir.mkdir(parents=True, exist_ok=True)
        if write_images:
            image_dir.mkdir(parents=True, exist_ok=True)
        for index in range(n_samples):
            sample = sample_of(index)
            labels = np.asarray(sample.labels)
            if labels.min() < IGNORE_ID:
                raise ValueError(f"labels of {sample.image_id} below the ignore id")
            raw = encode_lut[labels + 1]
            write_png_gray8(city_dir / f"{sample.image_id}{LABEL_SUFFIX}", raw)
            if write_images:
                write_png_gray8(image_dir / f"{sample.image_id}{IMAGE_SUFFIX}", raw)
        n_frames[split] = n_samples

    dump_root.mkdir(parents=True, exist_ok=True)
    dumps: Dict[str, np.ndarray] = {}
    for index in range(n_val):
        sample = dataset.val_sample(index)
        probs = network.predict_probabilities(sample.labels, index=index)
        dumps[f"val/{sample.image_id}"] = np.asarray(probs, dtype=np.float64)
    if dump_format == "npy":
        val_dir = dump_root / "val" / "val"
        val_dir.mkdir(parents=True, exist_ok=True)
        for member, probs in dumps.items():
            frame_id = member.rsplit("/", 1)[-1]
            np.save(val_dir / f"{frame_id}{DUMP_SUFFIX}", probs)
    else:
        np.savez(dump_root / "val.npz", **dumps)
    manifest = {
        "format": dump_format,
        "profile": network.profile.name,
        "n_classes": dataset.n_classes,
        "split": "val",
        "generator": {
            "seed": seed,
            "n_train": n_train,
            "n_val": n_val,
            "height": height,
            "width": width,
        },
    }
    (dump_root / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return {
        "root": str(root),
        "dump_root": str(dump_root),
        "n_frames": n_frames,
        "manifest": manifest,
    }


def disk_config_payload(
    root: Union[str, Path],
    dump_root: Optional[Union[str, Path]] = None,
    kind: str = "metaseg",
    seed: int = 7,
    name: str = "metaseg-disk",
) -> Dict[str, object]:
    """Experiment-config dict running the disk backends over a fixture tree.

    The counterpart of :func:`write_disk_fixture`: point it at the same
    ``root``/``dump_root``/``seed`` and the resulting experiment reproduces
    the synthetic run the fixture was generated from, bit for bit.
    """
    root = Path(root)
    dump_root = Path(dump_root) if dump_root is not None else root / "softmax"
    return {
        "kind": kind,
        "name": name,
        "seed": seed,
        "data": {"dataset": "cityscapes_disk", "root": str(root)},
        "network": {"profile": "softmax_dump", "dump_root": str(dump_root)},
    }
