"""On-disk Cityscapes-format dataset.

The first dataset substrate in this repository that reads files instead of
generating scenes: a directory tree in the standard Cityscapes layout

.. code-block:: text

    <root>/leftImg8bit/<split>/<city>/<frame>_leftImg8bit.png
    <root>/gtFine/<split>/<city>/<frame>_gtFine_labelIds.png

is walked lazily — discovery at construction touches only directory listings;
the label PNG of a frame is decoded on first access (and cached unless the
caller streams with ``cache=False``, exactly like the synthetic substrates).
Raw on-disk label ids are remapped to the consecutive train ids through the
:class:`~repro.segmentation.labels.LabelSpace` raw-id table, with every void
class decoding to the ignore id.

The substrate exposes the same duck-typed interface as
:class:`~repro.segmentation.datasets.CityscapesLikeDataset` (``n_train`` /
``n_val`` / per-index accessors / split iterators), so it composes unchanged
with every execution backend — including the sharded ``process`` backend,
which rebuilds the dataset in each worker from the picklable config dict and
walks only its own index range.

Structural problems fail fast with :class:`~repro.api.config.ConfigError` at
construction time (missing root, missing split, image frame without a label
map), not deep inside extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from repro.api.config import ConfigError
from repro.api.registry import DATASETS
from repro.io.png import PngError, read_png_gray8
from repro.segmentation.datasets import SegmentationSample
from repro.segmentation.labels import IGNORE_ID, LabelSpace, cityscapes_label_space

#: Fixed names of the Cityscapes directory layout.
IMAGE_DIR = "leftImg8bit"
LABEL_DIR = "gtFine"
IMAGE_SUFFIX = "_leftImg8bit.png"
LABEL_SUFFIX = "_gtFine_labelIds.png"


@dataclass(frozen=True)
class DiskFrame:
    """One discovered frame: its id, city and label-map path."""

    frame_id: str
    city: str
    label_path: str


def raw_to_train_lut(label_space: LabelSpace) -> np.ndarray:
    """(256,) raw-id → train-id lookup table; unmapped raw ids → ignore."""
    lut = np.full(256, IGNORE_ID, dtype=np.int64)
    for raw_id, train_id in label_space.raw_id_map().items():
        if not 0 <= raw_id <= 255:
            raise ConfigError(f"raw label id {raw_id} does not fit an 8-bit label map")
        lut[raw_id] = train_id
    return lut


def discover_frames(root: Path, split: str) -> List[DiskFrame]:
    """Deterministically list the frames of one split of a Cityscapes tree.

    When the ``leftImg8bit`` tree is present it is the authoritative frame
    listing (every image must have a label map — a missing one raises
    :class:`ConfigError` naming the frame); a dump of label maps alone
    (no images) is also accepted and walked directly.  Frames are ordered
    by (city, frame id), which is the substrate's index order everywhere.
    """
    image_split = root / IMAGE_DIR / split
    label_split = root / LABEL_DIR / split
    frames: List[DiskFrame] = []
    if image_split.is_dir():
        for city_dir in sorted(p for p in image_split.iterdir() if p.is_dir()):
            for image_path in sorted(city_dir.glob(f"*{IMAGE_SUFFIX}")):
                frame_id = image_path.name[: -len(IMAGE_SUFFIX)]
                label_path = label_split / city_dir.name / f"{frame_id}{LABEL_SUFFIX}"
                if not label_path.is_file():
                    raise ConfigError(
                        f"data: frame {frame_id!r} of split {split!r} has an image "
                        f"but no label map (expected {label_path})"
                    )
                frames.append(DiskFrame(frame_id, city_dir.name, str(label_path)))
        return frames
    if label_split.is_dir():
        for city_dir in sorted(p for p in label_split.iterdir() if p.is_dir()):
            for label_path in sorted(city_dir.glob(f"*{LABEL_SUFFIX}")):
                frame_id = label_path.name[: -len(LABEL_SUFFIX)]
                frames.append(DiskFrame(frame_id, city_dir.name, str(label_path)))
        return frames
    raise ConfigError(
        f"data: dataset root {root} has no {IMAGE_DIR}/{split} or "
        f"{LABEL_DIR}/{split} directory"
    )


class CityscapesDiskDataset:
    """Lazily-read Cityscapes-format dataset with a train/val split.

    Parameters
    ----------
    root:
        Dataset directory in the standard Cityscapes layout.
    label_space:
        Label space providing the raw→train id mapping (defaults to the
        19-class Cityscapes space).
    train_split, val_split:
        Split directory names.  The validation split must exist and be
        non-empty (it is what every experiment kind walks); the train split
        is optional and reports ``n_train == 0`` when absent.
    """

    def __init__(
        self,
        root: Union[str, Path],
        label_space: Optional[LabelSpace] = None,
        train_split: str = "train",
        val_split: str = "val",
    ) -> None:
        self.root = Path(root)
        if not self.root.is_dir():
            raise ConfigError(f"data: dataset root {self.root} does not exist")
        self.label_space = label_space or cityscapes_label_space()
        self._lut = raw_to_train_lut(self.label_space)
        self.train_split = train_split
        self.val_split = val_split
        self._val_frames = discover_frames(self.root, val_split)
        if not self._val_frames:
            raise ConfigError(
                f"data: split {val_split!r} of {self.root} contains no frames"
            )
        try:
            self._train_frames = discover_frames(self.root, train_split)
        except ConfigError:
            self._train_frames = []  # train split is optional
        self._train_cache: Dict[int, SegmentationSample] = {}
        self._val_cache: Dict[int, SegmentationSample] = {}

    def __repr__(self) -> str:
        return (
            f"CityscapesDiskDataset(root={str(self.root)!r}, "
            f"n_train={self.n_train}, n_val={self.n_val})"
        )

    # ------------------------------------------------------------------ ---
    @property
    def n_classes(self) -> int:
        """Number of semantic classes."""
        return self.label_space.n_classes

    @property
    def n_train(self) -> int:
        """Number of discovered training frames (0 when the split is absent)."""
        return len(self._train_frames)

    @property
    def n_val(self) -> int:
        """Number of discovered validation frames."""
        return len(self._val_frames)

    def frame_ids(self, split: str) -> List[str]:
        """Ordered frame ids of one split (the substrate's index order)."""
        return [frame.frame_id for frame in self._frames_of(split)]

    def _frames_of(self, split: str) -> List[DiskFrame]:
        if split == self.train_split or split == "train":
            return self._train_frames
        if split == self.val_split or split == "val":
            return self._val_frames
        raise ValueError(f"unknown split {split!r}")

    # ------------------------------------------------------------------ ---
    def _load(self, frame: DiskFrame) -> SegmentationSample:
        """Decode one frame's label map and remap raw ids to train ids."""
        try:
            raw = read_png_gray8(frame.label_path)
        except (OSError, PngError) as exc:
            raise ConfigError(
                f"data: cannot read label map of frame {frame.frame_id!r}: {exc}"
            ) from None
        return SegmentationSample(image_id=frame.frame_id, labels=self._lut[raw])

    def _sample(self, split: str, index: int, cache: bool) -> SegmentationSample:
        frames = self._frames_of(split)
        cached = self._train_cache if frames is self._train_frames else self._val_cache
        if not 0 <= index < len(frames):
            raise IndexError(f"{split} index {index} out of range [0, {len(frames)})")
        if index in cached:
            return cached[index]
        sample = self._load(frames[index])
        if cache:
            cached[index] = sample
        return sample

    def train_sample(self, index: int, cache: bool = True) -> SegmentationSample:
        """Return (and by default cache) training frame *index*."""
        return self._sample("train", index, cache=cache)

    def val_sample(self, index: int, cache: bool = True) -> SegmentationSample:
        """Return (and by default cache) validation frame *index*."""
        return self._sample("val", index, cache=cache)

    def iter_train(self, cache: bool = True) -> Iterator[SegmentationSample]:
        """Iterate over the training frames (``cache=False`` streams them)."""
        for index in range(self.n_train):
            yield self.train_sample(index, cache=cache)

    def iter_val(self, cache: bool = True) -> Iterator[SegmentationSample]:
        """Iterate over the validation frames (``cache=False`` streams them)."""
        for index in range(self.n_val):
            yield self.val_sample(index, cache=cache)

    def train_samples(self) -> List[SegmentationSample]:
        """All training samples as a list."""
        return list(self.iter_train())

    def val_samples(self) -> List[SegmentationSample]:
        """All validation samples as a list."""
        return list(self.iter_val())


# ---------------------------------------------------------------- builders --

@DATASETS.register("cityscapes_disk")
def build_cityscapes_disk(data, seed: int) -> CityscapesDiskDataset:
    """On-disk Cityscapes-format dataset (leftImg8bit + gtFine label-ID PNGs)."""
    if not data.root:
        raise ConfigError(
            "data: the cityscapes_disk dataset requires data.root "
            "(path to a Cityscapes-layout directory)"
        )
    # Real data carries no randomness; the seed only drives synthetic builders.
    return CityscapesDiskDataset(root=data.root)
