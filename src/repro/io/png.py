"""Minimal dependency-free PNG codec for label maps.

Cityscapes ``gtFine`` annotations are 8-bit single-channel PNGs of raw label
ids.  The container image deliberately ships no imaging library (no Pillow,
no imageio), so this module implements the tiny subset of the PNG spec the
disk dataset needs, on top of :mod:`zlib` and :mod:`struct`:

* :func:`write_png_gray8` — write a 2-D ``uint8`` array as an 8-bit
  grayscale PNG (filter type 0 per scanline; one IDAT chunk);
* :func:`read_png_gray8` — read an 8-bit grayscale, non-interlaced PNG back
  into a 2-D ``uint8`` array.  All five scanline filter types (None / Sub /
  Up / Average / Paeth) are supported, so files produced by standard
  encoders (which pick filters adaptively) decode correctly, not only our
  own filter-0 output.

Anything outside that subset — palette or RGB color types, 16-bit depth,
interlacing — raises :class:`PngError` with the offending property named,
never a silent misread: a label map decoded wrongly would corrupt every
downstream IoU target.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import Union

import numpy as np

#: The 8-byte PNG file signature.
_SIGNATURE = b"\x89PNG\r\n\x1a\n"


class PngError(ValueError):
    """A file is not a PNG of the supported subset (8-bit grayscale)."""


def _chunk(tag: bytes, payload: bytes) -> bytes:
    """One PNG chunk: length, tag, payload, CRC over tag+payload."""
    return (
        struct.pack(">I", len(payload))
        + tag
        + payload
        + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF)
    )


def write_png_gray8(path: Union[str, Path], image: np.ndarray) -> None:
    """Write a 2-D ``uint8`` array as an 8-bit grayscale PNG."""
    arr = np.asarray(image)
    if arr.ndim != 2 or arr.size == 0:
        raise PngError(f"image must be a non-empty 2-D array, got shape {arr.shape}")
    if arr.dtype != np.uint8:
        if not np.issubdtype(arr.dtype, np.integer) or arr.min() < 0 or arr.max() > 255:
            raise PngError(
                f"image values must fit uint8 (got dtype {arr.dtype}, "
                f"range [{arr.min()}, {arr.max()}])"
            )
        arr = arr.astype(np.uint8)
    height, width = arr.shape
    # bit depth 8, color type 0 (grayscale), no compression/filter/interlace.
    ihdr = struct.pack(">IIBBBBB", width, height, 8, 0, 0, 0, 0)
    # Filter byte 0 (None) in front of every scanline.
    raw = np.empty((height, width + 1), dtype=np.uint8)
    raw[:, 0] = 0
    raw[:, 1:] = arr
    data = (
        _SIGNATURE
        + _chunk(b"IHDR", ihdr)
        + _chunk(b"IDAT", zlib.compress(raw.tobytes(), level=6))
        + _chunk(b"IEND", b"")
    )
    Path(path).write_bytes(data)


def _unfilter(filtered: np.ndarray, height: int, width: int) -> np.ndarray:
    """Reverse the per-scanline PNG filters (bytes-per-pixel = 1)."""
    rows = filtered.reshape(height, width + 1)
    filters = rows[:, 0]
    out = np.zeros((height, width), dtype=np.uint8)
    for y in range(height):
        filter_type = int(filters[y])
        line = rows[y, 1:].astype(np.int64)
        prior = out[y - 1].astype(np.int64) if y > 0 else np.zeros(width, dtype=np.int64)
        if filter_type == 0:  # None
            out[y] = line.astype(np.uint8)
        elif filter_type == 1:  # Sub: recon[x] = line[x] + recon[x-1]
            out[y] = np.cumsum(line, dtype=np.int64).astype(np.uint8)
        elif filter_type == 2:  # Up
            out[y] = ((line + prior) % 256).astype(np.uint8)
        elif filter_type == 3:  # Average
            left = 0
            row = out[y]
            for x in range(width):
                left = (int(line[x]) + (left + int(prior[x])) // 2) % 256
                row[x] = left
        elif filter_type == 4:  # Paeth
            left = 0
            upper_left = 0
            row = out[y]
            for x in range(width):
                above = int(prior[x])
                p = left + above - upper_left
                pa, pb, pc = abs(p - left), abs(p - above), abs(p - upper_left)
                if pa <= pb and pa <= pc:
                    predictor = left
                elif pb <= pc:
                    predictor = above
                else:
                    predictor = upper_left
                left = (int(line[x]) + predictor) % 256
                row[x] = left
                upper_left = above
        else:
            raise PngError(f"unknown scanline filter type {filter_type}")
    return out


def read_png_gray8(path: Union[str, Path]) -> np.ndarray:
    """Read an 8-bit grayscale non-interlaced PNG as a 2-D ``uint8`` array."""
    path = Path(path)
    data = path.read_bytes()
    if not data.startswith(_SIGNATURE):
        raise PngError(f"{path} is not a PNG file (bad signature)")
    offset = len(_SIGNATURE)
    header = None
    idat = bytearray()
    while offset + 8 <= len(data):
        (length,) = struct.unpack_from(">I", data, offset)
        tag = data[offset + 4 : offset + 8]
        payload = data[offset + 8 : offset + 8 + length]
        if len(payload) != length:
            raise PngError(f"{path} is truncated inside chunk {tag!r}")
        if tag == b"IHDR":
            header = struct.unpack(">IIBBBBB", payload)
        elif tag == b"IDAT":
            idat.extend(payload)
        elif tag == b"IEND":
            break
        offset += 12 + length  # length + tag + payload + CRC
    if header is None:
        raise PngError(f"{path} has no IHDR chunk")
    width, height, bit_depth, color_type, _, _, interlace = header
    if bit_depth != 8 or color_type != 0:
        raise PngError(
            f"{path} is not 8-bit grayscale (bit depth {bit_depth}, "
            f"color type {color_type}); label maps must be *_labelIds-style PNGs"
        )
    if interlace != 0:
        raise PngError(f"{path} is interlaced, which is not supported")
    if not idat:
        raise PngError(f"{path} has no IDAT chunk")
    try:
        raw = zlib.decompress(bytes(idat))
    except zlib.error as exc:
        raise PngError(f"{path} has corrupt image data: {exc}") from None
    expected = height * (width + 1)
    if len(raw) != expected:
        raise PngError(
            f"{path} decodes to {len(raw)} bytes, expected {expected} "
            f"for {width}x{height} grayscale"
        )
    return _unfilter(np.frombuffer(raw, dtype=np.uint8), height, width)
