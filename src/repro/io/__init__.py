"""Real-data I/O layer: on-disk datasets and precomputed-network adapters.

Everything in this package reads files instead of generating scenes:

* :mod:`repro.io.png` — dependency-free 8-bit grayscale PNG codec;
* :mod:`repro.io.cityscapes` — the ``cityscapes_disk`` dataset substrate
  walking a Cityscapes-layout tree lazily;
* :mod:`repro.io.softmax` — the ``softmax_dump`` network adapter serving
  per-frame probability fields from ``.npy``/``.npz`` dumps via memmap;
* :mod:`repro.io.fixture` — deterministic fixture generator writing a tiny
  tree from the synthetic stack (tests/CI need no download).

Importing the substrate modules registers their builders with the
``datasets`` / ``networks`` registries (the registry's lazy built-in loader
imports them on first lookup, like every other built-in).
"""

from repro.io.cityscapes import CityscapesDiskDataset, discover_frames, raw_to_train_lut
from repro.io.fixture import disk_config_payload, write_disk_fixture
from repro.io.png import PngError, read_png_gray8, write_png_gray8
from repro.io.softmax import SoftmaxDumpNetwork

__all__ = [
    "CityscapesDiskDataset",
    "SoftmaxDumpNetwork",
    "PngError",
    "read_png_gray8",
    "write_png_gray8",
    "discover_frames",
    "raw_to_train_lut",
    "write_disk_fixture",
    "disk_config_payload",
]
