"""Animated street scenes: the KITTI-like video substrate.

Section III of the paper evaluates time-dynamic MetaSeg on 29 KITTI video
sequences (~12k frames) of which 142 frames carry ground truth.  This module
animates the procedural scenes of :mod:`repro.segmentation.scene` over time:

* the static background (road, buildings, sky, ...) stays fixed per sequence;
* dynamic objects move with their per-object velocities plus a global
  ego-motion flow, leave the frame and are removed, and new objects may spawn;
* every frame has ground truth available internally, but the dataset wrapper
  (:class:`repro.segmentation.datasets.KittiLikeDataset`) only *exposes*
  ground truth for a sparse subset of frames, mimicking the KITTI annotation
  situation that motivates the pseudo-ground-truth experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.segmentation.labels import LabelSpace, cityscapes_label_space
from repro.segmentation.scene import Scene, SceneConfig, SceneObject, StreetSceneGenerator
from repro.utils.rng import RandomState, as_rng


@dataclass(frozen=True)
class SequenceConfig:
    """Parameters of the synthetic video generator."""

    n_frames: int = 30
    scene_config: SceneConfig = SceneConfig()
    ego_flow: float = 0.35
    """Downward pixel flow per frame caused by forward ego-motion (objects
    below the horizon slowly grow/approach)."""
    spawn_probability: float = 0.08
    """Probability per frame of a new dynamic object entering the scene."""
    despawn_margin: float = 10.0
    """Objects whose center leaves the image by more than this margin are removed."""

    def __post_init__(self) -> None:
        if self.n_frames < 1:
            raise ValueError("n_frames must be >= 1")
        if not 0.0 <= self.spawn_probability <= 1.0:
            raise ValueError("spawn_probability must be in [0, 1]")
        if self.despawn_margin < 0:
            raise ValueError("despawn_margin must be non-negative")


@dataclass
class SceneSequence:
    """A generated video sequence of scenes sharing one background."""

    sequence_id: int
    frames: List[Scene]
    config: SequenceConfig

    def __len__(self) -> int:
        return len(self.frames)

    def __getitem__(self, index: int) -> Scene:
        return self.frames[index]

    def labels(self) -> np.ndarray:
        """Stacked (T, H, W) ground-truth label maps."""
        return np.stack([frame.labels for frame in self.frames], axis=0)


class SequenceGenerator:
    """Generate :class:`SceneSequence` objects from a street-scene generator."""

    def __init__(
        self,
        config: Optional[SequenceConfig] = None,
        label_space: Optional[LabelSpace] = None,
        random_state: RandomState = 0,
    ) -> None:
        self.config = config or SequenceConfig()
        self.label_space = label_space or cityscapes_label_space()
        rng = as_rng(random_state)
        self._master_seed = int(rng.integers(0, 2**31 - 1))

    def generate(self, sequence_index: int = 0) -> SceneSequence:
        """Generate sequence number *sequence_index* deterministically."""
        if sequence_index < 0:
            raise ValueError("sequence_index must be non-negative")
        cfg = self.config
        rng = np.random.default_rng((self._master_seed, sequence_index))
        scene_generator = StreetSceneGenerator(
            config=cfg.scene_config,
            label_space=self.label_space,
            random_state=int(rng.integers(0, 2**31 - 1)),
        )
        base_scene = scene_generator.generate(0)
        objects = [obj for obj in base_scene.objects]
        next_object_id = max((obj.object_id for obj in objects), default=-1) + 1

        frames: List[Scene] = []
        for frame_index in range(cfg.n_frames):
            labels = scene_generator.render(base_scene.background, objects)
            if cfg.scene_config.ignore_margin > 0:
                labels[-cfg.scene_config.ignore_margin :, :] = -1
            frames.append(
                Scene(
                    labels=labels,
                    background=base_scene.background,
                    objects=[SceneObject(**vars(obj)) for obj in objects],
                    horizon_row=base_scene.horizon_row,
                    road_top_row=base_scene.road_top_row,
                    config=cfg.scene_config,
                    label_space=self.label_space,
                )
            )
            objects = self._advance(objects, rng, base_scene)
            if rng.uniform() < cfg.spawn_probability:
                spawned = self._spawn_object(rng, scene_generator, base_scene, next_object_id)
                if spawned is not None:
                    objects.append(spawned)
                    next_object_id += 1
        return SceneSequence(sequence_id=sequence_index, frames=frames, config=cfg)

    def generate_many(self, n_sequences: int, start_index: int = 0) -> List[SceneSequence]:
        """Generate several consecutive sequences."""
        return [self.generate(start_index + i) for i in range(n_sequences)]

    # ------------------------------------------------------------------ ---
    def _advance(
        self, objects: List[SceneObject], rng: np.random.Generator, base_scene: Scene
    ) -> List[SceneObject]:
        """Move every dynamic object one frame forward and drop departed ones."""
        cfg = self.config
        h, w = base_scene.labels.shape
        survivors: List[SceneObject] = []
        for obj in objects:
            moved = obj.moved(1.0)
            # Forward ego-motion: things below the horizon drift down slightly
            # and grow as they come closer.
            if moved.center_row > base_scene.horizon_row:
                depth = (moved.center_row - base_scene.horizon_row) / max(1, h - base_scene.horizon_row)
                moved.center_row += cfg.ego_flow * depth
                growth = 1.0 + 0.01 * cfg.ego_flow * depth
                moved.height *= growth
                moved.width *= growth
            # Small velocity jitter so motion is not perfectly linear.
            moved.velocity = (
                moved.velocity[0] + rng.normal(0.0, 0.02),
                moved.velocity[1] + rng.normal(0.0, 0.05),
            )
            margin = cfg.despawn_margin
            if (
                -margin <= moved.center_row <= h + margin
                and -margin <= moved.center_col <= w + margin
            ):
                survivors.append(moved)
        return survivors

    def _spawn_object(
        self,
        rng: np.random.Generator,
        scene_generator: StreetSceneGenerator,
        base_scene: Scene,
        object_id: int,
    ) -> Optional[SceneObject]:
        """Spawn a new dynamic object at an image edge."""
        ls = self.label_space
        h, w = base_scene.labels.shape
        choices = ["car", "person", "rider", "bicycle"]
        name = choices[int(rng.integers(0, len(choices)))]
        from_left = rng.uniform() < 0.5
        col = 2.0 if from_left else float(w - 3)
        if name == "car":
            row = rng.uniform(base_scene.road_top_row + 2, h - 3)
            base_h, base_w, shape, speed = 0.16, 0.13, "rect", rng.uniform(0.8, 2.5)
        elif name in ("person", "rider"):
            row = rng.uniform(base_scene.road_top_row, h - 2)
            base_h, base_w, shape, speed = 0.22, 0.045, "person", rng.uniform(0.2, 0.8)
        else:
            row = rng.uniform(base_scene.road_top_row, h - 2)
            base_h, base_w, shape, speed = 0.10, 0.06, "rect", rng.uniform(0.4, 1.2)
        scale = scene_generator._perspective_scale(row, base_scene.horizon_row)
        direction = 1.0 if from_left else -1.0
        return SceneObject(
            object_id=object_id,
            class_id=ls.id_of(name),
            center_row=float(row),
            center_col=col,
            height=max(2.0, base_h * h * scale),
            width=max(2.0, base_w * w * scale),
            shape=shape,
            velocity=(float(rng.normal(0.0, 0.1)), direction * speed),
        )
