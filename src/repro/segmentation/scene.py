"""Procedural street-scene ground-truth generator.

This module is the stand-in for the Cityscapes images + fine annotations used
by the paper (see ``DESIGN.md``, substitution table).  It generates 2-D label
maps with a plausible street-scene layout:

* a sky band with a wavy skyline at the top,
* a building band below the skyline down to the horizon,
* optional vegetation / terrain patches at the image sides,
* a road band at the bottom flanked by sidewalks,
* optional walls and fences along the sidewalk,
* instance-like ("thing") objects placed with perspective-consistent sizes:
  cars, trucks and buses on the road, persons on the sidewalks, riders and
  two-wheelers near the road edge, poles carrying traffic signs and lights.

The generator exposes each placed object (class, position, size, velocity) so
that :mod:`repro.segmentation.sequence` can animate the same scene over time
for the KITTI-like video experiments, and so that tests can verify geometric
invariants.

What matters for the reproduction is not photo-realism but that the label
statistics exhibit the properties MetaSeg and the decision-rule experiments
rely on: a broad segment-size distribution, strong class imbalance (humans
cover well below 1 % of the pixels), and position-dependent class priors
(persons appear on sidewalks, cars on the road, sky at the top).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.segmentation.labels import LabelSpace, cityscapes_label_space
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_in_range


@dataclass(frozen=True)
class SceneConfig:
    """Parameters controlling the synthetic street-scene layout."""

    height: int = 128
    width: int = 256
    horizon_fraction_range: Tuple[float, float] = (0.38, 0.52)
    road_fraction_range: Tuple[float, float] = (0.30, 0.42)
    sidewalk_fraction_range: Tuple[float, float] = (0.06, 0.14)
    skyline_roughness: float = 0.06
    n_cars_range: Tuple[int, int] = (1, 5)
    n_persons_range: Tuple[int, int] = (0, 4)
    n_riders_range: Tuple[int, int] = (0, 2)
    n_poles_range: Tuple[int, int] = (1, 4)
    n_signs_range: Tuple[int, int] = (0, 3)
    n_lights_range: Tuple[int, int] = (0, 2)
    n_large_vehicles_range: Tuple[int, int] = (0, 1)
    n_two_wheelers_range: Tuple[int, int] = (0, 2)
    vegetation_probability: float = 0.85
    terrain_probability: float = 0.6
    wall_probability: float = 0.45
    fence_probability: float = 0.45
    train_probability: float = 0.04
    ignore_margin: int = 0
    """Number of bottom rows labelled as ignore (-1), mimicking regions
    without ground truth such as the ego-vehicle hood in Cityscapes."""

    def __post_init__(self) -> None:
        if self.height < 32 or self.width < 64:
            raise ValueError("scene must be at least 32x64 pixels")
        check_in_range(self.skyline_roughness, 0.0, 0.5, name="skyline_roughness")
        for name in ("horizon_fraction_range", "road_fraction_range", "sidewalk_fraction_range"):
            lo, hi = getattr(self, name)
            if not (0.0 < lo <= hi < 1.0):
                raise ValueError(f"{name} must satisfy 0 < lo <= hi < 1, got {(lo, hi)}")
        if self.ignore_margin < 0 or self.ignore_margin >= self.height // 2:
            raise ValueError("ignore_margin must be in [0, height/2)")

    def scaled(self, height: int, width: int) -> "SceneConfig":
        """Return a copy of this configuration with a different image size."""
        return replace(self, height=height, width=width)


@dataclass
class SceneObject:
    """One instance-like object placed in a scene.

    ``center_row``/``center_col`` are float positions so the sequence
    generator can move objects by sub-pixel velocities; rendering rounds to
    pixel coordinates.
    """

    object_id: int
    class_id: int
    center_row: float
    center_col: float
    height: float
    width: float
    shape: str = "rect"
    velocity: Tuple[float, float] = (0.0, 0.0)

    def moved(self, n_steps: float = 1.0) -> "SceneObject":
        """Return a copy of the object displaced by ``n_steps`` velocity steps."""
        return SceneObject(
            object_id=self.object_id,
            class_id=self.class_id,
            center_row=self.center_row + self.velocity[0] * n_steps,
            center_col=self.center_col + self.velocity[1] * n_steps,
            height=self.height,
            width=self.width,
            shape=self.shape,
            velocity=self.velocity,
        )

    def bounding_box(self) -> Tuple[int, int, int, int]:
        """Integer bounding box (top, left, bottom, right), bottom/right exclusive."""
        top = int(round(self.center_row - self.height / 2))
        left = int(round(self.center_col - self.width / 2))
        return top, left, top + max(1, int(round(self.height))), left + max(1, int(round(self.width)))


@dataclass
class Scene:
    """A generated street scene: label map plus structured object information."""

    labels: np.ndarray
    background: np.ndarray
    objects: List[SceneObject]
    horizon_row: int
    road_top_row: int
    config: SceneConfig
    label_space: LabelSpace = field(default_factory=cityscapes_label_space)

    @property
    def height(self) -> int:
        return self.config.height

    @property
    def width(self) -> int:
        return self.config.width

    def class_pixel_counts(self) -> Dict[int, int]:
        """Pixel count per class id present in the label map (ignore excluded)."""
        counts: Dict[int, int] = {}
        values, freq = np.unique(self.labels, return_counts=True)
        for value, count in zip(values, freq):
            if value >= 0:
                counts[int(value)] = int(count)
        return counts


class StreetSceneGenerator:
    """Generator of synthetic street-scene ground truth.

    Parameters
    ----------
    config:
        Layout configuration; defaults to a 128x256 scene.
    label_space:
        Label space; defaults to the Cityscapes-like 19-class space.
    random_state:
        Master seed.  Scene ``i`` is generated from a seed derived from the
        master seed and ``i`` so that individual scenes are reproducible
        independent of generation order.
    """

    def __init__(
        self,
        config: Optional[SceneConfig] = None,
        label_space: Optional[LabelSpace] = None,
        random_state: RandomState = 0,
    ) -> None:
        self.config = config or SceneConfig()
        self.label_space = label_space or cityscapes_label_space()
        rng = as_rng(random_state)
        self._master_seed = int(rng.integers(0, 2**31 - 1))

    # ------------------------------------------------------------------ API
    def generate(self, index: int = 0) -> Scene:
        """Generate scene number *index* (deterministic given the master seed)."""
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        rng = np.random.default_rng((self._master_seed, index))
        background, horizon_row, road_top_row, sidewalk_cols = self._render_background(rng)
        objects = self._sample_objects(rng, horizon_row, road_top_row, sidewalk_cols)
        labels = self.render(background, objects)
        if self.config.ignore_margin > 0:
            labels[-self.config.ignore_margin :, :] = -1
        return Scene(
            labels=labels,
            background=background,
            objects=objects,
            horizon_row=horizon_row,
            road_top_row=road_top_row,
            config=self.config,
            label_space=self.label_space,
        )

    def generate_many(self, n: int, start_index: int = 0) -> List[Scene]:
        """Generate *n* consecutive scenes starting at *start_index*."""
        return [self.generate(start_index + i) for i in range(n)]

    def render(self, background: np.ndarray, objects: List[SceneObject]) -> np.ndarray:
        """Paint objects onto a copy of the background label map.

        Objects are painted far-to-near (sorted by ``center_row``) so nearer
        objects occlude farther ones, as in a real street scene.
        """
        labels = background.copy()
        for obj in sorted(objects, key=lambda o: o.center_row):
            self._paint_object(labels, obj)
        return labels

    # ------------------------------------------------------- background ---
    def _render_background(
        self, rng: np.random.Generator
    ) -> Tuple[np.ndarray, int, int, Tuple[int, int]]:
        cfg = self.config
        ls = self.label_space
        h, w = cfg.height, cfg.width
        labels = np.full((h, w), ls.id_of("building"), dtype=np.int64)

        horizon_row = int(rng.uniform(*cfg.horizon_fraction_range) * h)
        road_fraction = rng.uniform(*cfg.road_fraction_range)
        road_top_row = int(h * (1.0 - road_fraction))
        road_top_row = max(road_top_row, horizon_row + 2)

        # --- sky with a wavy skyline ---------------------------------------
        amplitude = cfg.skyline_roughness * h
        phase = rng.uniform(0, 2 * np.pi)
        n_waves = rng.uniform(1.0, 3.0)
        cols = np.arange(w)
        skyline = (
            horizon_row * 0.62
            + amplitude * np.sin(2 * np.pi * n_waves * cols / w + phase)
            + amplitude * 0.5 * np.sin(2 * np.pi * 2.7 * n_waves * cols / w + 2.1 * phase)
        )
        skyline = np.clip(skyline, 2, horizon_row - 1).astype(np.int64)
        rows = np.arange(h).reshape(-1, 1)
        labels[rows < skyline.reshape(1, -1)] = ls.id_of("sky")

        # --- road and sidewalks ---------------------------------------------
        labels[road_top_row:, :] = ls.id_of("road")
        sidewalk_width = int(rng.uniform(*cfg.sidewalk_fraction_range) * w)
        sidewalk_width = max(3, sidewalk_width)
        left_edge = sidewalk_width
        right_edge = w - sidewalk_width
        labels[road_top_row:, :left_edge] = ls.id_of("sidewalk")
        labels[road_top_row:, right_edge:] = ls.id_of("sidewalk")
        # A thin sidewalk strip also separates road and buildings.
        strip = max(1, int(0.03 * h))
        labels[road_top_row : road_top_row + strip, :] = ls.id_of("sidewalk")

        # --- vegetation / terrain patches -----------------------------------
        if rng.uniform() < cfg.vegetation_probability:
            self._paint_band_patches(
                labels, rng, ls.id_of("vegetation"),
                row_range=(skyline.min(), road_top_row),
                n_patches=rng.integers(1, 4),
                size_fraction=(0.08, 0.25),
            )
        if rng.uniform() < cfg.terrain_probability:
            self._paint_band_patches(
                labels, rng, ls.id_of("terrain"),
                row_range=(road_top_row, h - 1),
                n_patches=rng.integers(1, 3),
                size_fraction=(0.04, 0.12),
                column_range=(0, left_edge + 2),
            )
            self._paint_band_patches(
                labels, rng, ls.id_of("terrain"),
                row_range=(road_top_row, h - 1),
                n_patches=rng.integers(1, 3),
                size_fraction=(0.04, 0.12),
                column_range=(right_edge - 2, w),
            )

        # --- walls and fences along the sidewalk -----------------------------
        if rng.uniform() < cfg.wall_probability:
            self._paint_horizontal_strip(
                labels, rng, ls.id_of("wall"),
                row=road_top_row - max(2, int(0.04 * h)),
                thickness=max(2, int(0.05 * h)),
            )
        if rng.uniform() < cfg.fence_probability:
            self._paint_horizontal_strip(
                labels, rng, ls.id_of("fence"),
                row=road_top_row - max(2, int(0.10 * h)),
                thickness=max(1, int(0.03 * h)),
            )
        return labels, horizon_row, road_top_row, (left_edge, right_edge)

    def _paint_band_patches(
        self,
        labels: np.ndarray,
        rng: np.random.Generator,
        class_id: int,
        row_range: Tuple[int, int],
        n_patches: int,
        size_fraction: Tuple[float, float],
        column_range: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Paint elliptic patches of *class_id* within a horizontal band."""
        h, w = labels.shape
        row_lo, row_hi = row_range
        if row_hi <= row_lo:
            return
        col_lo, col_hi = column_range if column_range is not None else (0, w)
        col_hi = max(col_hi, col_lo + 1)
        for _ in range(int(n_patches)):
            center_row = rng.uniform(row_lo, row_hi)
            center_col = rng.uniform(col_lo, col_hi)
            patch_h = rng.uniform(*size_fraction) * h
            patch_w = rng.uniform(*size_fraction) * w
            self._paint_ellipse(labels, class_id, center_row, center_col, patch_h, patch_w)

    def _paint_horizontal_strip(
        self, labels: np.ndarray, rng: np.random.Generator, class_id: int, row: int, thickness: int
    ) -> None:
        """Paint a horizontal strip with random lateral extent."""
        h, w = labels.shape
        row = int(np.clip(row, 0, h - 1))
        start_col = int(rng.uniform(0, 0.3) * w)
        end_col = int(rng.uniform(0.7, 1.0) * w)
        top = max(0, row - thickness // 2)
        bottom = min(h, top + thickness)
        labels[top:bottom, start_col:end_col] = class_id

    # ---------------------------------------------------------- objects ---
    def _perspective_scale(self, center_row: float, horizon_row: int) -> float:
        """Size scale for an object whose base sits at *center_row*."""
        h = self.config.height
        scale = (center_row - horizon_row) / max(1.0, h - horizon_row)
        return float(np.clip(scale, 0.18, 1.0))

    def _sample_objects(
        self,
        rng: np.random.Generator,
        horizon_row: int,
        road_top_row: int,
        sidewalk_cols: Tuple[int, int],
    ) -> List[SceneObject]:
        cfg = self.config
        ls = self.label_space
        h, w = cfg.height, cfg.width
        left_edge, right_edge = sidewalk_cols
        objects: List[SceneObject] = []
        next_id = 0

        def _add(class_name: str, center_row: float, center_col: float,
                 base_h: float, base_w: float, shape: str,
                 speed_range: Tuple[float, float]) -> None:
            nonlocal next_id
            scale = self._perspective_scale(center_row, horizon_row)
            obj_h = max(2.0, base_h * h * scale)
            obj_w = max(2.0, base_w * w * scale)
            speed = rng.uniform(*speed_range) * rng.choice([-1.0, 1.0])
            velocity = (rng.normal(0.0, 0.15), speed)
            objects.append(
                SceneObject(
                    object_id=next_id,
                    class_id=ls.id_of(class_name),
                    center_row=float(center_row),
                    center_col=float(center_col),
                    height=float(obj_h),
                    width=float(obj_w),
                    shape=shape,
                    velocity=velocity,
                )
            )
            next_id += 1

        # Cars on the road.
        for _ in range(int(rng.integers(cfg.n_cars_range[0], cfg.n_cars_range[1] + 1))):
            row = rng.uniform(road_top_row + 2, h - 3)
            col = rng.uniform(left_edge + 5, right_edge - 5)
            _add("car", row, col, base_h=0.16, base_w=0.13, shape="rect", speed_range=(0.5, 2.5))

        # Occasionally a truck or bus (larger).
        for _ in range(int(rng.integers(cfg.n_large_vehicles_range[0], cfg.n_large_vehicles_range[1] + 1))):
            name = "truck" if rng.uniform() < 0.5 else "bus"
            row = rng.uniform(road_top_row + 2, h - 6)
            col = rng.uniform(left_edge + 8, right_edge - 8)
            _add(name, row, col, base_h=0.26, base_w=0.18, shape="rect", speed_range=(0.3, 1.5))

        # Rarely a train near the horizon.
        if rng.uniform() < cfg.train_probability:
            row = rng.uniform(horizon_row + 2, road_top_row)
            _add("train", row, w * rng.uniform(0.3, 0.7), base_h=0.20, base_w=0.45,
                 shape="rect", speed_range=(0.2, 1.0))

        # Persons on the sidewalks (this concentration is what produces the
        # position-specific prior heatmap of Fig. 4).
        for _ in range(int(rng.integers(cfg.n_persons_range[0], cfg.n_persons_range[1] + 1))):
            side_left = rng.uniform() < 0.5
            col = (rng.uniform(1, left_edge + 3) if side_left
                   else rng.uniform(right_edge - 3, w - 1))
            row = rng.uniform(road_top_row - 1, h - 2)
            _add("person", row, col, base_h=0.22, base_w=0.045, shape="person",
                 speed_range=(0.1, 0.6))

        # Riders plus their two-wheelers near the road edge.
        for _ in range(int(rng.integers(cfg.n_riders_range[0], cfg.n_riders_range[1] + 1))):
            col = rng.uniform(left_edge + 2, right_edge - 2)
            row = rng.uniform(road_top_row + 1, h - 2)
            _add("rider", row, col, base_h=0.18, base_w=0.04, shape="person", speed_range=(0.4, 1.5))
            wheel_name = "bicycle" if rng.uniform() < 0.6 else "motorcycle"
            _add(wheel_name, min(h - 2.0, row + 0.05 * h), col, base_h=0.10, base_w=0.06,
                 shape="rect", speed_range=(0.4, 1.5))

        # Free-standing two-wheelers.
        for _ in range(int(rng.integers(cfg.n_two_wheelers_range[0], cfg.n_two_wheelers_range[1] + 1))):
            name = "bicycle" if rng.uniform() < 0.7 else "motorcycle"
            col = rng.uniform(1, left_edge + 4) if rng.uniform() < 0.5 else rng.uniform(right_edge - 4, w - 1)
            row = rng.uniform(road_top_row, h - 2)
            _add(name, row, col, base_h=0.10, base_w=0.06, shape="rect", speed_range=(0.0, 0.3))

        # Poles with signs / lights.
        n_poles = int(rng.integers(cfg.n_poles_range[0], cfg.n_poles_range[1] + 1))
        n_signs = int(rng.integers(cfg.n_signs_range[0], cfg.n_signs_range[1] + 1))
        n_lights = int(rng.integers(cfg.n_lights_range[0], cfg.n_lights_range[1] + 1))
        pole_cols: List[float] = []
        for _ in range(n_poles):
            col = rng.uniform(2, left_edge + 4) if rng.uniform() < 0.5 else rng.uniform(right_edge - 4, w - 2)
            row = rng.uniform(road_top_row - 6, road_top_row + 6)
            pole_cols.append(col)
            _add("pole", row, col, base_h=0.30, base_w=0.012, shape="rect", speed_range=(0.0, 0.05))
        for i in range(n_signs):
            col = pole_cols[i % len(pole_cols)] if pole_cols else rng.uniform(2, w - 2)
            row = rng.uniform(horizon_row, road_top_row)
            _add("traffic sign", row, col, base_h=0.05, base_w=0.03, shape="rect", speed_range=(0.0, 0.05))
        for i in range(n_lights):
            col = pole_cols[(i + 1) % len(pole_cols)] if pole_cols else rng.uniform(2, w - 2)
            row = rng.uniform(horizon_row - 4, road_top_row - 2)
            _add("traffic light", row, col, base_h=0.06, base_w=0.02, shape="rect", speed_range=(0.0, 0.05))

        return objects

    # --------------------------------------------------------- painting ---
    def _paint_object(self, labels: np.ndarray, obj: SceneObject) -> None:
        if obj.shape == "person":
            self._paint_person(labels, obj)
        elif obj.shape == "ellipse":
            self._paint_ellipse(labels, obj.class_id, obj.center_row, obj.center_col, obj.height, obj.width)
        else:
            self._paint_rect(labels, obj.class_id, obj.center_row, obj.center_col, obj.height, obj.width)

    @staticmethod
    def _paint_rect(
        labels: np.ndarray, class_id: int, center_row: float, center_col: float,
        height: float, width: float,
    ) -> None:
        h, w = labels.shape
        top = int(round(center_row - height / 2))
        left = int(round(center_col - width / 2))
        bottom = top + max(1, int(round(height)))
        right = left + max(1, int(round(width)))
        top, bottom = max(0, top), min(h, bottom)
        left, right = max(0, left), min(w, right)
        if top < bottom and left < right:
            labels[top:bottom, left:right] = class_id

    @staticmethod
    def _paint_ellipse(
        labels: np.ndarray, class_id: int, center_row: float, center_col: float,
        height: float, width: float,
    ) -> None:
        h, w = labels.shape
        semi_r = max(1.0, height / 2)
        semi_c = max(1.0, width / 2)
        top = max(0, int(center_row - semi_r) - 1)
        bottom = min(h, int(center_row + semi_r) + 2)
        left = max(0, int(center_col - semi_c) - 1)
        right = min(w, int(center_col + semi_c) + 2)
        if top >= bottom or left >= right:
            return
        rows = np.arange(top, bottom).reshape(-1, 1)
        cols = np.arange(left, right).reshape(1, -1)
        mask = ((rows - center_row) / semi_r) ** 2 + ((cols - center_col) / semi_c) ** 2 <= 1.0
        labels[top:bottom, left:right][mask] = class_id

    def _paint_person(self, labels: np.ndarray, obj: SceneObject) -> None:
        """A person is a body rectangle with an elliptic head on top."""
        body_height = obj.height * 0.78
        body_center_row = obj.center_row + obj.height * 0.11
        self._paint_rect(labels, obj.class_id, body_center_row, obj.center_col, body_height, obj.width)
        head_radius = max(1.0, obj.width * 0.75)
        head_center_row = obj.center_row - obj.height / 2 + head_radius
        self._paint_ellipse(
            labels, obj.class_id, head_center_row, obj.center_col, head_radius * 2, head_radius * 2
        )
