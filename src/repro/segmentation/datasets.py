"""Dataset wrappers around the synthetic scene and sequence generators.

Two wrappers mirror the datasets used in the paper:

* :class:`CityscapesLikeDataset` — independent single frames with full ground
  truth, split into *train* and *val* the way the paper uses the Cityscapes
  validation set for the MetaSeg experiments of Section II and the
  decision-rule experiments of Section IV.
* :class:`KittiLikeDataset` — video sequences in which only a sparse subset
  of frames exposes ground truth (the paper has 29 sequences with 142 labelled
  frames out of ~12k).  This sparsity is what motivates the SMOTE and
  pseudo-ground-truth training compositions of Section III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from repro.api.registry import DATASETS
from repro.segmentation.labels import LabelSpace, cityscapes_label_space
from repro.segmentation.scene import Scene, SceneConfig, StreetSceneGenerator
from repro.segmentation.sequence import SceneSequence, SequenceConfig, SequenceGenerator
from repro.utils.rng import RandomState, as_rng


@dataclass
class SegmentationSample:
    """One image with ground truth and bookkeeping metadata."""

    image_id: str
    labels: np.ndarray
    scene: Optional[Scene] = None
    sequence_id: Optional[int] = None
    frame_index: Optional[int] = None
    has_ground_truth: bool = True

    @property
    def shape(self) -> tuple:
        """Spatial shape (H, W) of the sample."""
        return self.labels.shape


@dataclass
class CityscapesLikeDataset:
    """Synthetic single-frame dataset with a train/val split.

    Parameters
    ----------
    n_train, n_val:
        Number of generated scenes in each split.
    scene_config:
        Layout configuration forwarded to the scene generator.
    random_state:
        Master seed; the train and val splits use disjoint derived seeds.
    """

    n_train: int = 30
    n_val: int = 20
    scene_config: SceneConfig = field(default_factory=SceneConfig)
    label_space: LabelSpace = field(default_factory=cityscapes_label_space)
    random_state: RandomState = 0

    def __post_init__(self) -> None:
        if self.n_train < 0 or self.n_val < 0:
            raise ValueError("split sizes must be non-negative")
        rng = as_rng(self.random_state)
        self._train_generator = StreetSceneGenerator(
            config=self.scene_config,
            label_space=self.label_space,
            random_state=int(rng.integers(0, 2**31 - 1)),
        )
        self._val_generator = StreetSceneGenerator(
            config=self.scene_config,
            label_space=self.label_space,
            random_state=int(rng.integers(0, 2**31 - 1)),
        )
        self._train_cache: dict = {}
        self._val_cache: dict = {}

    # ------------------------------------------------------------------ ---
    @property
    def n_classes(self) -> int:
        """Number of semantic classes."""
        return self.label_space.n_classes

    def train_sample(self, index: int, cache: bool = True) -> SegmentationSample:
        """Return (and by default cache) training sample *index*."""
        return self._sample("train", index, cache=cache)

    def val_sample(self, index: int, cache: bool = True) -> SegmentationSample:
        """Return (and by default cache) validation sample *index*."""
        return self._sample("val", index, cache=cache)

    def _sample(self, split: str, index: int, cache: bool = True) -> SegmentationSample:
        """Build sample *index* of *split*.

        Scene ``index`` is generated from a seed derived from the split's
        master seed and ``index``, so a sample is bitwise identical whether
        it is served from the cache, regenerated (``cache=False``, the
        memory-bounded streaming walks) or built in another process (the
        sharded execution backend).
        """
        if split == "train":
            size, cached, generator = self.n_train, self._train_cache, self._train_generator
        elif split == "val":
            size, cached, generator = self.n_val, self._val_cache, self._val_generator
        else:
            raise ValueError(f"unknown split {split!r}")
        if not 0 <= index < size:
            raise IndexError(f"{split} index {index} out of range [0, {size})")
        if index in cached:
            return cached[index]
        scene = generator.generate(index)
        sample = SegmentationSample(
            image_id=f"{split}_{index:04d}",
            labels=scene.labels,
            scene=scene,
        )
        if cache:
            cached[index] = sample
        return sample

    def iter_train(self, cache: bool = True) -> Iterator[SegmentationSample]:
        """Iterate over all training samples (``cache=False`` streams them)."""
        for i in range(self.n_train):
            yield self.train_sample(i, cache=cache)

    def iter_val(self, cache: bool = True) -> Iterator[SegmentationSample]:
        """Iterate over all validation samples (``cache=False`` streams them)."""
        for i in range(self.n_val):
            yield self.val_sample(i, cache=cache)

    def train_samples(self) -> List[SegmentationSample]:
        """All training samples as a list."""
        return list(self.iter_train())

    def val_samples(self) -> List[SegmentationSample]:
        """All validation samples as a list."""
        return list(self.iter_val())


@dataclass
class KittiLikeDataset:
    """Synthetic video dataset with sparse ground-truth annotation.

    Every frame internally has ground truth (it is synthetic after all), but
    only frames at indices ``labeled_stride``, ``2*labeled_stride``, ... carry
    ``has_ground_truth=True``.  Training compositions that use "real" ground
    truth may only rely on those frames; the rest is available for pseudo
    ground truth generated by a reference network, exactly mirroring the
    paper's KITTI setup.
    """

    n_sequences: int = 6
    sequence_config: SequenceConfig = field(default_factory=SequenceConfig)
    labeled_stride: int = 5
    label_space: LabelSpace = field(default_factory=cityscapes_label_space)
    random_state: RandomState = 0

    def __post_init__(self) -> None:
        if self.n_sequences < 1:
            raise ValueError("n_sequences must be >= 1")
        if self.labeled_stride < 1:
            raise ValueError("labeled_stride must be >= 1")
        rng = as_rng(self.random_state)
        self._generator = SequenceGenerator(
            config=self.sequence_config,
            label_space=self.label_space,
            random_state=int(rng.integers(0, 2**31 - 1)),
        )
        self._cache: dict = {}

    @property
    def n_classes(self) -> int:
        """Number of semantic classes."""
        return self.label_space.n_classes

    @property
    def n_frames_per_sequence(self) -> int:
        """Number of frames in every sequence."""
        return self.sequence_config.n_frames

    def sequence(self, index: int, cache: bool = True) -> SceneSequence:
        """Return (and by default cache) sequence *index*.

        Sequences are generated from per-index derived seeds, so
        ``cache=False`` (memory-bounded streaming walks) and out-of-process
        regeneration (the sharded execution backend) are bitwise identical
        to the cached path.
        """
        if not 0 <= index < self.n_sequences:
            raise IndexError(f"sequence index {index} out of range [0, {self.n_sequences})")
        if index in self._cache:
            return self._cache[index]
        sequence = self._generator.generate(index)
        if cache:
            self._cache[index] = sequence
        return sequence

    def sequences(self) -> List[SceneSequence]:
        """All sequences as a list."""
        return [self.sequence(i) for i in range(self.n_sequences)]

    def labeled_frame_indices(self) -> List[int]:
        """Frame indices (within each sequence) that expose ground truth."""
        return list(range(self.labeled_stride - 1, self.n_frames_per_sequence, self.labeled_stride))

    def samples(self, sequence_index: int, cache: bool = True) -> List[SegmentationSample]:
        """Samples of one sequence with the sparse ground-truth flags set."""
        sequence = self.sequence(sequence_index, cache=cache)
        labeled = set(self.labeled_frame_indices())
        out: List[SegmentationSample] = []
        for frame_index, scene in enumerate(sequence.frames):
            out.append(
                SegmentationSample(
                    image_id=f"seq{sequence_index:03d}_frame{frame_index:04d}",
                    labels=scene.labels,
                    scene=scene,
                    sequence_id=sequence_index,
                    frame_index=frame_index,
                    has_ground_truth=frame_index in labeled,
                )
            )
        return out

    def all_samples(self) -> List[SegmentationSample]:
        """Samples of all sequences concatenated."""
        out: List[SegmentationSample] = []
        for i in range(self.n_sequences):
            out.extend(self.samples(i))
        return out

    def n_labeled_frames(self) -> int:
        """Total number of frames exposing ground truth across all sequences."""
        return self.n_sequences * len(self.labeled_frame_indices())


# ---------------------------------------------------------------- builders --
# Named dataset variants for the experiment API.  Builders receive the
# declarative DataConfig and the data seed and construct a substrate; the
# "_small" variants pin a reduced resolution (BuilderConfig-style presets for
# smoke runs and CI) while the base variants honour the configured size.

@DATASETS.register("cityscapes_like")
def build_cityscapes_like(data, seed: int) -> "CityscapesLikeDataset":
    """Single-frame Cityscapes-like substrate at the configured size."""
    return CityscapesLikeDataset(
        n_train=data.n_train,
        n_val=data.n_val,
        scene_config=SceneConfig(height=data.height, width=data.width),
        random_state=seed,
    )


@DATASETS.register("cityscapes_like_small")
def build_cityscapes_like_small(data, seed: int) -> "CityscapesLikeDataset":
    """Cityscapes-like substrate pinned to 64x128 scenes (smoke runs, CI)."""
    return CityscapesLikeDataset(
        n_train=data.n_train,
        n_val=data.n_val,
        scene_config=SceneConfig(height=64, width=128),
        random_state=seed,
    )


@DATASETS.register("kitti_like")
def build_kitti_like(data, seed: int) -> "KittiLikeDataset":
    """Sparsely labelled KITTI-like video substrate at the configured size."""
    return KittiLikeDataset(
        n_sequences=data.n_sequences,
        sequence_config=SequenceConfig(
            n_frames=data.n_frames,
            scene_config=SceneConfig(height=data.height, width=data.width),
        ),
        labeled_stride=data.labeled_stride,
        random_state=seed,
    )


@DATASETS.register("kitti_like_small")
def build_kitti_like_small(data, seed: int) -> "KittiLikeDataset":
    """KITTI-like video substrate pinned to 64x128 frames (smoke runs, CI)."""
    return KittiLikeDataset(
        n_sequences=data.n_sequences,
        sequence_config=SequenceConfig(
            n_frames=data.n_frames,
            scene_config=SceneConfig(height=64, width=128),
        ),
        labeled_stride=data.labeled_stride,
        random_state=seed,
    )


def global_frame_index(sequence_index: int, frame_index: int, frames_per_sequence: int) -> int:
    """Unique global index of a frame, used to seed per-frame network noise."""
    if frame_index < 0 or frame_index >= frames_per_sequence:
        raise ValueError("frame_index out of range")
    if sequence_index < 0:
        raise ValueError("sequence_index must be non-negative")
    return sequence_index * frames_per_sequence + frame_index
