"""Simulated semantic-segmentation network.

The paper's experiments feed the *softmax output* of DeepLabv3+ networks
(Xception65 and MobilenetV2 backbones) into MetaSeg.  This module provides a
stochastic stand-in: a degradation model that maps a ground-truth label map to
a per-pixel class probability field with an error and uncertainty structure
similar to a real network:

* **boundary softness** — class boundaries are blurred, producing elevated
  dispersion (entropy / low probability margin) along segment borders;
* **boundary jitter** — predicted boundaries deviate geometrically from the
  ground truth, so even correctly detected segments have IoU < 1;
* **segment confusions** — whole instances are occasionally relabelled to a
  confusable class (person ↔ rider, car ↔ truck, ...);
* **false negatives** — small instances are occasionally missed entirely and
  predicted as their surrounding background class, with the miss probability
  increasing for rare, small classes (the class-imbalance effect Section IV
  addresses);
* **false positives / hallucinations** — spurious small segments appear where
  the ground truth shows background;
* **uncertainty correlation** — erroneous regions receive systematically
  flatter softmax distributions plus noise, while a configurable fraction of
  errors stays confidently wrong.  This makes dispersion metrics informative
  but not perfect predictors of segment quality — the regime in which meta
  classification is a meaningful task.

Two presets, :func:`xception65_profile` and :func:`mobilenetv2_profile`,
mirror the stronger/weaker network pair of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import ndimage

from repro.api.registry import NETWORK_PROFILES
from repro.segmentation.labels import LabelSpace, cityscapes_label_space
from repro.utils.connected_components import connected_components
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_label_map


@dataclass(frozen=True)
class NetworkProfile:
    """Quality/degradation parameters of a simulated segmentation network."""

    name: str = "generic"
    miss_rate: float = 0.25
    """Base probability that a small instance is entirely overlooked."""
    miss_size_scale: float = 160.0
    """Pixel count at which the miss probability has decayed to ~37 % of the base."""
    confusion_rate: float = 0.12
    """Probability that an instance is predicted as a confusable class."""
    hallucination_rate: float = 1.5
    """Expected number of hallucinated (false-positive) segments per image."""
    hallucination_size: Tuple[int, int] = (3, 14)
    """Min/max edge length in pixels of hallucinated segments."""
    boundary_jitter: float = 1.6
    """Standard deviation in pixels of the smooth boundary displacement field."""
    peak_correct: float = 6.0
    """Logit peak on the predicted class where the prediction agrees with GT."""
    peak_wrong: float = 2.4
    """Logit peak on the predicted class where the prediction disagrees with GT."""
    wrong_gt_logit: float = 1.4
    """Logit mass placed on the true class inside erroneous regions."""
    background_logit: float = -2.0
    """Logit assigned to classes that are neither predicted nor true at a
    pixel.  Real networks assign very little probability mass to absent
    classes; the (negative) background logit controls how heavy that tail is,
    which in turn determines how aggressively the Maximum-Likelihood rule of
    Section IV promotes rare classes."""
    overconfident_error_rate: float = 0.18
    """Controls how confidently wrong the network is on erroneous segments.

    Every erroneous segment draws a confidence level from a Beta distribution
    whose mean increases with this rate; at level 1 the segment's output is
    indistinguishable from a correct segment, at level 0 it is maximally
    flat.  Larger rates therefore make false positives harder to detect."""
    logit_noise: float = 0.55
    """Standard deviation of i.i.d. Gaussian noise added to all logits."""
    smooth_sigma: float = 1.1
    """Gaussian smoothing (in pixels) applied to the logits (soft boundaries)."""
    uncertainty_blob_rate: float = 3.0
    """Expected number of spurious low-confidence regions per image.  These
    regions are *correctly* classified but receive a flattened softmax,
    mimicking aleatoric uncertainty (shadows, reflections, fine structures)
    that is unrelated to actual errors.  They are what keeps single-metric
    baselines (entropy only) clearly behind the full metric set."""
    uncertainty_blob_size: Tuple[int, int] = (8, 40)
    """Min/max edge length in pixels of the low-confidence regions."""
    uncertainty_blob_strength: float = 0.55
    """Multiplicative attenuation of the logits inside low-confidence regions
    (smaller values mean flatter distributions)."""
    confidence_field_amplitude: float = 0.35
    """Amplitude of a smooth, low-frequency multiplicative confidence field
    applied to all logits.  It models the fact that even correct predictions
    vary in confidence across the image (distance, lighting, clutter), which
    spreads the per-segment confidence of true positives and overlaps it with
    confidently-wrong false positives."""
    confidence_field_scale: int = 12
    """Spatial correlation length (in coarse grid cells) of the confidence field."""

    def __post_init__(self) -> None:
        for name in ("miss_rate", "confusion_rate", "overconfident_error_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in ("hallucination_rate", "boundary_jitter", "logit_noise", "smooth_sigma",
                     "miss_size_scale", "uncertainty_blob_rate"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.peak_correct <= 0 or self.peak_wrong <= 0:
            raise ValueError("logit peaks must be positive")
        if not 0.0 < self.uncertainty_blob_strength <= 1.0:
            raise ValueError("uncertainty_blob_strength must be in (0, 1]")
        if not 0.0 <= self.confidence_field_amplitude < 1.0:
            raise ValueError("confidence_field_amplitude must be in [0, 1)")
        if self.confidence_field_scale < 1:
            raise ValueError("confidence_field_scale must be >= 1")
        for name in ("hallucination_size", "uncertainty_blob_size"):
            lo, hi = getattr(self, name)
            if lo < 1 or hi < lo:
                raise ValueError(f"{name} must satisfy 1 <= lo <= hi")

    def with_overrides(self, **kwargs) -> "NetworkProfile":
        """Return a copy of the profile with some parameters replaced."""
        return replace(self, **kwargs)


@NETWORK_PROFILES.register("generic")
def generic_profile() -> NetworkProfile:
    """Default mid-quality profile (the NetworkProfile defaults)."""
    return NetworkProfile()


@NETWORK_PROFILES.register("xception65")
def xception65_profile() -> NetworkProfile:
    """Profile mimicking the stronger DeepLabv3+ Xception65 network."""
    return NetworkProfile(
        name="xception65",
        miss_rate=0.18,
        miss_size_scale=110.0,
        confusion_rate=0.08,
        hallucination_rate=9.0,
        hallucination_size=(3, 18),
        boundary_jitter=1.5,
        peak_correct=5.5,
        peak_wrong=2.8,
        wrong_gt_logit=1.6,
        background_logit=-2.5,
        overconfident_error_rate=0.55,
        logit_noise=0.75,
        smooth_sigma=1.0,
        uncertainty_blob_rate=3.0,
        uncertainty_blob_size=(8, 36),
        uncertainty_blob_strength=0.55,
        confidence_field_amplitude=0.4,
        confidence_field_scale=12,
    )


@NETWORK_PROFILES.register("mobilenetv2")
def mobilenetv2_profile() -> NetworkProfile:
    """Profile mimicking the weaker DeepLabv3+ MobilenetV2 network."""
    return NetworkProfile(
        name="mobilenetv2",
        miss_rate=0.30,
        miss_size_scale=190.0,
        confusion_rate=0.15,
        hallucination_rate=16.0,
        hallucination_size=(3, 22),
        boundary_jitter=2.4,
        peak_correct=4.5,
        peak_wrong=2.6,
        wrong_gt_logit=1.6,
        background_logit=-1.8,
        overconfident_error_rate=0.65,
        logit_noise=0.9,
        smooth_sigma=1.3,
        uncertainty_blob_rate=4.5,
        uncertainty_blob_size=(8, 44),
        uncertainty_blob_strength=0.5,
        confidence_field_amplitude=0.5,
        confidence_field_scale=10,
    )


class SimulatedSegmentationNetwork:
    """Stochastic degradation model acting as a segmentation network.

    Parameters
    ----------
    profile:
        Degradation/quality parameters; defaults to :func:`mobilenetv2_profile`.
    label_space:
        Semantic label space (defaults to the Cityscapes-like 19-class space).
    random_state:
        Master seed.  Prediction for image *index* is derived from the master
        seed and the index, so repeated inference on the same image is
        deterministic while different images receive independent noise.
    """

    def __init__(
        self,
        profile: Optional[NetworkProfile] = None,
        label_space: Optional[LabelSpace] = None,
        random_state: RandomState = 0,
    ) -> None:
        self.profile = profile or mobilenetv2_profile()
        self.label_space = label_space or cityscapes_label_space()
        rng = as_rng(random_state)
        self._master_seed = int(rng.integers(0, 2**31 - 1))

    # ------------------------------------------------------------------ API
    @property
    def n_classes(self) -> int:
        """Number of classes in the softmax output."""
        return self.label_space.n_classes

    def predict_probabilities(self, gt_labels: np.ndarray, index: int = 0) -> np.ndarray:
        """Return the simulated (H, W, C) softmax field for one image.

        Parameters
        ----------
        gt_labels:
            Ground-truth label map of the image (the degradation model uses it
            the way a real network uses the RGB image: as the source of the
            underlying scene content).
        index:
            Image identifier used to derive the per-image noise seed.
        """
        gt = check_label_map(gt_labels)
        rng = np.random.default_rng((self._master_seed, int(index)))
        intent, error_segments = self._build_intent(gt, rng)
        logits = self._build_logits(gt, intent, error_segments, rng)
        return _softmax(logits)

    def predict_labels(self, gt_labels: np.ndarray, index: int = 0) -> np.ndarray:
        """Return the MAP (argmax) prediction for one image."""
        probs = self.predict_probabilities(gt_labels, index=index)
        return np.argmax(probs, axis=2).astype(np.int64)

    def __call__(self, gt_labels: np.ndarray, index: int = 0) -> np.ndarray:
        return self.predict_probabilities(gt_labels, index=index)

    # ------------------------------------------------------- degradation --
    def _build_intent(
        self, gt: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, List[Dict[str, object]]]:
        """Construct the predicted-class intent map and record erroneous segments.

        The intent map is what the network "wants" to predict before logits,
        noise and smoothing are applied.  ``error_segments`` lists regions
        that deviate from the ground truth together with a flag telling
        whether the output there should stay confident (overconfident errors).
        """
        profile = self.profile
        ls = self.label_space
        intent = gt.copy()
        error_segments: List[Dict[str, object]] = []

        # --- instance-level misses and confusions --------------------------
        thing_ids = set(ls.thing_ids())
        components, n_components = connected_components(gt, connectivity=8, background=-1)
        for comp_id in range(1, n_components + 1):
            mask = components == comp_id
            class_id = int(gt[mask][0])
            if class_id not in thing_ids:
                continue
            size = int(mask.sum())
            miss_probability = profile.miss_rate * float(np.exp(-size / profile.miss_size_scale))
            draw = rng.uniform()
            if draw < miss_probability:
                replacement = self._surrounding_class(gt, mask)
                intent[mask] = replacement
                error_segments.append(
                    {"mask": mask, "kind": "miss",
                     "confidence": self._error_confidence(rng)}
                )
            elif draw < miss_probability + profile.confusion_rate:
                confusable = ls.confusable_classes(class_id)
                new_class = int(confusable[int(rng.integers(0, len(confusable)))])
                intent[mask] = new_class
                error_segments.append(
                    {"mask": mask, "kind": "confusion",
                     "confidence": self._error_confidence(rng)}
                )

        # --- boundary jitter -------------------------------------------------
        if profile.boundary_jitter > 0:
            intent = self._jitter_boundaries(intent, rng, profile.boundary_jitter)

        # --- hallucinated segments ------------------------------------------
        # Hallucinations preferentially *copy the shape of a real instance* and
        # paste it at a shifted position: the resulting false positives share
        # the geometry statistics of genuine segments, so size alone cannot
        # separate them (as in real segmentation networks).  When the image
        # contains no instances, plain rectangles are used as a fallback.
        n_hallucinations = int(rng.poisson(profile.hallucination_rate))
        h, w = gt.shape
        thing_list = ls.thing_ids()
        template_ids = [
            comp_id
            for comp_id in range(1, n_components + 1)
            if int(gt[components == comp_id][0]) in thing_ids
        ]
        for _ in range(n_hallucinations):
            mask = np.zeros_like(gt, dtype=bool)
            if template_ids and rng.uniform() < 0.85:
                template = int(template_ids[int(rng.integers(0, len(template_ids)))])
                template_mask = components == template
                class_id = int(gt[template_mask][0])
                rows, cols = np.nonzero(template_mask)
                shift_r = int(rng.integers(-h // 3, h // 3 + 1))
                shift_c = int(rng.integers(-w // 3, w // 3 + 1))
                new_rows = rows + shift_r
                new_cols = cols + shift_c
                keep = (new_rows >= 0) & (new_rows < h) & (new_cols >= 0) & (new_cols < w)
                if keep.sum() < 4:
                    continue
                mask[new_rows[keep], new_cols[keep]] = True
            else:
                size_lo, size_hi = profile.hallucination_size
                seg_h = int(rng.integers(size_lo, size_hi + 1))
                seg_w = int(rng.integers(size_lo, size_hi + 1))
                top = int(rng.integers(0, max(1, h - seg_h)))
                left = int(rng.integers(0, max(1, w - seg_w)))
                class_id = int(thing_list[int(rng.integers(0, len(thing_list)))])
                mask[top : top + seg_h, left : left + seg_w] = True
            # Do not hallucinate on top of an existing instance of the same class;
            # that would not be a false positive.
            if np.any(gt[mask] == class_id):
                continue
            intent[mask] = class_id
            error_segments.append(
                {"mask": mask, "kind": "hallucination",
                 "confidence": self._error_confidence(rng)}
            )
        return intent, error_segments

    def _error_confidence(self, rng: np.random.Generator) -> float:
        """Per-error confidence level in [0, 1] (1 = confidently wrong)."""
        rate = self.profile.overconfident_error_rate
        # Beta distribution whose mean tracks the overconfidence rate while
        # keeping substantial spread, so erroneous segments cover the whole
        # range from obviously uncertain to indistinguishable from correct.
        alpha = 0.6 + 2.4 * rate
        beta = 0.6 + 2.4 * (1.0 - rate)
        return float(rng.beta(alpha, beta))

    @staticmethod
    def _surrounding_class(gt: np.ndarray, mask: np.ndarray) -> int:
        """Most frequent ground-truth class in a dilated ring around *mask*."""
        dilated = ndimage.binary_dilation(mask, iterations=2)
        ring = dilated & ~mask
        if not np.any(ring):
            ring = ~mask
        values = gt[ring]
        values = values[values >= 0]
        if values.size == 0:
            return 0
        return int(np.bincount(values).argmax())

    @staticmethod
    def _jitter_boundaries(labels: np.ndarray, rng: np.random.Generator, magnitude: float) -> np.ndarray:
        """Warp the label map with a smooth random displacement field."""
        h, w = labels.shape
        coarse_shape = (max(2, h // 16), max(2, w // 16))
        flow_r = ndimage.zoom(rng.normal(0.0, 1.0, coarse_shape), (h / coarse_shape[0], w / coarse_shape[1]), order=1)
        flow_c = ndimage.zoom(rng.normal(0.0, 1.0, coarse_shape), (h / coarse_shape[0], w / coarse_shape[1]), order=1)
        flow_r = flow_r[:h, :w] * magnitude
        flow_c = flow_c[:h, :w] * magnitude
        rows, cols = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")
        src_rows = np.clip(np.round(rows + flow_r), 0, h - 1).astype(np.int64)
        src_cols = np.clip(np.round(cols + flow_c), 0, w - 1).astype(np.int64)
        return labels[src_rows, src_cols]

    # ------------------------------------------------------------ logits --
    def _build_logits(
        self,
        gt: np.ndarray,
        intent: np.ndarray,
        error_segments: List[Dict[str, object]],
        rng: np.random.Generator,
    ) -> np.ndarray:
        profile = self.profile
        n_classes = self.n_classes
        h, w = gt.shape
        correct = intent == gt

        peak = np.where(correct, profile.peak_correct, profile.peak_wrong).astype(np.float64)
        gt_logit = np.where(correct, 0.0, profile.wrong_gt_logit).astype(np.float64)
        # Confidently-wrong segments interpolate towards the correct-pixel
        # output: peak grows, residual mass on the true class shrinks.  At
        # confidence 1 the erroneous segment is locally indistinguishable from
        # a correct one, which is what bounds meta-classification performance.
        for segment in error_segments:
            confidence = float(segment["confidence"])
            mask = segment["mask"]
            peak[mask] = profile.peak_wrong + confidence * (profile.peak_correct - profile.peak_wrong)
            gt_logit[mask] = profile.wrong_gt_logit * (1.0 - confidence)

        logits = np.full((h, w, n_classes), profile.background_logit, dtype=np.float64)
        rows, cols = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")
        valid_intent = np.clip(intent, 0, n_classes - 1)
        logits[rows, cols, valid_intent] = peak
        # Inside erroneous regions, the true class keeps some logit mass which
        # flattens the distribution there (higher entropy, smaller margin).
        wrong = ~correct & (gt >= 0)
        logits[rows[wrong], cols[wrong], gt[wrong]] = gt_logit[wrong]

        logits += rng.normal(0.0, profile.logit_noise, size=logits.shape)
        # Confidence attenuation only shrinks *positive* logits: an uncertain
        # network spreads mass among the few locally plausible classes, it
        # does not hand probability to all absent classes equally.  (Raising
        # the tail of every class would make the ML rule of Section IV flip
        # entire low-confidence regions to the rarest class, which real
        # networks do not exhibit to that extent.)
        field = self._confidence_field(h, w, rng)[..., None]
        logits = np.where(logits > 0, logits * field, logits)
        logits = self._apply_uncertainty_blobs(logits, rng)
        if profile.smooth_sigma > 0:
            logits = ndimage.gaussian_filter(logits, sigma=(profile.smooth_sigma, profile.smooth_sigma, 0))
        return logits

    def _confidence_field(self, height: int, width: int, rng: np.random.Generator) -> np.ndarray:
        """Smooth multiplicative confidence field in (0, 1].

        The field is 1 minus a low-frequency non-negative noise pattern of the
        configured amplitude; it attenuates the logits everywhere, regardless
        of correctness, thereby spreading the per-segment confidence of
        correct segments.
        """
        profile = self.profile
        if profile.confidence_field_amplitude <= 0:
            return np.ones((height, width), dtype=np.float64)
        cells = profile.confidence_field_scale
        coarse = rng.uniform(0.0, 1.0, size=(max(2, height // cells), max(2, width // cells)))
        field = ndimage.zoom(
            coarse,
            (height / coarse.shape[0], width / coarse.shape[1]),
            order=1,
        )[:height, :width]
        # Pad in the rare case zoom under-shoots the requested size by a pixel.
        if field.shape != (height, width):
            field = np.pad(
                field,
                ((0, height - field.shape[0]), (0, width - field.shape[1])),
                mode="edge",
            )
        return 1.0 - profile.confidence_field_amplitude * field

    def _apply_uncertainty_blobs(self, logits: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Attenuate the logits inside random regions (uncertain but correct).

        These regions mimic aleatoric uncertainty that does not correspond to
        prediction errors; they keep pure dispersion baselines (entropy only)
        from separating false positives perfectly.
        """
        profile = self.profile
        if profile.uncertainty_blob_rate <= 0:
            return logits
        h, w = logits.shape[:2]
        n_blobs = int(rng.poisson(profile.uncertainty_blob_rate))
        for _ in range(n_blobs):
            size_lo, size_hi = profile.uncertainty_blob_size
            blob_h = int(rng.integers(size_lo, size_hi + 1))
            blob_w = int(rng.integers(size_lo, size_hi + 1))
            top = int(rng.integers(0, max(1, h - blob_h)))
            left = int(rng.integers(0, max(1, w - blob_w)))
            strength = rng.uniform(profile.uncertainty_blob_strength, 1.0)
            window = logits[top : top + blob_h, left : left + blob_w, :]
            logits[top : top + blob_h, left : left + blob_w, :] = np.where(
                window > 0, window * strength, window
            )
        return logits


def _softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)
