"""Simulated semantic-segmentation substrate.

The paper evaluates on Cityscapes (single frames) and KITTI (video) with two
DeepLabv3+ networks.  Neither the datasets nor a deep-learning framework are
available offline, so this subpackage provides the synthetic stand-ins
described in ``DESIGN.md``:

* :mod:`repro.segmentation.labels` — a Cityscapes-like 19-class label space;
* :mod:`repro.segmentation.scene` — a procedural street-scene ground-truth
  generator with class imbalance and position-dependent priors;
* :mod:`repro.segmentation.sequence` — animated scenes → video sequences;
* :mod:`repro.segmentation.network` — a stochastic degradation model that
  turns ground truth into a per-pixel softmax field, mimicking the error and
  uncertainty structure of a real segmentation network;
* :mod:`repro.segmentation.datasets` — dataset wrappers with train/val splits.

MetaSeg itself (``repro.core``) never inspects RGB data; it consumes only the
softmax field and the ground truth, so these stand-ins exercise exactly the
same code paths as the paper's setup.
"""

from repro.segmentation.labels import (
    LabelSpec,
    LabelSpace,
    cityscapes_label_space,
    HUMAN_CATEGORY,
)
from repro.segmentation.scene import Scene, SceneConfig, SceneObject, StreetSceneGenerator
from repro.segmentation.sequence import SequenceConfig, SequenceGenerator, SceneSequence
from repro.segmentation.network import (
    NetworkProfile,
    SimulatedSegmentationNetwork,
    xception65_profile,
    mobilenetv2_profile,
)
from repro.segmentation.datasets import (
    CityscapesLikeDataset,
    KittiLikeDataset,
    SegmentationSample,
)

__all__ = [
    "LabelSpec",
    "LabelSpace",
    "cityscapes_label_space",
    "HUMAN_CATEGORY",
    "Scene",
    "SceneConfig",
    "SceneObject",
    "StreetSceneGenerator",
    "SequenceConfig",
    "SequenceGenerator",
    "SceneSequence",
    "NetworkProfile",
    "SimulatedSegmentationNetwork",
    "xception65_profile",
    "mobilenetv2_profile",
    "CityscapesLikeDataset",
    "KittiLikeDataset",
    "SegmentationSample",
]
