"""Cityscapes-like semantic label space.

The paper's experiments use the 19 Cityscapes training classes grouped into
categories (flat, construction, object, nature, sky, human, vehicle).  The
false-negative experiments of Section IV focus on the *human* category
(person + rider).  This module defines an equivalent label space for the
synthetic substrate, including colours for visualisation and an
``is_thing`` flag distinguishing instance-like classes from background
("stuff") classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class LabelSpec:
    """Description of one semantic class."""

    train_id: int
    name: str
    category: str
    color: Tuple[int, int, int]
    is_thing: bool
    typical_relative_size: float
    """Rough fraction of image pixels a single instance of this class covers.

    Only used by the synthetic scene generator to size objects plausibly; it
    has no influence on the MetaSeg algorithms themselves.
    """
    raw_id: int = -1
    """Raw label id of the class in on-disk Cityscapes ``gtFine`` annotation
    files (``*_gtFine_labelIds.png``).  Raw ids are the stable file format;
    the consecutive ``train_id`` values are the in-memory representation, so
    disk readers remap raw → train through :meth:`LabelSpace.raw_id_map`.
    ``-1`` marks a class without a raw-file id (synthetic-only spaces)."""


_CITYSCAPES_SPECS: List[LabelSpec] = [
    LabelSpec(0, "road", "flat", (128, 64, 128), False, 0.30, raw_id=7),
    LabelSpec(1, "sidewalk", "flat", (244, 35, 232), False, 0.08, raw_id=8),
    LabelSpec(2, "building", "construction", (70, 70, 70), False, 0.20, raw_id=11),
    LabelSpec(3, "wall", "construction", (102, 102, 156), False, 0.02, raw_id=12),
    LabelSpec(4, "fence", "construction", (190, 153, 153), False, 0.02, raw_id=13),
    LabelSpec(5, "pole", "object", (153, 153, 153), True, 0.002, raw_id=17),
    LabelSpec(6, "traffic light", "object", (250, 170, 30), True, 0.001, raw_id=19),
    LabelSpec(7, "traffic sign", "object", (220, 220, 0), True, 0.0015, raw_id=20),
    LabelSpec(8, "vegetation", "nature", (107, 142, 35), False, 0.10, raw_id=21),
    LabelSpec(9, "terrain", "nature", (152, 251, 152), False, 0.03, raw_id=22),
    LabelSpec(10, "sky", "sky", (70, 130, 180), False, 0.15, raw_id=23),
    LabelSpec(11, "person", "human", (220, 20, 60), True, 0.004, raw_id=24),
    LabelSpec(12, "rider", "human", (255, 0, 0), True, 0.003, raw_id=25),
    LabelSpec(13, "car", "vehicle", (0, 0, 142), True, 0.02, raw_id=26),
    LabelSpec(14, "truck", "vehicle", (0, 0, 70), True, 0.03, raw_id=27),
    LabelSpec(15, "bus", "vehicle", (0, 60, 100), True, 0.035, raw_id=28),
    LabelSpec(16, "train", "vehicle", (0, 80, 100), True, 0.04, raw_id=31),
    LabelSpec(17, "motorcycle", "vehicle", (0, 0, 230), True, 0.003, raw_id=32),
    LabelSpec(18, "bicycle", "vehicle", (119, 11, 32), True, 0.003, raw_id=33),
]

#: Category name used throughout Section IV of the paper ("class human").
HUMAN_CATEGORY = "human"

#: Conventional id for pixels without ground truth (white regions in Fig. 1).
IGNORE_ID = -1


@dataclass(frozen=True)
class LabelSpace:
    """An ordered collection of :class:`LabelSpec` objects.

    Provides lookups by name, train id and category, mirroring the Cityscapes
    ``labels.py`` helper the original MetaSeg code relies on.
    """

    specs: Tuple[LabelSpec, ...]
    _by_name: Dict[str, LabelSpec] = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        ids = [spec.train_id for spec in self.specs]
        if ids != list(range(len(self.specs))):
            raise ValueError("train ids must be consecutive integers starting at 0")
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            raise ValueError("label names must be unique")
        object.__setattr__(self, "_by_name", {spec.name: spec for spec in self.specs})

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def __getitem__(self, train_id: int) -> LabelSpec:
        return self.specs[train_id]

    # -- lookups -----------------------------------------------------------
    @property
    def n_classes(self) -> int:
        """Number of semantic classes."""
        return len(self.specs)

    def by_name(self, name: str) -> LabelSpec:
        """Return the spec with the given class name."""
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise KeyError(f"unknown class name {name!r}") from exc

    def id_of(self, name: str) -> int:
        """Train id of the class with the given name."""
        return self.by_name(name).train_id

    def names(self) -> List[str]:
        """All class names in train-id order."""
        return [spec.name for spec in self.specs]

    def category_of(self, train_id: int) -> str:
        """Category name of a train id."""
        return self.specs[train_id].category

    def ids_in_category(self, category: str) -> List[int]:
        """Train ids belonging to the given category (e.g. ``"human"``)."""
        ids = [spec.train_id for spec in self.specs if spec.category == category]
        if not ids:
            raise KeyError(f"unknown category {category!r}")
        return ids

    def categories(self) -> List[str]:
        """Distinct category names in first-appearance order."""
        seen: List[str] = []
        for spec in self.specs:
            if spec.category not in seen:
                seen.append(spec.category)
        return seen

    def thing_ids(self) -> List[int]:
        """Train ids of instance-like ("thing") classes."""
        return [spec.train_id for spec in self.specs if spec.is_thing]

    def stuff_ids(self) -> List[int]:
        """Train ids of background ("stuff") classes."""
        return [spec.train_id for spec in self.specs if not spec.is_thing]

    def color_map(self) -> Dict[int, Tuple[int, int, int]]:
        """Mapping train id → RGB colour (for PPM visualisations)."""
        return {spec.train_id: spec.color for spec in self.specs}

    # -- raw (on-disk) id mapping ------------------------------------------
    def raw_id_map(self) -> Dict[int, int]:
        """Mapping raw (on-disk) label id → train id.

        Raw ids not present in the mapping — "unlabeled", "ego vehicle",
        "license plate", every other Cityscapes void class — decode to the
        ignore id :data:`IGNORE_ID`; disk readers apply exactly this rule.
        Classes without a raw id (``raw_id == -1``) are skipped, so a
        synthetic-only label space yields an empty map.
        """
        mapping: Dict[int, int] = {}
        for spec in self.specs:
            if spec.raw_id < 0:
                continue
            if spec.raw_id in mapping:
                raise ValueError(
                    f"raw id {spec.raw_id} is claimed by two classes "
                    f"({self.specs[mapping[spec.raw_id]].name!r} and {spec.name!r})"
                )
            mapping[spec.raw_id] = spec.train_id
        return mapping

    def train_id_to_raw(self, train_id: int) -> int:
        """Raw (on-disk) label id of a train id; ignore encodes as raw 0.

        Raw id 0 is the Cityscapes "unlabeled" class, which :meth:`raw_id_map`
        decodes back to :data:`IGNORE_ID` — so a label map round-trips
        through the disk encoding bit-exactly.
        """
        if train_id == IGNORE_ID:
            return 0
        raw = self.specs[train_id].raw_id
        if raw < 0:
            raise ValueError(
                f"class {self.specs[train_id].name!r} has no raw (on-disk) label id"
            )
        return raw

    def confusable_classes(self, train_id: int) -> List[int]:
        """Classes a segmentation network plausibly confuses with *train_id*.

        Confusions happen predominantly within a category (person ↔ rider,
        car ↔ truck ↔ bus, ...) plus a small set of well-known cross-category
        confusions (terrain ↔ vegetation, sidewalk ↔ road, wall ↔ building).
        Used by the simulated network's degradation model.
        """
        spec = self.specs[train_id]
        same_category = [
            other.train_id
            for other in self.specs
            if other.category == spec.category and other.train_id != train_id
        ]
        extra: Dict[str, Sequence[str]] = {
            "road": ("sidewalk", "terrain"),
            "sidewalk": ("road", "terrain"),
            "terrain": ("vegetation", "sidewalk"),
            "vegetation": ("terrain", "building"),
            "wall": ("building", "fence"),
            "fence": ("wall", "vegetation"),
            "building": ("wall", "vegetation"),
            "pole": ("traffic sign", "building"),
            "traffic light": ("traffic sign", "pole"),
            "traffic sign": ("pole", "building"),
            "person": ("rider", "bicycle"),
            "rider": ("person", "motorcycle"),
            "bicycle": ("motorcycle", "person"),
            "motorcycle": ("bicycle", "rider"),
            "sky": ("building",),
        }
        extra_ids = [self.id_of(name) for name in extra.get(spec.name, ())]
        combined: List[int] = []
        for candidate in same_category + extra_ids:
            if candidate != train_id and candidate not in combined:
                combined.append(candidate)
        if not combined:
            # Fall back to the class most similar in typical size.
            others = sorted(
                (o for o in self.specs if o.train_id != train_id),
                key=lambda o: abs(o.typical_relative_size - spec.typical_relative_size),
            )
            combined = [others[0].train_id]
        return combined


def cityscapes_label_space() -> LabelSpace:
    """Return the 19-class Cityscapes-like label space used by the paper."""
    return LabelSpace(specs=tuple(_CITYSCAPES_SPECS))
