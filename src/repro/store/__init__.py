"""Content-addressed result store (cache) for experiment results.

Because every :class:`~repro.api.runner.ExperimentReport` and every stage-1
shard payload is a pure, bitwise-deterministic function of its
:class:`~repro.api.config.ExperimentConfig`, results can be cached by a
stable hash of the config and reused across runs and sweeps: a re-run of an
unchanged config becomes an O(lookup) read, and a sweep that only changes
protocol-side fields (e.g. the meta-model) reuses every extraction shard.

Two layers:

* :mod:`repro.store.keys` — canonical config hashing (stable JSON
  canonicalisation + code-version salt) at two granularities: whole-report
  keys and stage-1 shard keys scoped to the fields that influence the shard.
* :mod:`repro.store.store` — the filesystem store: atomic temp-file+rename
  writes, provenance sidecars (timestamps live outside the hashed payload),
  digest-verified self-healing reads, eviction helpers.

Wire-up: ``Runner(store=ResultStore())`` memoises whole reports and hands
the store to the execution backend for per-shard caching; the sweep driver
(:mod:`repro.sweep`) does this by default.  Cached results are bitwise
identical to fresh ones — enforced by ``tests/test_store.py`` and
``benchmarks/bench_sweep_cache.py``.
"""

from repro.store.fits import FitCache
from repro.store.keys import (
    CACHE_FORMAT,
    canonical_json,
    content_key,
    model_key,
    model_payload,
    priors_key,
    report_key,
    shard_key,
    stage1_payload,
    version_salt,
)
from repro.store.store import (
    CACHE_DIR_ENV,
    ResultStore,
    StoreError,
    default_cache_root,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_FORMAT",
    "FitCache",
    "ResultStore",
    "StoreError",
    "canonical_json",
    "content_key",
    "default_cache_root",
    "model_key",
    "model_payload",
    "priors_key",
    "report_key",
    "shard_key",
    "stage1_payload",
    "version_salt",
]
