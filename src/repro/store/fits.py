"""Fit-level caching: reuse fitted meta-models across protocol re-runs.

The evaluation protocols (Table I, the time-dynamic protocol) fit many small
meta-models per run.  Those fits are pure functions of (stage-1 extraction
payload, model constructor parameters, split descriptor): the model's internal
RNG is derived from the per-run split seed, never from a shared protocol
stream, so loading a previously fitted model instead of re-fitting is
RNG-stream-neutral and bitwise identical.  :class:`FitCache` exploits that by
keying each fit on exactly those three components and persisting the fitted
state (:meth:`to_state`) through the :class:`~repro.store.store.ResultStore`.

A store-backed sweep that varies only evaluation-side fields (``n_runs``,
``train_fraction``, model lists) therefore reuses not just extraction shards
but every previously performed meta-model fit.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.store.keys import content_key, stage1_payload
from repro.store.store import ResultStore, StoreError


class FitCache:
    """Store-backed cache of fitted meta-models for one experiment config.

    Parameters
    ----------
    store:
        The backing :class:`ResultStore`.
    config_dict:
        The experiment config dict; only its stage-1 payload enters the fit
        keys (protocol-side fields cannot change what a fit produces given
        the same split descriptor).
    """

    def __init__(self, store: ResultStore, config_dict: Dict[str, object]) -> None:
        self.store = store
        self._stage1 = stage1_payload(config_dict)
        self._kind = config_dict["kind"]
        self.counters = {"hits": 0, "misses": 0}

    # ------------------------------------------------------------------ ---
    @staticmethod
    def supports(model: object) -> bool:
        """Whether *model* exposes the state protocol needed for caching.

        Custom registry entries may return plain estimators without state
        support; those fall back to fitting in place.
        """
        return (
            callable(getattr(model, "param_state", None))
            and callable(getattr(model, "to_state", None))
            and callable(getattr(model, "fit", None))
            and callable(getattr(type(model), "from_state", None))
        )

    def fit_key(self, model: object, split: Dict[str, object]) -> str:
        """Cache key of one fit: (stage-1 payload, model identity, split)."""
        return content_key(
            "fit",
            {"stage1": self._stage1, "model": model.param_state(), "split": split},
        )

    def fit_or_load(self, model: object, train, split: Dict[str, object]):
        """Return a fitted model: loaded from the store, or fitted and stored.

        *split* must describe the training split deterministically (protocol
        name, split seed, fractions, ...) — it is the only thing besides the
        model parameters that distinguishes fits on one extraction payload.
        """
        key = self.fit_key(model, split)
        state = self.store.get(key, codec="json")
        if state is not None:
            try:
                loaded = type(model).from_state(state)
            except (KeyError, TypeError, ValueError):
                loaded = None  # stale/foreign payload: self-heal by re-fitting
            if loaded is not None:
                self.counters["hits"] += 1
                return loaded
        model.fit(train)
        self.counters["misses"] += 1
        try:
            self.store.put(
                key,
                model.to_state(),
                codec="json",
                provenance={"type": "fit", "kind": self._kind, "split": split},
            )
        except (StoreError, OSError):
            pass  # caching is best-effort; the fit itself succeeded
        return model


__all__ = ["FitCache"]
