"""Filesystem-backed content-addressed result store.

A :class:`ResultStore` maps a content key (:mod:`repro.store.keys`) to one
serialised payload on disk.  The layout under the store root is::

    <root>/objects/<kk>/<key>.payload     # the payload bytes (hashed content)
    <root>/objects/<kk>/<key>.meta.json   # index sidecar (provenance)

where ``<kk>`` is the first two hex digits of the key (keeps directories
small).  The sidecar carries everything that must stay *outside* the hashed
payload — creation timestamp, payload digest/size/codec, the code-version
salt and free-form provenance (config hash, index range, experiment kind) —
so equal configs always produce bitwise-equal payload files.

Durability and correctness guarantees:

* **Atomic writes** — payload and sidecar are written to a temp file in the
  target directory and ``os.replace``-d into place, so readers never observe
  a half-written entry; the sidecar is written last and acts as the commit
  marker.
* **Self-healing reads** — :meth:`ResultStore.get` verifies the sidecar's
  SHA-256 digest against the payload bytes and treats any mismatch,
  truncation, missing sidecar or undecodable payload as a *miss* (evicting
  the broken entry) so corruption degrades to recomputation, never to a
  crash or a wrong result.
* **Concurrent use** — there is no global index file to contend on; two
  processes racing to publish the same key both write equal payloads and the
  last rename wins.
* **LRU lifecycle** — every hit stamps ``last_access_unix`` into the sidecar
  (best-effort, atomically), and :meth:`ResultStore.prune` evicts by that
  recency (creation time for never-read entries), so hot entries survive;
  :meth:`ResultStore.evict` removes the payload before the sidecar and only
  reports success when the entry is fully gone — a partial deletion leaves a
  visible, retryable entry rather than an invisible orphan payload.

Payload codecs: ``"json"`` for plain-dict payloads (experiment reports) and
``"pickle"`` for the numpy-laden stage-1 shard payloads (which already cross
process boundaries, so picklability is guaranteed).  The store only ever
unpickles files it wrote itself under the local cache root — treat the cache
directory with the same trust as the working tree.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.metrics import METRICS
from repro.store.keys import version_salt

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_root() -> Path:
    """The store root used when none is given.

    ``$REPRO_CACHE_DIR`` when set (and non-empty), else
    ``~/.cache/repro`` (``$XDG_CACHE_HOME/repro`` when that is set).
    """
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write *data* to *path* via temp-file + rename (atomic on POSIX)."""
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), prefix=f".{path.name}.")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _sha256(data: bytes) -> str:
    import hashlib

    return hashlib.sha256(data).hexdigest()


class StoreError(ValueError):
    """Misuse of the result store (bad key / unknown codec)."""


class ResultStore:
    """Content-addressed result cache rooted at a directory.

    Parameters
    ----------
    root:
        Cache directory; created lazily on first :meth:`put`.  Defaults to
        :func:`default_cache_root` (``$REPRO_CACHE_DIR`` override).
    """

    #: Supported payload codecs (name -> (encode, decode)).
    #:
    #: The json codec deliberately differs from the strict key canonicaliser
    #: (:func:`repro.store.keys.canonical_json`): payloads are never hashed
    #: for addressing, so they keep the producer's dict order (a rehydrated
    #: report prints exactly like a fresh one) and allow NaN/Infinity (a
    #: report with a non-finite metric must cache, not fail after computing).
    #: The bytes are still deterministic — dict construction order is.
    CODECS = {
        "json": (
            lambda payload: json.dumps(
                payload, separators=(",", ":"), ensure_ascii=True
            ).encode("ascii"),
            lambda data: json.loads(data.decode("ascii")),
        ),
        "pickle": (
            lambda payload: pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
            lambda data: pickle.loads(data),
        ),
    }

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()

    def __repr__(self) -> str:
        return f"ResultStore(root={str(self.root)!r})"

    # ------------------------------------------------------------------ paths
    @staticmethod
    def _check_key(key: str) -> str:
        if not isinstance(key, str) or len(key) < 8 or any(
            c not in "0123456789abcdef" for c in key
        ):
            raise StoreError(f"store keys are lowercase hex digests, got {key!r}")
        return key

    def _payload_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.payload"

    def _meta_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.meta.json"

    # ------------------------------------------------------------------- I/O
    def put(
        self,
        key: str,
        payload: object,
        codec: str = "json",
        provenance: Optional[Dict[str, object]] = None,
    ) -> None:
        """Publish *payload* under *key* (atomically; overwrites any entry).

        ``provenance`` is free-form index metadata (config hash, experiment
        kind, index range, ...) recorded in the sidecar only — it never
        influences the payload bytes or the key.
        """
        self._check_key(key)
        if codec not in self.CODECS:
            raise StoreError(
                f"unknown payload codec {codec!r}; available: {', '.join(self.CODECS)}"
            )
        encode, _ = self.CODECS[codec]
        data = encode(payload)
        meta = {
            "key": key,
            "codec": codec,
            "size_bytes": len(data),
            "sha256": _sha256(data),
            "version_salt": version_salt(),
            "created_unix": time.time(),  # repro: allow[det-wallclock] -- created_unix sidecar metadata, excluded from keys and payloads
            "provenance": dict(provenance or {}),
        }
        payload_path = self._payload_path(key)
        payload_path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_bytes(payload_path, data)
        # Sidecar last: its presence marks the entry complete.
        _atomic_write_bytes(
            self._meta_path(key),
            (json.dumps(meta, sort_keys=True, indent=2) + "\n").encode("ascii"),
        )
        METRICS.counter("store.put.count").inc()
        METRICS.counter("store.put.bytes").inc(len(data))

    def get(self, key: str, codec: str = "json") -> Optional[object]:
        """Return the payload stored under *key*, or ``None`` on a miss.

        Incomplete, corrupted or codec-mismatched entries are evicted and
        reported as a miss, so callers can always fall back to recomputing.
        """
        self._check_key(key)
        payload_path = self._payload_path(key)
        meta_path = self._meta_path(key)
        try:
            meta_text = meta_path.read_text()
        except FileNotFoundError:
            # Plain miss: nothing committed (the sidecar is the commit
            # marker and it is written last).  Evicting here would race a
            # concurrent put of the same key — a miss read before the
            # publish must not destroy the entry right after it lands.
            METRICS.counter("store.get.misses").inc()
            return None
        except OSError:
            self.evict(key)
            METRICS.counter("store.get.misses").inc()
            return None
        try:
            meta = json.loads(meta_text)
            data = payload_path.read_bytes()
        except (OSError, ValueError):
            # Committed but broken (unreadable sidecar JSON, or a payload
            # missing behind a live sidecar — an interrupted evict): safe
            # to self-heal, because put writes the payload before the
            # sidecar, so a readable sidecar never means publish-in-flight.
            self.evict(key)
            METRICS.counter("store.get.misses").inc()
            return None
        if (
            not isinstance(meta, dict)
            or meta.get("codec") != codec
            or meta.get("sha256") != _sha256(data)
        ):
            self.evict(key)
            METRICS.counter("store.get.misses").inc()
            return None
        _, decode = self.CODECS[codec]
        try:
            value = decode(data)
        except Exception:
            self.evict(key)
            METRICS.counter("store.get.misses").inc()
            return None
        self._touch(key, meta)
        METRICS.counter("store.get.hits").inc()
        METRICS.counter("store.get.bytes").inc(len(data))
        return value

    def _touch(self, key: str, meta: Dict[str, object]) -> None:
        """Best-effort last-access stamp on a hit (the LRU input of prune).

        Rewrites the sidecar atomically with ``last_access_unix`` set; any
        failure (read-only cache dir, disk full) is swallowed — a hit must
        never fail because bookkeeping could not be written, the entry just
        keeps its previous access time.
        """
        meta = dict(meta)
        meta["last_access_unix"] = time.time()  # repro: allow[det-wallclock] -- LRU last-access bookkeeping, excluded from keys and payloads
        try:
            if not self._payload_path(key).exists():
                # A concurrent evict/prune removed the entry between our
                # payload read and now (payload goes first, sidecar second).
                # Rewriting the sidecar here would resurrect a ghost entry
                # with no payload behind it — skip the stamp instead.
                return
            _atomic_write_bytes(
                self._meta_path(key),
                (json.dumps(meta, sort_keys=True, indent=2) + "\n").encode("ascii"),
            )
            if not self._payload_path(key).exists():
                # The eviction raced us between the check above and the
                # write: undo the resurrection.
                self._meta_path(key).unlink(missing_ok=True)
        except OSError:
            pass

    def __contains__(self, key: str) -> bool:
        self._check_key(key)
        return self._meta_path(key).exists() and self._payload_path(key).exists()

    # ----------------------------------------------------------- single-flight
    #
    # Lock files under <root>/locks/<key>.lock make computation single-flight
    # across processes: whoever creates the lock (O_CREAT|O_EXCL, atomic on
    # every filesystem that matters) computes; everyone else waits for the
    # entry to appear and re-reads.  The lock records the claimant's pid so a
    # dead producer's lock can be broken by any waiter, and waiting is always
    # bounded — a waiter that times out (or finds a released-but-unpublished
    # key) falls back to computing itself, so single-flight can duplicate
    # work under crashes but can never deadlock or lose it.

    def _lock_path(self, key: str) -> Path:
        return self.root / "locks" / f"{key}.lock"

    @staticmethod
    def _lock_is_stale(lock_path: Path) -> bool:
        """True when the lock's recorded producer process is gone.

        An unreadable lock (claimant crashed between create and write, or a
        concurrent unlink) is *not* reported stale — waiters handle that via
        their timeout instead of fighting over a lock they cannot attribute.
        """
        try:
            info = json.loads(lock_path.read_text())
            pid = int(info["pid"])
        except (OSError, ValueError, KeyError, TypeError):
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except (PermissionError, OSError):
            return False  # exists but owned elsewhere; treat as alive
        return False

    def try_claim(self, key: str) -> bool:
        """Atomically claim *key* for computation; ``True`` when we hold it.

        A claim left by a process that no longer exists is broken and
        re-contended.  The holder must :meth:`release` when done (success or
        failure) — typically via ``try/finally``.
        """
        self._check_key(key)
        lock_path = self._lock_path(key)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        record = json.dumps(
            {"pid": os.getpid(), "created_unix": time.time()}  # repro: allow[det-wallclock] -- lock bookkeeping, never enters keys or payloads
        )
        for _ in range(8):  # bounded re-contention after breaking stale locks
            try:
                fd = os.open(str(lock_path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if self._lock_is_stale(lock_path):
                    METRICS.counter("store.singleflight.stale_broken").inc()
                    try:
                        lock_path.unlink()
                    except OSError:
                        pass
                    continue
                return False
            except OSError:
                return False
            with os.fdopen(fd, "w") as handle:
                handle.write(record)
            METRICS.counter("store.singleflight.claims").inc()
            return True
        return False

    def release(self, key: str) -> bool:
        """Release a claim taken with :meth:`try_claim` (idempotent)."""
        self._check_key(key)
        lock_path = self._lock_path(key)
        try:
            info = json.loads(lock_path.read_text())
            if int(info.get("pid", -1)) != os.getpid():
                return False  # not ours (already broken and re-claimed)
        except (OSError, ValueError, TypeError):
            return False
        try:
            lock_path.unlink()
            return True
        except OSError:
            return False

    def wait_for(
        self,
        key: str,
        codec: str = "json",
        timeout: float = 120.0,
        poll: float = 0.05,
    ) -> Optional[object]:
        """Wait for another process to publish *key*; the value or ``None``.

        Returns as soon as the entry appears, or ``None`` when the claim
        disappears without a publication (the producer failed/crashed) or
        the timeout expires — in both cases the caller should compute the
        value itself.
        """
        self._check_key(key)
        lock_path = self._lock_path(key)
        deadline = time.monotonic() + max(0.0, timeout)  # repro: allow[det-wallclock] -- wait deadline, scheduling only
        while True:
            value = self.get(key, codec=codec)
            if value is not None:
                return value
            if not lock_path.exists() or self._lock_is_stale(lock_path):
                # Released (or the producer died) without publishing: one
                # final re-read closes the release-after-publish race, then
                # the caller takes over.
                return self.get(key, codec=codec)
            if time.monotonic() >= deadline:  # repro: allow[det-wallclock] -- wait deadline, scheduling only
                return None
            time.sleep(poll)

    def get_or_compute(
        self,
        key: str,
        compute,
        codec: str = "json",
        provenance: Optional[Dict[str, object]] = None,
        timeout: float = 120.0,
    ):
        """Return the cached value, computing (and publishing) it at most
        once across concurrent callers.

        N concurrent callers of the same *key* produce exactly one
        ``compute()`` in the healthy case: one claims and computes, the rest
        wait and re-read.  A waiter whose producer dies computes as a
        fallback (duplicated work beats a lost run).  ``compute`` must not
        return ``None`` — the store reserves it for misses.
        """
        value = self.get(key, codec=codec)
        if value is not None:
            METRICS.counter("store.singleflight.hits").inc()
            return value
        if self.try_claim(key):
            try:
                # Re-check under the lock: the previous holder may have
                # published between our miss and our claim.
                value = self.get(key, codec=codec)
                if value is None:
                    METRICS.counter("store.singleflight.computes").inc()
                    value = compute()
                    self.put(key, value, codec=codec, provenance=provenance)
                return value
            finally:
                self.release(key)
        value = self.wait_for(key, codec=codec, timeout=timeout)
        if value is not None:
            METRICS.counter("store.singleflight.waits").inc()
            return value
        METRICS.counter("store.singleflight.rescues").inc()
        value = compute()
        self.put(key, value, codec=codec, provenance=provenance)
        return value

    # ------------------------------------------------------------- management
    def evict(self, key: str) -> bool:
        """Remove one entry; ``True`` only when it is fully removed.

        The payload is unlinked *before* the sidecar: the sidecar is the
        entry's commit marker, so a deletion that fails part-way leaves a
        still-visible entry (retryable via :meth:`entries` / :meth:`get`
        self-healing) instead of an orphan payload no index operation can
        see.  Any unlink failure other than the file already being gone
        aborts the eviction and returns ``False``.
        """
        self._check_key(key)
        existed = False
        for path in (self._payload_path(key), self._meta_path(key)):
            try:
                path.unlink()
                existed = True
            except FileNotFoundError:
                pass
            except OSError:
                return False
        if existed:
            METRICS.counter("store.evict.count").inc()
        return existed

    def clear(self) -> int:
        """Remove every entry; returns the number of complete entries removed.

        Wipes the whole ``objects/`` tree, so orphans a crash can leave
        behind (payloads without a sidecar, abandoned temp files) are
        reclaimed too — they are invisible to :meth:`entries` / the
        per-entry :meth:`evict`.
        """
        removed = len(self.entries())
        shutil.rmtree(self.root / "objects", ignore_errors=True)
        shutil.rmtree(self.root / "locks", ignore_errors=True)
        return removed

    def entries(self) -> List[Dict[str, object]]:
        """The index: every entry's sidecar dict, sorted by key.

        Unreadable sidecars are skipped (their entries will be evicted on
        the next :meth:`get`).
        """
        out: List[Dict[str, object]] = []
        for meta_path in self._iter_meta_paths():
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, ValueError):
                continue
            if isinstance(meta, dict):
                out.append(meta)
        return sorted(out, key=lambda meta: str(meta.get("key", "")))

    def stats(self) -> Dict[str, object]:
        """Aggregate view: entry count and payload bytes under the root."""
        entries = self.entries()
        return {
            "root": str(self.root),
            "n_entries": len(entries),
            "payload_bytes": sum(int(meta.get("size_bytes", 0)) for meta in entries),
        }

    def prune(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        """Evict least-recently-*used* entries until both bounds hold (LRU).

        ``max_entries`` bounds the entry count; ``max_bytes`` bounds the
        summed payload bytes.  Either may be ``None`` (unbounded), but at
        least one bound must be given.  Recency is the ``last_access_unix``
        stamp :meth:`get` records on every hit, falling back to
        ``created_unix`` for never-read entries (with creation time as the
        tie-break), so a hot entry survives even when it is old.  Returns
        the number of entries evicted.
        """
        if max_entries is None and max_bytes is None:
            raise StoreError("prune needs max_entries and/or max_bytes")
        if max_entries is not None and max_entries < 0:
            raise StoreError(f"max_entries must be >= 0, got {max_entries}")
        if max_bytes is not None and max_bytes < 0:
            raise StoreError(f"max_bytes must be >= 0, got {max_bytes}")

        def recency(meta: Dict[str, object]):
            created = float(meta.get("created_unix", 0.0))
            accessed = meta.get("last_access_unix")
            return (float(accessed) if accessed is not None else created, created)

        entries = sorted(self.entries(), key=recency)
        n_entries = len(entries)
        total_bytes = sum(int(meta.get("size_bytes", 0)) for meta in entries)
        removed = 0
        for meta in entries:
            over_entries = max_entries is not None and n_entries > max_entries
            over_bytes = max_bytes is not None and total_bytes > max_bytes
            if not over_entries and not over_bytes:
                break
            if self.evict(str(meta["key"])):
                removed += 1
                n_entries -= 1
                total_bytes -= int(meta.get("size_bytes", 0))
        METRICS.counter("store.prune.evicted").inc(removed)
        return removed

    def _iter_meta_paths(self):
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        for sub in sorted(objects.iterdir()):
            if sub.is_dir():
                yield from sorted(sub.glob("*.meta.json"))
