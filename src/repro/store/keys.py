"""Canonical cache keys for experiment results.

Every result this library produces is a pure function of its
:class:`~repro.api.config.ExperimentConfig` (two runs of the same config are
bitwise identical), which makes results *content-addressable*: a stable hash
of the config identifies the result.  This module derives those hashes.

Three properties make the keys safe:

* **Canonical serialisation** — :func:`canonical_json` renders a config dict
  with sorted keys, no whitespace and no NaN/Infinity, so dict ordering and
  formatting never change the key.
* **Code-version salt** — every key mixes in :data:`repro.version.__version__`
  plus a cache-format revision (:data:`CACHE_FORMAT`), so upgrading the
  library (which may legitimately change the numbers) invalidates every old
  entry instead of serving stale results.
* **Scoped shard keys** — whole-report keys (:func:`report_key`) cover the
  *entire* config (any field change → new key), while per-shard keys
  (:func:`shard_key`) cover only the fields that can influence the shard's
  stage-1 payload (:func:`stage1_payload`).  Fields that are documented
  bit-neutral (worker counts, chunk sizes, execution backend) and fields only
  consumed by the parent-side evaluation protocol (meta-model lists,
  resampling parameters) are excluded — that is what lets a sweep that only
  changes the meta-model reuse every extraction shard.

Timestamps and other provenance never enter a key; they live in the store's
index sidecars (:mod:`repro.store.store`), outside the hashed payload.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Tuple

from repro.version import __version__

#: Revision of the cached payload layout.  Bump when the meaning or encoding
#: of stored payloads changes without a library version bump.
#: Revision 2: stage-1 shard keys gained the network ``dump_root`` field
#: (disk-served softmax dumps determine the extracted payload).
CACHE_FORMAT = 2


def version_salt() -> str:
    """The code-version salt mixed into every cache key."""
    return f"repro-{__version__}-fmt{CACHE_FORMAT}"


def canonical_json(payload: object) -> str:
    """Deterministic JSON rendering of a plain payload.

    Sorted keys, compact separators, ASCII-only and ``allow_nan=False`` so
    two semantically equal payloads always render to the identical string
    (NaN would also break the JSON round-trip of stored reports).
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True,
        allow_nan=False,
    )


def content_key(tag: str, payload: object) -> str:
    """SHA-256 hex key of a payload under a namespace *tag*.

    The tag keeps differently-shaped payloads (whole reports vs. shards)
    from ever colliding even if their canonical JSON coincided.
    """
    material = "\n".join((version_salt(), tag, canonical_json(payload)))
    return hashlib.sha256(material.encode("ascii")).hexdigest()


def report_key(config_dict: Dict[str, object]) -> str:
    """Cache key of a whole :class:`ExperimentReport`.

    Covers the complete config dict: *any* field change — including
    bit-neutral ones like the execution backend — produces a new key.  That
    is deliberately conservative for the top-level entry point; the
    aggressive reuse happens at shard granularity (:func:`shard_key`).
    """
    return content_key("report", config_dict)


def stage1_payload(config_dict: Dict[str, object]) -> Dict[str, object]:
    """The subset of a config that determines its stage-1 shard payloads.

    Stage 1 is the dataset walk (metric extraction / sequence processing /
    per-sample rule comparison); the evaluation protocols run in the parent
    on the merged result.  Per kind:

    * ``metaseg`` — the extracted :class:`MetricsDataset` depends on the data
      substrate, the network profile (+ overrides) and the segment
      connectivity.  Meta-model and evaluation settings are protocol-side.
    * ``timedynamic`` — sequence metrics additionally depend on the reference
      network (pseudo ground truth) and on ``meta_models.feature_group``
      (it selects the base features tracked over time).
    * ``decision`` — per-sample rule results depend on the data substrate,
      the network, the rule list with their strengths, and the category
      (which also determines the priors fitted in the parent).

    Worker counts, chunk sizes and the execution section are excluded: they
    are bit-neutral by the library-wide contract (enforced by the parity
    tests of ``tests/test_api_execution.py``).
    """
    kind = config_dict["kind"]
    network = config_dict["network"]
    payload: Dict[str, object] = {
        "kind": kind,
        "seed": config_dict["seed"],
        "data": config_dict["data"],
        "network": {
            "profile": network["profile"],
            "overrides": network["overrides"],
            # Which dump tree a disk-served profile reads determines the
            # numbers; the mmap flag does not (bit-neutral access mode).
            "dump_root": network.get("dump_root", ""),
        },
    }
    if kind == "metaseg":
        payload["connectivity"] = config_dict["extraction"]["connectivity"]
    elif kind == "timedynamic":
        payload["network"]["reference_profile"] = network["reference_profile"]
        payload["feature_group"] = config_dict["meta_models"]["feature_group"]
    elif kind == "decision":
        evaluation = config_dict["evaluation"]
        payload["evaluation"] = {
            "rules": evaluation["rules"],
            "strengths": evaluation["strengths"],
            "category": evaluation["category"],
        }
    else:
        raise ValueError(f"unknown experiment kind {kind!r}")
    return payload


def shard_key(config_dict: Dict[str, object], start: int, stop: int) -> str:
    """Cache key of one stage-1 shard: (stage-1 config subset, index range)."""
    index_range: Tuple[int, int] = (int(start), int(stop))
    return content_key(
        "shard", {"stage1": stage1_payload(config_dict), "range": index_range}
    )


def model_payload(config_dict: Dict[str, object]) -> Dict[str, object]:
    """The subset of a metaseg config that determines a fitted serving model.

    ``Runner.fit`` trains the *first* registered classifier/regressor of the
    config on the full extracted dataset, so the model identity is the
    stage-1 payload (what was extracted) plus the fit-side fields (which
    families and penalties were trained).  Protocol-only fields (``n_runs``,
    ``train_fraction``, execution backend) are excluded: they cannot change
    the fitted artifact.
    """
    if config_dict["kind"] != "metaseg":
        raise ValueError(
            f"fitted serving models require kind 'metaseg', got {config_dict['kind']!r}"
        )
    meta = config_dict["meta_models"]
    return {
        "stage1": stage1_payload(config_dict),
        "fit": {
            "classifier": meta["classifiers"][0],
            "regressor": meta["regressors"][0],
            "classification_penalty": meta["classification_penalty"],
            "regression_penalty": meta["regression_penalty"],
            "feature_group": meta["feature_group"],
            "model_params": meta["model_params"],
        },
    }


def model_key(config_dict: Dict[str, object]) -> str:
    """Cache key of a fitted serving model (:class:`repro.api.fitted.FittedModel`)."""
    return content_key("model", model_payload(config_dict))


def priors_key(config_dict: Dict[str, object]) -> str:
    """Cache key of the fitted decision priors of a decision config.

    The prior estimator consumes only the training *labels*, so the key
    deliberately excludes the rule list, strengths and category: a sweep over
    decision rules on a fixed data substrate reuses one priors fit.  The
    network section is still included (conservative: it travels with the data
    substrate in the resolved experiment).
    """
    if config_dict["kind"] != "decision":
        raise ValueError(
            f"priors keys require kind 'decision', got {config_dict['kind']!r}"
        )
    network = config_dict["network"]
    return content_key(
        "priors",
        {
            "kind": "decision",
            "seed": config_dict["seed"],
            "data": config_dict["data"],
            "network": {
                "profile": network["profile"],
                "overrides": network["overrides"],
                "dump_root": network.get("dump_root", ""),
            },
        },
    )
