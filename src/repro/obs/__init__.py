"""``repro.obs`` — the telemetry layer: tracing, metrics, exporters.

Strictly out-of-band observability for the experiment pipeline and the
scoring service: hierarchical spans (:mod:`repro.obs.trace`), a
thread-safe metrics registry (:mod:`repro.obs.metrics`), and JSON /
Chrome-``trace_event`` exporters (:mod:`repro.obs.export`).  Telemetry
never enters hashed store payloads or deterministic report output, and
the disabled default (:data:`NULL_TRACER`) is a shared no-op.
"""

from repro.obs.export import (
    TRACE_FORMAT,
    trace_to_chrome,
    trace_to_dict,
    validate_chrome_trace,
    write_json,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    format_span_tree,
    timings_view,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "METRICS",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TRACE_FORMAT",
    "Tracer",
    "format_span_tree",
    "timings_view",
    "trace_to_chrome",
    "trace_to_dict",
    "validate_chrome_trace",
    "write_json",
]
