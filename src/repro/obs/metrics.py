"""The metrics registry: counters, gauges and fixed-bucket histograms.

Instruments follow the same string-key idiom as the component registries
(:mod:`repro.api.registry`): a :class:`MetricsRegistry` maps dotted names to
instruments, :meth:`MetricsRegistry.register` refuses duplicate names, and
the ``counter``/``gauge``/``histogram`` accessors get-or-create so
instrumented seams never need import-order coordination — the first caller
of ``METRICS.counter("store.get.hits")`` creates it, everyone else shares it.

Every update is lock-guarded (one small lock per instrument), so counters
hammered from N threads total exactly; :meth:`MetricsRegistry.snapshot`
returns a deterministically-ordered plain-dict view ready for JSON export
(the serve ``/metrics`` endpoint serialises it directly).

Metrics are telemetry only: they never enter hashed store payloads or
deterministic report output.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): sub-millisecond to tens of seconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """Monotonically increasing count (thread-safe)."""

    kind = "counter"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (>= 0) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: increments must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """Last-set value (thread-safe); e.g. a queue depth."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Fixed-bound bucket histogram (thread-safe); e.g. request latency.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    overflow bucket catches everything beyond the last bound, so
    ``len(counts) == len(bounds) + 1`` and the total count is exact.
    """

    kind = "histogram"

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS, description: str = ""
    ) -> None:
        bounds = tuple(float(bound) for bound in bounds)
        if not bounds:
            raise ValueError(f"histogram {self.__class__.__name__} needs >= 1 bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(
                f"histogram {name!r}: bucket bounds must be strictly increasing, got {bounds}"
            )
        self.name = name
        self.description = description
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }


class MetricsRegistry:
    """String-keyed instruments with get-or-create accessors.

    Mirrors the component-registry idiom: instruments live under unique
    dotted names, duplicate registration is an error, and lookups are
    thread-safe.  ``snapshot()`` groups instruments by kind with names
    sorted, so serialising it is deterministic for a fixed set of values.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._instruments: Dict[str, object] = {}

    # ------------------------------------------------------------------ ---
    def register(self, name: str, instrument: object) -> object:
        """Register a pre-built instrument under *name* (unique)."""
        if not isinstance(name, str) or not name:
            raise TypeError("metric names must be non-empty strings")
        with self._lock:
            if name in self._instruments:
                raise ValueError(f"metrics registry already has an instrument named {name!r}")
            self._instruments[name] = instrument
        return instrument

    def _get_or_create(self, name: str, kind: type, factory) -> object:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise ValueError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"not a {kind.__name__}"
                )
            return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        """Get-or-create the counter registered under *name*."""
        return self._get_or_create(name, Counter, lambda: Counter(name, description))

    def gauge(self, name: str, description: str = "") -> Gauge:
        """Get-or-create the gauge registered under *name*."""
        return self._get_or_create(name, Gauge, lambda: Gauge(name, description))

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS, description: str = ""
    ) -> Histogram:
        """Get-or-create the histogram registered under *name*."""
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, bounds, description)
        )

    # ------------------------------------------------------------------ ---
    def get(self, name: str) -> object:
        """The instrument registered under *name* (KeyError when absent)."""
        with self._lock:
            try:
                return self._instruments[name]
            except KeyError:
                raise KeyError(
                    f"unknown metric {name!r}; available: "
                    f"{', '.join(self.names()) or '(none)'}"
                ) from None

    def names(self) -> List[str]:
        """Sorted names of every registered instrument."""
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deterministically-ordered plain-dict view of every instrument."""
        with self._lock:
            instruments = dict(self._instruments)
        out: Dict[str, Dict[str, object]] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(instruments):
            instrument = instruments[name]
            out[f"{instrument.kind}s"][name] = instrument.snapshot()
        return out

    def reset(self) -> None:
        """Drop every instrument (test isolation; instrumented seams re-create)."""
        with self._lock:
            self._instruments.clear()

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._instruments

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def __repr__(self) -> str:
        return f"MetricsRegistry(n_instruments={len(self)})"


#: The process-wide default registry: library seams (the result store)
#: record here; servers default to their own private registry instead.
METRICS = MetricsRegistry()


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "METRICS",
    "MetricsRegistry",
]
