"""Hierarchical tracing: spans, the Tracer, and the derived timings view.

A :class:`Tracer` records **spans** — named, attributed wall-clock intervals
arranged in a tree.  ``tracer.span("stage", **attrs)`` returns a context
manager; entering pushes the span onto a per-thread stack (``threading.local``)
so nested ``with`` blocks form parent/child edges without any explicit
plumbing, and exiting commits an immutable record ``{name, span_id,
parent_id, start_s, duration_s, thread, attrs}`` to the tracer under a lock.

Across process boundaries the context travels by value:
:meth:`Tracer.current_context` yields a picklable ``{"trace_id",
"parent_span_id"}`` dict that a shard spec can embed; the worker builds its
own :class:`Tracer` with an id prefix, runs under a span parented to the
remote id, and ships :meth:`Tracer.export` back for the parent to
:meth:`Tracer.merge` in shard order (start times are re-based via the wall
epoch each export carries).

Telemetry is strictly out-of-band: span ids, timings and attributes never
enter hashed store payloads or deterministic report output — the same
contract as ``ExperimentReport.timings``.  The zero-cost default is
:data:`NULL_TRACER`, whose ``span()`` hands out one shared no-op context
manager and records nothing.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Dict, List, Optional

#: Process-wide trace-id sequence (``next()`` on ``itertools.count`` is
#: atomic in CPython; the id only needs to be unique, not secret).
_TRACE_IDS = itertools.count(1)


class Span:
    """One traced interval; use as a context manager (``with tracer.span(..)``).

    The record dict is the single source of truth: ``__enter__`` stamps the
    start (relative to the tracer's epoch) and pushes the span onto the
    calling thread's stack, ``__exit__`` stamps the duration, pops, and
    commits the record to the tracer.  :meth:`set` attaches extra attributes
    mid-flight (e.g. a count known only after the work ran).
    """

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: str,
        parent_id: Optional[str],
        attrs: Dict[str, object],
    ) -> None:
        self._tracer = tracer
        self._record: Dict[str, object] = {
            "name": str(name),
            "span_id": span_id,
            "parent_id": parent_id,
            "start_s": None,
            "duration_s": None,
            "thread": None,
            "attrs": dict(attrs),
        }

    # ------------------------------------------------------------------ ---
    @property
    def name(self) -> str:
        return self._record["name"]

    @property
    def span_id(self) -> Optional[str]:
        return self._record["span_id"]

    @property
    def parent_id(self) -> Optional[str]:
        return self._record["parent_id"]

    @property
    def duration_s(self) -> Optional[float]:
        """Seconds between enter and exit; ``None`` while still open."""
        return self._record["duration_s"]

    def set(self, **attrs: object) -> "Span":
        """Attach extra attributes to the span (JSON-serialisable values)."""
        self._record["attrs"].update(attrs)
        return self

    # ------------------------------------------------------------------ ---
    def __enter__(self) -> "Span":
        record = self._record
        record["thread"] = threading.current_thread().name
        self._tracer._push(self)
        record["start_s"] = time.perf_counter() - self._tracer.epoch_s  # repro: allow[det-wallclock] -- span timing telemetry, never part of deterministic payloads
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        record = self._record
        record["duration_s"] = (
            time.perf_counter() - self._tracer.epoch_s - record["start_s"]  # repro: allow[det-wallclock] -- span timing telemetry, never part of deterministic payloads
        )
        if exc_type is not None:
            record["attrs"].setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        self._tracer._commit(record)
        return False

    def __repr__(self) -> str:
        return f"Span(name={self.name!r}, span_id={self.span_id!r})"


class _NullSpan:
    """Shared no-op span: the entire cost of tracing when it is disabled."""

    __slots__ = ()

    span_id = None
    parent_id = None
    duration_s = None
    name = ""

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost default: every ``span()`` is the same shared no-op.

    ``enabled`` is ``False`` so instrumented seams can skip optional work
    (context embedding, merging, exporting) entirely.
    """

    enabled = False

    def span(self, name: str, parent_id: Optional[str] = None, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def current_context(self) -> Optional[Dict[str, str]]:
        return None

    def records(self) -> List[Dict[str, object]]:
        return []

    def export(self) -> Dict[str, object]:
        return {"trace_id": "", "wall_epoch": 0.0, "records": []}

    def merge(self, export: Dict[str, object]) -> None:
        return None

    def __repr__(self) -> str:
        return "NullTracer()"


#: The process-wide disabled tracer (safe to share: it holds no state).
NULL_TRACER = NullTracer()


class Tracer:
    """Collects spans for one trace; thread-safe, cheap, export-ready.

    Parameters
    ----------
    trace_id:
        Identity shared by every span of the trace; generated when omitted.
        Workers continuing a parent trace pass the parent's id through.
    id_prefix:
        Prefix for every allocated span id — shard workers get a distinct
        prefix (e.g. ``"4.2."``) so merged timelines never collide.
    """

    enabled = True

    def __init__(self, trace_id: Optional[str] = None, id_prefix: str = "") -> None:
        self._lock = threading.Lock()
        self._records: List[Dict[str, object]] = []
        self._local = threading.local()
        self._counter = 0
        self._id_prefix = str(id_prefix)
        self.trace_id = trace_id or f"trace-{os.getpid()}-{next(_TRACE_IDS)}"
        #: Reference instants for span starts: ``epoch_s`` is the monotonic
        #: zero of every ``start_s``; ``wall_epoch`` anchors it to wall time
        #: so exports from other processes can be re-based on merge.
        self.epoch_s = time.perf_counter()  # repro: allow[det-wallclock] -- trace epoch telemetry, never part of deterministic payloads
        self.wall_epoch = time.time()  # repro: allow[det-wallclock] -- trace epoch telemetry, never part of deterministic payloads

    # ------------------------------------------------------------- span API
    def span(self, name: str, parent_id: Optional[str] = None, **attrs: object) -> Span:
        """A new span; parent defaults to the calling thread's current span."""
        if parent_id is None:
            top = self._stack_top()
            parent_id = top.span_id if top is not None else None
        with self._lock:
            self._counter += 1
            span_id = f"{self._id_prefix}{self._counter}"
        return Span(self, name, span_id, parent_id, attrs)

    def current_context(self) -> Optional[Dict[str, str]]:
        """Picklable continuation context of the calling thread's open span.

        ``None`` when no span is open — callers embed the dict into work
        specs that cross process (or machine) boundaries.
        """
        top = self._stack_top()
        if top is None:
            return None
        return {"trace_id": self.trace_id, "parent_span_id": top.span_id}

    # ------------------------------------------------------------ internals
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _stack_top(self) -> Optional[Span]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if span in stack:
            # Identity removal tolerates exotic exit orders; the common case
            # pops the top.
            stack.remove(span)

    def _commit(self, record: Dict[str, object]) -> None:
        with self._lock:
            self._records.append(record)

    # ------------------------------------------------------------ consumers
    def records(self) -> List[Dict[str, object]]:
        """Copies of every committed span record (commit order)."""
        with self._lock:
            return [dict(record, attrs=dict(record["attrs"])) for record in self._records]

    def export(self) -> Dict[str, object]:
        """Picklable snapshot for shipping a child timeline to a parent."""
        return {
            "trace_id": self.trace_id,
            "wall_epoch": self.wall_epoch,
            "records": self.records(),
        }

    def merge(self, export: Dict[str, object]) -> None:
        """Fold a child :meth:`export` in, re-basing starts onto this epoch.

        Child ``start_s`` values are relative to the child's own monotonic
        epoch; the wall epochs of both tracers anchor the shift.
        """
        shift = float(export.get("wall_epoch", 0.0)) - self.wall_epoch
        merged = []
        for record in export.get("records", []):
            record = dict(record, attrs=dict(record.get("attrs", {})))
            if record.get("start_s") is not None:
                record["start_s"] = float(record["start_s"]) + shift
            merged.append(record)
        with self._lock:
            self._records.extend(merged)

    def __repr__(self) -> str:
        return f"Tracer(trace_id={self.trace_id!r}, n_records={len(self._records)})"


# --------------------------------------------------------------------------
def timings_view(
    records: List[Dict[str, object]], root_id: Optional[str]
) -> Dict[str, float]:
    """The backward-compatible flat timings dict derived from a span subtree.

    Children of the root span keep their bare stage names (``resolve``,
    ``extract``, ``evaluate`` — the pre-telemetry keys), deeper spans get
    dotted paths (``extract.shard3``), and the root itself becomes
    ``total``.  Spans outside the subtree (other runs sharing the tracer)
    are ignored.
    """
    out: Dict[str, float] = {}
    if root_id is None:
        return out
    by_id = {record["span_id"]: record for record in records}
    if root_id not in by_id:
        return out
    for record in records:
        if record.get("duration_s") is None:
            continue
        path: List[str] = []
        current: Optional[Dict[str, object]] = record
        reached_root = False
        while current is not None:
            if current["span_id"] == root_id:
                reached_root = True
                break
            path.append(str(current["name"]))
            current = by_id.get(current.get("parent_id"))
        if not reached_root or not path:
            continue
        out[".".join(reversed(path))] = float(record["duration_s"])
    root = by_id[root_id]
    if root.get("duration_s") is not None:
        out["total"] = float(root["duration_s"])
    return out


def format_span_tree(
    records: List[Dict[str, object]], root_id: Optional[str] = None
) -> List[str]:
    """Human-readable indented rendering of a span forest (CLI ``--trace``).

    Children print under their parents sorted by start time; durations in
    milliseconds.  ``root_id`` restricts the output to one subtree.
    """
    by_parent: Dict[Optional[str], List[Dict[str, object]]] = {}
    ids = {record["span_id"] for record in records}
    for record in records:
        parent = record.get("parent_id")
        if parent not in ids:
            parent = None  # Orphans (remote parents) print at top level.
        by_parent.setdefault(parent, []).append(record)
    for children in by_parent.values():
        children.sort(key=lambda r: (r.get("start_s") or 0.0, str(r["span_id"])))

    rows: List[str] = []

    def render(record: Dict[str, object], depth: int) -> None:
        duration = record.get("duration_s")
        duration_text = f"{1e3 * duration:9.2f} ms" if duration is not None else "   (open)  "
        attrs = record.get("attrs") or {}
        attr_text = "".join(
            f"  {key}={attrs[key]}" for key in sorted(attrs)
        )
        rows.append(f"{'  ' * depth}{duration_text}  {record['name']}{attr_text}")
        for child in by_parent.get(record["span_id"], []):
            render(child, depth + 1)

    if root_id is not None and root_id in ids:
        roots = [record for record in records if record["span_id"] == root_id]
    else:
        roots = by_parent.get(None, [])
    for root in roots:
        render(root, 0)
    return rows


__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "format_span_tree",
    "timings_view",
]
