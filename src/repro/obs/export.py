"""Trace exporters: deterministic JSON and Chrome ``trace_event`` format.

Two serialisations of a :class:`~repro.obs.trace.Tracer`:

* :func:`trace_to_dict` — the library's own span-record format
  (``"repro-trace/1"``), records sorted by ``(start_s, span_id)`` so the
  export of a given trace is order-stable regardless of commit order.
* :func:`trace_to_chrome` — the Chrome/Perfetto `trace_event` JSON array
  format: one ``"X"`` (complete) event per span with microsecond
  ``ts``/``dur``, plus ``"M"`` (metadata) ``thread_name`` events so the
  per-thread tracks are labelled.  Load the file in ``chrome://tracing``
  or https://ui.perfetto.dev.

:func:`write_json` writes either payload via the store's atomic
temp-file+rename pattern, and :func:`validate_chrome_trace` is the schema
check the CI trace smoke (and tests) run against exported files.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List

#: Format tag stamped into the library's own JSON trace export.
TRACE_FORMAT = "repro-trace/1"


def _sorted_records(tracer) -> List[Dict[str, object]]:
    return sorted(
        tracer.records(), key=lambda r: (r.get("start_s") or 0.0, str(r["span_id"]))
    )


def trace_to_dict(tracer) -> Dict[str, object]:
    """The library's own JSON-ready trace payload (deterministic order)."""
    return {
        "format": TRACE_FORMAT,
        "trace_id": tracer.trace_id,
        "records": _sorted_records(tracer),
    }


def trace_to_chrome(tracer) -> Dict[str, object]:
    """Chrome ``trace_event`` payload (Perfetto/``chrome://tracing`` loadable)."""
    records = _sorted_records(tracer)
    thread_names = sorted({str(record.get("thread") or "main") for record in records})
    tids = {name: index + 1 for index, name in enumerate(thread_names)}
    events: List[Dict[str, object]] = []
    for name in thread_names:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tids[name],
                "args": {"name": name},
            }
        )
    for record in records:
        if record.get("start_s") is None or record.get("duration_s") is None:
            continue
        args = {"span_id": record["span_id"], "parent_id": record["parent_id"]}
        args.update(record.get("attrs") or {})
        events.append(
            {
                "name": str(record["name"]),
                "cat": "repro",
                "ph": "X",
                "ts": round(1e6 * float(record["start_s"]), 3),
                "dur": round(1e6 * float(record["duration_s"]), 3),
                "pid": 1,
                "tid": tids[str(record.get("thread") or "main")],
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": tracer.trace_id, "format": TRACE_FORMAT},
    }


def validate_chrome_trace(payload: Dict[str, object]) -> List[str]:
    """Schema problems of a Chrome trace payload ([] when valid).

    Checks the subset of the trace-event contract the exporter promises:
    a ``traceEvents`` list whose ``"X"`` events carry string names and
    non-negative numeric ``ts``/``dur`` plus ``pid``/``tid``, and whose
    phases are all known.  CI fails the trace smoke on any returned problem.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be a JSON object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload.traceEvents must be a list"]
    if not any(isinstance(e, dict) and e.get("ph") == "X" for e in events):
        problems.append("no complete ('X') events — empty trace")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in {"X", "M", "B", "E", "i", "C"}:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing event name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: {key} must be an int")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(f"{where}: {key} must be a non-negative number")
    return problems


def write_json(path: str, payload: Dict[str, object]) -> str:
    """Write *payload* as JSON at *path* atomically (temp file + rename)."""
    path = os.fspath(path)
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=parent, prefix=".trace-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


__all__ = [
    "TRACE_FORMAT",
    "trace_to_chrome",
    "trace_to_dict",
    "validate_chrome_trace",
    "write_json",
]
