"""Argument validation helpers used across the library.

Keeping validation in one place makes error messages uniform and keeps the
computational modules focused on their actual algorithms.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np


def check_label_map(labels: np.ndarray, name: str = "labels") -> np.ndarray:
    """Validate a 2-D integer label map and return it as an ``int64`` array.

    A label map assigns one integer class id to every pixel.  Negative values
    are allowed only for the conventional "ignore" id ``-1`` (pixels without
    ground truth, cf. the white regions in Fig. 1 of the paper).
    """
    arr = np.asarray(labels)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D (H, W), got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.issubdtype(arr.dtype, np.integer):
        if np.issubdtype(arr.dtype, np.floating) and np.all(arr == np.round(arr)):
            arr = arr.astype(np.int64)
        else:
            raise TypeError(f"{name} must be an integer array, got dtype {arr.dtype}")
    arr = arr.astype(np.int64, copy=False)
    if arr.min() < -1:
        raise ValueError(
            f"{name} may not contain values below -1 (the ignore id), "
            f"found {arr.min()}"
        )
    return arr


def check_probability_field(
    probs: np.ndarray, name: str = "probs", tol: float = 1e-4
) -> np.ndarray:
    """Validate an (H, W, C) per-pixel class probability field.

    Each pixel's class distribution must be non-negative and sum to one within
    *tol*.  Returns the field as ``float64``.
    """
    arr = np.asarray(probs, dtype=np.float64)
    if arr.ndim != 3:
        raise ValueError(f"{name} must be 3-D (H, W, C), got shape {arr.shape}")
    if arr.shape[2] < 2:
        raise ValueError(f"{name} needs at least 2 classes, got {arr.shape[2]}")
    if np.any(arr < -tol):
        raise ValueError(f"{name} contains negative probabilities")
    sums = arr.sum(axis=2)
    if not np.allclose(sums, 1.0, atol=max(tol, 1e-4)):
        bad = float(np.abs(sums - 1.0).max())
        raise ValueError(
            f"{name} rows must sum to 1 (max deviation {bad:.2e} exceeds tolerance)"
        )
    return arr


def check_same_shape(
    a: np.ndarray, b: np.ndarray, name_a: str = "a", name_b: str = "b"
) -> None:
    """Raise if the leading 2-D shapes of *a* and *b* differ."""
    if a.shape[:2] != b.shape[:2]:
        raise ValueError(
            f"{name_a} and {name_b} must share the same spatial shape, "
            f"got {a.shape[:2]} vs {b.shape[:2]}"
        )


def check_in_range(
    value: float,
    low: Optional[float] = None,
    high: Optional[float] = None,
    name: str = "value",
    inclusive: Tuple[bool, bool] = (True, True),
) -> float:
    """Check that a scalar lies in the interval [low, high] (or open variants)."""
    value = float(value)
    if low is not None:
        if inclusive[0] and value < low:
            raise ValueError(f"{name} must be >= {low}, got {value}")
        if not inclusive[0] and value <= low:
            raise ValueError(f"{name} must be > {low}, got {value}")
    if high is not None:
        if inclusive[1] and value > high:
            raise ValueError(f"{name} must be <= {high}, got {value}")
        if not inclusive[1] and value >= high:
            raise ValueError(f"{name} must be < {high}, got {value}")
    return value


def check_feature_matrix(
    x: np.ndarray, name: str = "X", allow_empty: bool = False
) -> np.ndarray:
    """Validate a 2-D feature matrix with finite float entries."""
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D (n_samples, n_features), got {arr.shape}")
    if not allow_empty and arr.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one sample")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    return arr


def check_vector(
    y: np.ndarray, n: Optional[int] = None, name: str = "y"
) -> np.ndarray:
    """Validate a 1-D float vector, optionally checking its length."""
    arr = np.asarray(y, dtype=np.float64).ravel()
    if n is not None and arr.shape[0] != n:
        raise ValueError(f"{name} must have length {n}, got {arr.shape[0]}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    return arr


def check_binary_labels(y: np.ndarray, name: str = "y") -> np.ndarray:
    """Validate a vector of binary {0, 1} labels."""
    arr = np.asarray(y).ravel()
    unique = np.unique(arr)
    if not np.all(np.isin(unique, [0, 1])):
        raise ValueError(f"{name} must contain only 0/1 labels, found {unique}")
    return arr.astype(np.int64)


def check_class_count(n_classes: int, minimum: int = 2) -> int:
    """Validate a class count."""
    n_classes = int(n_classes)
    if n_classes < minimum:
        raise ValueError(f"n_classes must be >= {minimum}, got {n_classes}")
    return n_classes


def check_fractions(fractions: Sequence[float], name: str = "fractions") -> Tuple[float, ...]:
    """Validate a sequence of non-negative fractions summing to one."""
    values = tuple(float(f) for f in fractions)
    if not values:
        raise ValueError(f"{name} must be non-empty")
    if any(v < 0 for v in values):
        raise ValueError(f"{name} must be non-negative")
    if not np.isclose(sum(values), 1.0, atol=1e-8):
        raise ValueError(f"{name} must sum to 1, got {sum(values)}")
    return values
