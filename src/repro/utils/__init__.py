"""Utility subpackage: low-level helpers shared by all other subpackages.

The modules in here implement substrate functionality the paper relies on
implicitly (connected component labelling, reproducible random number
handling, array manipulation) without depending on anything outside numpy.
"""

from repro.utils.connected_components import (
    connected_components,
    component_sizes,
    relabel_sequential,
)
from repro.utils.rng import RandomState, spawn_rngs, as_rng
from repro.utils.arrays import (
    mean_std,
    one_hot,
    boundary_mask,
    crop_center,
    resize_nearest,
    resize_bilinear,
)
from repro.utils.validation import (
    check_probability_field,
    check_label_map,
    check_same_shape,
    check_in_range,
)

__all__ = [
    "connected_components",
    "component_sizes",
    "relabel_sequential",
    "RandomState",
    "spawn_rngs",
    "as_rng",
    "mean_std",
    "one_hot",
    "boundary_mask",
    "crop_center",
    "resize_nearest",
    "resize_bilinear",
    "check_probability_field",
    "check_label_map",
    "check_same_shape",
    "check_in_range",
]
