"""Reproducible random number generation helpers.

All stochastic components of the library (scene generation, the simulated
segmentation network, data splits, SMOTE, model initialisation) accept either
an integer seed, ``None`` or a :class:`numpy.random.Generator`.  The helpers
here normalise these inputs so every module follows the same convention and
experiments are exactly reproducible from a single seed.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

# Public alias used in type hints across the code base.
RandomState = Union[None, int, np.random.Generator]


def as_rng(random_state: RandomState = None) -> np.random.Generator:
    """Normalise *random_state* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    random_state:
        ``None`` for a fresh nondeterministic generator, an ``int`` seed for a
        deterministic generator, or an existing generator which is returned
        unchanged.

    Returns
    -------
    numpy.random.Generator
    """
    if random_state is None:
        return np.random.default_rng()  # repro: allow[det-rng] -- as_rng(None) is the documented OS-entropy seam
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        "random_state must be None, an int seed or a numpy Generator, "
        f"got {type(random_state).__name__}"
    )


def spawn_rngs(random_state: RandomState, n: int) -> List[np.random.Generator]:
    """Create *n* statistically independent child generators.

    Children are derived through numpy's ``SeedSequence.spawn`` mechanism so
    that (a) they are independent of each other and (b) the whole family is
    reproducible from the parent seed.

    Parameters
    ----------
    random_state:
        Parent seed/generator (see :func:`as_rng`).
    n:
        Number of children to create; must be non-negative.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    parent = as_rng(random_state)
    seeds = parent.integers(0, np.iinfo(np.uint32).max, size=n, dtype=np.uint32)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(random_state: RandomState, *tokens: Union[int, str]) -> int:
    """Derive a deterministic child seed from a parent seed and tokens.

    This is used where a component needs a stable per-item seed (e.g. the
    scene generator derives one seed per image index) so that generating item
    ``i`` alone yields the same data as generating items ``0..i`` in order.
    """
    parent = as_rng(random_state)
    base = int(parent.integers(0, 2**31 - 1))
    mix = base
    for token in tokens:
        if isinstance(token, str):
            token_value = sum((i + 1) * b for i, b in enumerate(token.encode("utf-8")))
        else:
            token_value = int(token)
        # Simple deterministic integer mixing (splitmix-like constants).
        mix = (mix ^ (token_value + 0x9E3779B9 + (mix << 6) + (mix >> 2))) % (2**31 - 1)
    return int(mix)


def shuffled_indices(n: int, random_state: RandomState = None) -> np.ndarray:
    """Return a random permutation of ``arange(n)``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = as_rng(random_state)
    return rng.permutation(n)


def bootstrap_indices(
    n: int, size: Optional[int] = None, random_state: RandomState = None
) -> np.ndarray:
    """Sample indices with replacement (bootstrap resampling)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    rng = as_rng(random_state)
    if size is None:
        size = n
    return rng.integers(0, n, size=size)


def split_indices(
    n: int,
    fractions: Iterable[float],
    random_state: RandomState = None,
) -> List[np.ndarray]:
    """Randomly split ``arange(n)`` into consecutive groups of given fractions.

    The fractions must sum to 1 (within numerical tolerance).  The last group
    absorbs rounding remainders so that every index is assigned exactly once.
    """
    fractions = list(fractions)
    if not fractions:
        raise ValueError("fractions must be non-empty")
    total = float(sum(fractions))
    if not np.isclose(total, 1.0, atol=1e-8):
        raise ValueError(f"fractions must sum to 1, got {total}")
    if any(f < 0 for f in fractions):
        raise ValueError("fractions must be non-negative")
    perm = shuffled_indices(n, random_state)
    counts = [int(round(f * n)) for f in fractions[:-1]]
    groups: List[np.ndarray] = []
    start = 0
    for count in counts:
        groups.append(perm[start : start + count])
        start += count
    groups.append(perm[start:])
    return groups
