"""Small array helpers: aggregation, one-hot encoding, boundaries, crops and
resizing.

The multi-resolution extension of MetaSeg (Section II of the paper, ref. [18])
needs nested center crops and resizing; the simulated segmentation network
needs nearest/bilinear resizing and boundary extraction.  We implement these
with plain numpy so the library has no image-processing dependency.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from repro.utils.validation import check_label_map, check_probability_field


def mean_std(values: Union[Sequence[float], np.ndarray]) -> Tuple[float, float]:
    """Mean and population standard deviation (ddof=0) of a value sequence.

    This is the canonical aggregation used for every "mean (+/- std) over the
    random resampling runs" number of the paper's tables; the pipelines and
    the experiment reports all share this helper.
    """
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ValueError("mean_std needs at least one value")
    return float(array.mean()), float(array.std(ddof=0))


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """One-hot encode a 2-D label map into an (H, W, C) float field.

    Pixels labelled ``-1`` (ignore) get an all-zero row.
    """
    labels = check_label_map(labels)
    if n_classes <= int(labels.max()):
        raise ValueError(
            f"n_classes={n_classes} too small for max label {int(labels.max())}"
        )
    h, w = labels.shape
    out = np.zeros((h, w, n_classes), dtype=np.float64)
    valid = labels >= 0
    rows, cols = np.nonzero(valid)
    out[rows, cols, labels[valid]] = 1.0
    return out


def boundary_mask(labels: np.ndarray, connectivity: int = 4) -> np.ndarray:
    """Return a boolean mask of pixels lying on a label boundary.

    A pixel is a boundary pixel if at least one of its 4- (or 8-) neighbours
    carries a different label.  Image border pixels count as boundary pixels,
    matching the segment-boundary convention used for the fractality metrics
    in MetaSeg.
    """
    labels = check_label_map(labels)
    if connectivity not in (4, 8):
        raise ValueError(f"connectivity must be 4 or 8, got {connectivity}")
    h, w = labels.shape
    mask = np.zeros((h, w), dtype=bool)
    # Neighbour differences along the two axes.
    mask[:-1, :] |= labels[:-1, :] != labels[1:, :]
    mask[1:, :] |= labels[1:, :] != labels[:-1, :]
    mask[:, :-1] |= labels[:, :-1] != labels[:, 1:]
    mask[:, 1:] |= labels[:, 1:] != labels[:, :-1]
    if connectivity == 8:
        mask[:-1, :-1] |= labels[:-1, :-1] != labels[1:, 1:]
        mask[1:, 1:] |= labels[1:, 1:] != labels[:-1, :-1]
        mask[:-1, 1:] |= labels[:-1, 1:] != labels[1:, :-1]
        mask[1:, :-1] |= labels[1:, :-1] != labels[:-1, 1:]
    # Image border counts as boundary.
    mask[0, :] = True
    mask[-1, :] = True
    mask[:, 0] = True
    mask[:, -1] = True
    return mask


def crop_center(array: np.ndarray, crop_height: int, crop_width: int) -> np.ndarray:
    """Extract a centered crop of the given spatial size from a 2-D/3-D array."""
    if crop_height <= 0 or crop_width <= 0:
        raise ValueError("crop sizes must be positive")
    h, w = array.shape[:2]
    if crop_height > h or crop_width > w:
        raise ValueError(
            f"crop size ({crop_height}, {crop_width}) exceeds array size ({h}, {w})"
        )
    top = (h - crop_height) // 2
    left = (w - crop_width) // 2
    return array[top : top + crop_height, left : left + crop_width]


def _resize_indices(src: int, dst: int) -> np.ndarray:
    """Nearest-neighbour source indices for resizing a length-*src* axis to *dst*."""
    if dst <= 0:
        raise ValueError("target size must be positive")
    return np.minimum((np.arange(dst) + 0.5) * src / dst, src - 1).astype(np.int64)


def resize_nearest(array: np.ndarray, height: int, width: int) -> np.ndarray:
    """Nearest-neighbour resize of a 2-D or 3-D array to (height, width)."""
    rows = _resize_indices(array.shape[0], height)
    cols = _resize_indices(array.shape[1], width)
    return array[np.ix_(rows, cols)] if array.ndim == 2 else array[rows][:, cols]


def resize_bilinear(array: np.ndarray, height: int, width: int) -> np.ndarray:
    """Bilinear resize of a 2-D or 3-D float array to (height, width)."""
    arr = np.asarray(array, dtype=np.float64)
    src_h, src_w = arr.shape[:2]
    if height <= 0 or width <= 0:
        raise ValueError("target size must be positive")
    # Continuous source coordinates of target pixel centers.
    ys = (np.arange(height) + 0.5) * src_h / height - 0.5
    xs = (np.arange(width) + 0.5) * src_w / width - 0.5
    ys = np.clip(ys, 0, src_h - 1)
    xs = np.clip(xs, 0, src_w - 1)
    y0 = np.floor(ys).astype(np.int64)
    x0 = np.floor(xs).astype(np.int64)
    y1 = np.minimum(y0 + 1, src_h - 1)
    x1 = np.minimum(x0 + 1, src_w - 1)
    wy = (ys - y0).reshape(-1, 1)
    wx = (xs - x0).reshape(1, -1)
    if arr.ndim == 3:
        wy = wy[..., None]
        wx = wx[..., None]
    top = arr[y0][:, x0] * (1 - wx) + arr[y0][:, x1] * wx
    bottom = arr[y1][:, x0] * (1 - wx) + arr[y1][:, x1] * wx
    return top * (1 - wy) + bottom * wy


def renormalise_probabilities(probs: np.ndarray) -> np.ndarray:
    """Clip to non-negative and renormalise an (H, W, C) probability field."""
    arr = np.clip(np.asarray(probs, dtype=np.float64), 0.0, None)
    sums = arr.sum(axis=2, keepdims=True)
    sums[sums == 0] = 1.0
    return arr / sums


def downsample_probability_field(probs: np.ndarray, factor: int) -> np.ndarray:
    """Block-average an (H, W, C) probability field by an integer factor.

    Used by the multi-resolution pyramid to simulate inference at reduced
    resolution; the result is renormalised per pixel.
    """
    probs = check_probability_field(probs)
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if factor == 1:
        return probs.copy()
    h, w, c = probs.shape
    new_h, new_w = h // factor, w // factor
    if new_h == 0 or new_w == 0:
        raise ValueError(f"factor {factor} too large for field of shape {(h, w)}")
    trimmed = probs[: new_h * factor, : new_w * factor]
    blocks = trimmed.reshape(new_h, factor, new_w, factor, c)
    return renormalise_probabilities(blocks.mean(axis=(1, 3)))


def pad_to_shape(array: np.ndarray, height: int, width: int, value: float = 0.0) -> np.ndarray:
    """Pad a 2-D/3-D array symmetrically up to (height, width) with *value*."""
    h, w = array.shape[:2]
    if height < h or width < w:
        raise ValueError("target shape must not be smaller than the array")
    pad_h = height - h
    pad_w = width - w
    pads: Tuple[Tuple[int, int], ...] = (
        (pad_h // 2, pad_h - pad_h // 2),
        (pad_w // 2, pad_w - pad_w // 2),
    )
    if array.ndim == 3:
        pads = pads + ((0, 0),)
    return np.pad(array, pads, mode="constant", constant_values=value)
