"""Connected component labelling for segmentation masks.

The paper treats every connected component of a predicted (or ground-truth)
class mask as one *segment instance*; meta classification and the FP/FN
definitions all operate on these components.  This module provides:

* a self-contained union-find based labelling routine (``engine="unionfind"``)
  that only needs numpy, and
* a fast path backed by ``scipy.ndimage.label`` (``engine="scipy"``) used by
  default when scipy is importable.

Both engines produce identical partitions (component numbering may differ in
general, but we normalise ids to scan order of the first pixel so the outputs
are bit-identical); the test suite cross-checks them against each other.

Two pixels belong to the same component iff they carry the same value in the
label map and are connected through a path of equally-valued neighbours.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.utils.validation import check_label_map

try:  # pragma: no cover - import guard exercised implicitly
    from scipy import ndimage as _ndimage

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _ndimage = None
    _HAVE_SCIPY = False


def _resolve_roots(parent: np.ndarray) -> np.ndarray:
    """Fully compress a parent-pointer forest via pointer doubling."""
    while True:
        grand = parent[parent]
        if np.array_equal(grand, parent):
            return parent
        parent = grand


def _normalise_ids(components: np.ndarray) -> Tuple[np.ndarray, int]:
    """Renumber component ids to 1..n in scan order of each component's first pixel."""
    flat = components.ravel()
    nonzero_mask = flat != 0
    if not np.any(nonzero_mask):
        return np.zeros_like(components), 0
    ids, first_idx = np.unique(flat[nonzero_mask], return_index=True)
    order = np.argsort(first_idx, kind="stable")
    mapping = np.zeros(int(flat.max()) + 1, dtype=np.int64)
    mapping[ids[order]] = np.arange(1, ids.size + 1)
    out = np.where(nonzero_mask, mapping[np.clip(flat, 0, None)], 0)
    return out.reshape(components.shape), int(ids.size)


def _label_unionfind(labels: np.ndarray, connectivity: int, background: int) -> np.ndarray:
    h, w = labels.shape
    n = h * w
    flat = labels.ravel()

    def _edges_shift(dr: int, dc: int):
        """Edge arrays between each pixel and its (dr, dc)-shifted neighbour."""
        rows = np.arange(max(0, -dr), h - max(0, dr))
        cols = np.arange(max(0, -dc), w - max(0, dc))
        if rows.size == 0 or cols.size == 0:
            return None
        rr, cc = np.meshgrid(rows, cols, indexing="ij")
        here = (rr * w + cc).ravel()
        there = ((rr + dr) * w + (cc + dc)).ravel()
        same = (flat[here] == flat[there]) & (flat[here] != background)
        if not np.any(same):
            return None
        return here[same], there[same]

    shifts = [(1, 0), (0, 1)]
    if connectivity == 8:
        shifts += [(1, 1), (1, -1)]
    edge_pairs = [edges for edges in (_edges_shift(dr, dc) for dr, dc in shifts) if edges]

    # Batched union-find: all edges of all shift directions are merged at once
    # by alternating full path compression (pointer doubling) with a vectorised
    # "hook the larger root under the smaller" step, instead of one Python-level
    # union call per edge.  Parent pointers only ever decrease, so the loop
    # terminates; at exit every edge connects two pixels with equal roots.
    parent = np.arange(n, dtype=np.int64)
    if edge_pairs:
        here = np.concatenate([edges[0] for edges in edge_pairs])
        there = np.concatenate([edges[1] for edges in edge_pairs])
        while True:
            parent = _resolve_roots(parent)
            root_a = parent[here]
            root_b = parent[there]
            low = np.minimum(root_a, root_b)
            high = np.maximum(root_a, root_b)
            unresolved = low != high
            if not np.any(unresolved):
                break
            np.minimum.at(parent, high[unresolved], low[unresolved])

    foreground = flat != background
    components = np.where(foreground, parent + 1, 0)
    return components.reshape(h, w)


def _label_scipy(labels: np.ndarray, connectivity: int, background: int) -> np.ndarray:
    structure = (
        np.ones((3, 3), dtype=bool)
        if connectivity == 8
        else np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]], dtype=bool)
    )
    components = np.zeros(labels.shape, dtype=np.int64)
    offset = 0
    values = np.unique(labels)
    for value in values:
        if value == background:
            continue
        mask = labels == value
        labelled, count = _ndimage.label(mask, structure=structure)
        components[mask] = labelled[mask] + offset
        offset += int(count)
    return components


def connected_components(
    labels: np.ndarray,
    connectivity: int = 8,
    background: int = -1,
    engine: str = "auto",
) -> Tuple[np.ndarray, int]:
    """Label connected components of equal-valued pixels.

    Parameters
    ----------
    labels:
        2-D integer array of class ids per pixel.
    connectivity:
        4 or 8.
    background:
        Value treated as background / ignore (component id 0).
    engine:
        ``"auto"`` (scipy when available, otherwise union-find), ``"scipy"``
        or ``"unionfind"``.

    Returns
    -------
    components:
        2-D ``int64`` array; background pixels are 0, components are numbered
        1..n_components in scan order of their first pixel.
    n_components:
        Number of non-background components.
    """
    labels = check_label_map(labels)
    if connectivity not in (4, 8):
        raise ValueError(f"connectivity must be 4 or 8, got {connectivity}")
    if engine not in ("auto", "scipy", "unionfind"):
        raise ValueError(f"unknown engine {engine!r}")
    use_scipy = engine == "scipy" or (engine == "auto" and _HAVE_SCIPY)
    if engine == "scipy" and not _HAVE_SCIPY:
        raise RuntimeError("scipy is not available but engine='scipy' was requested")
    if use_scipy:
        raw = _label_scipy(labels, connectivity, background)
    else:
        raw = _label_unionfind(labels, connectivity, background)
    return _normalise_ids(raw)


def pair_contingency(
    a: np.ndarray, b: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sparse contingency table of two aligned integer arrays.

    Counts, for every pair of values ``(a[i], b[i])``, how often it occurs.
    This is the single-pass primitive behind the vectorised segment matching:
    with ``a`` the predicted component image and ``b`` the ground-truth
    component image, the table holds every pairwise intersection size at once.

    Returns
    -------
    a_values, b_values, counts:
        Aligned 1-D arrays; ``counts[i]`` is the number of positions where
        ``a == a_values[i]`` and ``b == b_values[i]``.  Rows are sorted by
        ``(a_value, b_value)``.
    """
    a = np.asarray(a).ravel()
    b = np.asarray(b).ravel()
    if a.shape != b.shape:
        raise ValueError(f"arrays must be aligned, got sizes {a.size} and {b.size}")
    empty = np.zeros(0, dtype=np.int64)
    if a.size == 0:
        return empty, empty.copy(), empty.copy()
    a_min = int(a.min())
    b_min = int(b.min())
    a_shift = a.astype(np.int64) - a_min
    b_shift = b.astype(np.int64) - b_min
    span = int(b_shift.max()) + 1
    codes = a_shift * span + b_shift
    n_codes = (int(a_shift.max()) + 1) * span
    # Dense bincount is one O(size) pass but allocates the full table; fall
    # back to sort-based np.unique when the value ranges make it too large.
    if n_codes <= max(1 << 20, 4 * a.size):
        dense = np.bincount(codes, minlength=n_codes)
        nonzero = np.nonzero(dense)[0]
        counts = dense[nonzero].astype(np.int64)
        code_values = nonzero
    else:
        code_values, counts = np.unique(codes, return_counts=True)
        counts = counts.astype(np.int64)
    a_values = code_values // span + a_min
    b_values = code_values % span + b_min
    return a_values.astype(np.int64), b_values.astype(np.int64), counts


def component_sizes(components: np.ndarray) -> np.ndarray:
    """Pixel counts per component id (index 0 is the background count)."""
    components = np.asarray(components)
    if components.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(components.ravel().astype(np.int64))


def relabel_sequential(components: np.ndarray) -> Tuple[np.ndarray, int]:
    """Relabel component ids to a dense 1..n range preserving 0 as background."""
    components = np.asarray(components, dtype=np.int64)
    unique = np.unique(components)
    unique = unique[unique != 0]
    max_id = int(components.max()) if components.size else 0
    mapping = np.zeros(max_id + 1 if max_id >= 0 else 1, dtype=np.int64)
    mapping[unique] = np.arange(1, unique.size + 1, dtype=np.int64)
    out = np.where(components > 0, mapping[np.clip(components, 0, None)], 0)
    return out, int(unique.size)


def component_slices(components: np.ndarray) -> Dict[int, Tuple[slice, slice]]:
    """Bounding-box slices per component id (excluding background 0).

    Useful for cheaply iterating over segments without scanning the full
    image for every segment.
    """
    components = np.asarray(components, dtype=np.int64)
    out: Dict[int, Tuple[slice, slice]] = {}
    if components.size == 0:
        return out
    n = int(components.max())
    if n <= 0:
        return out
    if _HAVE_SCIPY:
        slices = _ndimage.find_objects(components, max_label=n)
        for comp_id, slc in enumerate(slices, start=1):
            if slc is not None:
                out[comp_id] = (slc[0], slc[1])
        return out
    # Fallback without scipy: one pass over the foreground pixel coordinates
    # with unbuffered min/max scatter reductions, instead of a full-image
    # ``np.nonzero`` scan per component.
    width = components.shape[1]
    foreground = np.nonzero(components.ravel())[0]
    if foreground.size == 0:
        return out
    ids = components.ravel()[foreground]
    rows = foreground // width
    cols = foreground % width
    top = np.full(n + 1, np.iinfo(np.int64).max, dtype=np.int64)
    left = np.full(n + 1, np.iinfo(np.int64).max, dtype=np.int64)
    bottom = np.full(n + 1, -1, dtype=np.int64)
    right = np.full(n + 1, -1, dtype=np.int64)
    np.minimum.at(top, ids, rows)
    np.maximum.at(bottom, ids, rows)
    np.minimum.at(left, ids, cols)
    np.maximum.at(right, ids, cols)
    for comp_id in range(1, n + 1):
        if bottom[comp_id] < 0:
            continue
        out[comp_id] = (
            slice(int(top[comp_id]), int(bottom[comp_id]) + 1),
            slice(int(left[comp_id]), int(right[comp_id]) + 1),
        )
    return out
