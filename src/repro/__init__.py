"""repro — reproduction of "Detection of False Positive and False Negative
Samples in Semantic Segmentation" (Rottmann et al., DATE 2020).

The package implements the paper's three systems and every substrate they
need, offline and from scratch:

* :mod:`repro.core` — MetaSeg: segment-wise false-positive detection (meta
  classification) and IoU prediction (meta regression) from aggregated
  dispersion and geometry metrics (Section II);
* :mod:`repro.timedynamic` — time-dynamic MetaSeg on video with segment
  tracking, SMOTE augmentation and pseudo ground truth (Section III);
* :mod:`repro.decision` — false-negative reduction via Maximum-Likelihood and
  cost-based decision rules with position-specific priors (Section IV);
* :mod:`repro.segmentation` — the synthetic street-scene + simulated-network
  substrate standing in for Cityscapes/KITTI and DeepLabv3+;
* :mod:`repro.models` — from-scratch logistic/linear regression, gradient
  boosting and shallow neural networks used as meta models;
* :mod:`repro.evaluation` — accuracy, AUROC, R², σ, IoU and empirical-CDF
  machinery used by the paper's tables and figures.

Quick start::

    from repro import (
        CityscapesLikeDataset, SimulatedSegmentationNetwork,
        mobilenetv2_profile, MetaSegPipeline,
    )

    dataset = CityscapesLikeDataset(n_train=10, n_val=20, random_state=0)
    network = SimulatedSegmentationNetwork(mobilenetv2_profile(), random_state=1)
    pipeline = MetaSegPipeline(network)
    metrics = pipeline.extract_dataset(dataset.val_samples())
    result = pipeline.run_table1_protocol(metrics, n_runs=10)
    print("\\n".join(result.summary_rows()))
"""

from repro.version import __version__

# Substrate ------------------------------------------------------------------
from repro.segmentation import (
    LabelSpec,
    LabelSpace,
    cityscapes_label_space,
    Scene,
    SceneConfig,
    SceneObject,
    StreetSceneGenerator,
    SequenceConfig,
    SequenceGenerator,
    SceneSequence,
    NetworkProfile,
    SimulatedSegmentationNetwork,
    xception65_profile,
    mobilenetv2_profile,
    CityscapesLikeDataset,
    KittiLikeDataset,
    SegmentationSample,
)

# MetaSeg core ----------------------------------------------------------------
from repro.core import (
    MetaSegPipeline,
    MetaSegResult,
    MetaClassifier,
    MetaRegressor,
    MetricsDataset,
    SegmentMetricsExtractor,
    MultiResolutionInference,
    extract_segments,
    segment_ious,
    false_positive_segments,
    false_negative_segments,
)

# Time-dynamic MetaSeg ---------------------------------------------------------
from repro.timedynamic import (
    SegmentTracker,
    TimeSeriesBuilder,
    build_time_series_dataset,
    smote_regression,
    TimeDynamicPipeline,
    TimeDynamicResult,
    COMPOSITIONS,
)

# Decision rules ----------------------------------------------------------------
from repro.decision import (
    PixelPriorEstimator,
    bayes_rule,
    maximum_likelihood_rule,
    cost_based_rule,
    DecisionRuleComparison,
    DecisionRuleResult,
)

# Unified experiment API --------------------------------------------------------
# Imported last: the api.runner module builds on the pipelines above, and the
# registries are populated by the imports above as a side effect.
from repro.api import (
    ConfigError,
    ExperimentConfig,
    DataConfig,
    NetworkConfig,
    ExtractionConfig,
    ExecutionConfig,
    MetaModelConfig,
    EvalConfig,
    ExperimentReport,
    Runner,
    run_experiment,
    all_registries,
)

# Result store + sweep driver: build on the api layer (imported above), so
# these imports stay cycle-free here.
from repro.store import ResultStore
from repro.sweep import SweepConfig, SweepResult, run_sweep

__all__ = [
    "__version__",
    # substrate
    "LabelSpec",
    "LabelSpace",
    "cityscapes_label_space",
    "Scene",
    "SceneConfig",
    "SceneObject",
    "StreetSceneGenerator",
    "SequenceConfig",
    "SequenceGenerator",
    "SceneSequence",
    "NetworkProfile",
    "SimulatedSegmentationNetwork",
    "xception65_profile",
    "mobilenetv2_profile",
    "CityscapesLikeDataset",
    "KittiLikeDataset",
    "SegmentationSample",
    # core
    "MetaSegPipeline",
    "MetaSegResult",
    "MetaClassifier",
    "MetaRegressor",
    "MetricsDataset",
    "SegmentMetricsExtractor",
    "MultiResolutionInference",
    "extract_segments",
    "segment_ious",
    "false_positive_segments",
    "false_negative_segments",
    # time-dynamic
    "SegmentTracker",
    "TimeSeriesBuilder",
    "build_time_series_dataset",
    "smote_regression",
    "TimeDynamicPipeline",
    "TimeDynamicResult",
    "COMPOSITIONS",
    # decision rules
    "PixelPriorEstimator",
    "bayes_rule",
    "maximum_likelihood_rule",
    "cost_based_rule",
    "DecisionRuleComparison",
    "DecisionRuleResult",
    # unified experiment API
    "ConfigError",
    "ExperimentConfig",
    "DataConfig",
    "NetworkConfig",
    "ExtractionConfig",
    "ExecutionConfig",
    "MetaModelConfig",
    "EvalConfig",
    "ExperimentReport",
    "Runner",
    "run_experiment",
    "all_registries",
    # result store + sweeps
    "ResultStore",
    "SweepConfig",
    "SweepResult",
    "run_sweep",
]
