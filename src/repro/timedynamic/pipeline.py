"""Time-dynamic MetaSeg pipeline (Fig. 2 and Table II of the paper).

Protocol, following Section III:

1. run the network under test (MobilenetV2 profile) on every frame of every
   sequence of a KITTI-like video dataset;
2. run the reference network (Xception65 profile) on every *unlabelled* frame
   to obtain pseudo ground truth;
3. extract per-frame segment metrics, track segments over time and build
   time-series feature vectors for history lengths 0..n;
4. split the segments with real ground truth 70 %/10 %/20 % into
   train/val/test, assemble the R / RA / RAP / RP / P training compositions
   (augmented and pseudo data are only ever added to the training part) and
   fit gradient-boosting and l2-penalised neural-network meta models;
5. report ACC/AUROC (meta classification) and σ/R² (meta regression) on the
   real test split, per composition, model and number of considered frames,
   averaged over random resamplings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import META_CLASSIFIERS, META_REGRESSORS
from repro.core.batching import (
    extraction_defaults,
    map_ordered,
    normalize_max_workers,
    supports_cache_kwarg,
)
from repro.core.dataset import MetricsDataset
from repro.core.meta_classification import MetaClassifier
from repro.core.meta_regression import MetaRegressor
from repro.core.metrics import SegmentMetricsExtractor
from repro.evaluation.classification import accuracy, auroc
from repro.evaluation.regression import r2_score, residual_std
from repro.segmentation.datasets import KittiLikeDataset, global_frame_index
from repro.segmentation.labels import LabelSpace, cityscapes_label_space
from repro.segmentation.network import SimulatedSegmentationNetwork
from repro.timedynamic.compositions import COMPOSITIONS, assemble_composition
from repro.timedynamic.time_series import (
    DEFAULT_BASE_FEATURES,
    SequenceMetrics,
    TimeSeriesBuilder,
    build_time_series_dataset,
)
from repro.utils.arrays import mean_std
from repro.utils.rng import RandomState, as_rng

if TYPE_CHECKING:  # pragma: no cover - import would cycle at runtime
    from repro.api.config import ExtractionConfig


@dataclass
class TimeDynamicResult:
    """Results per composition, model family and number of considered frames.

    ``classification[composition][method][n_frames]`` is a dict with keys
    ``accuracy`` and ``auroc`` mapping to (mean, std) tuples; ``regression``
    is analogous with keys ``sigma`` and ``r2``.
    """

    classification: Dict[str, Dict[str, Dict[int, Dict[str, Tuple[float, float]]]]] = field(
        default_factory=dict
    )
    regression: Dict[str, Dict[str, Dict[int, Dict[str, Tuple[float, float]]]]] = field(
        default_factory=dict
    )
    n_runs: int = 0
    n_real_segments: int = 0
    n_pseudo_segments: int = 0

    # ------------------------------------------------------------------ ---
    def best_classification(self, composition: str, method: str) -> Dict[str, object]:
        """Best AUROC over the number of frames (the Table II superscript)."""
        per_frames = self.classification[composition][method]
        best_frames = max(per_frames, key=lambda n: per_frames[n]["auroc"][0])
        return {
            "n_frames": best_frames,
            "accuracy": per_frames[best_frames]["accuracy"],
            "auroc": per_frames[best_frames]["auroc"],
        }

    def best_regression(self, composition: str, method: str) -> Dict[str, object]:
        """Best R² over the number of frames (the Table II superscript)."""
        per_frames = self.regression[composition][method]
        best_frames = max(per_frames, key=lambda n: per_frames[n]["r2"][0])
        return {
            "n_frames": best_frames,
            "sigma": per_frames[best_frames]["sigma"],
            "r2": per_frames[best_frames]["r2"],
        }

    def auroc_series(self, composition: str, method: str) -> Dict[int, Tuple[float, float]]:
        """AUROC as a function of the number of considered frames (Fig. 2)."""
        per_frames = self.classification[composition][method]
        return {n: per_frames[n]["auroc"] for n in sorted(per_frames)}


class TimeDynamicPipeline:
    """Orchestrates the Section III experiments on a KITTI-like video dataset."""

    def __init__(
        self,
        test_network: SimulatedSegmentationNetwork,
        reference_network: SimulatedSegmentationNetwork,
        label_space: Optional[LabelSpace] = None,
        base_features: Sequence[str] = DEFAULT_BASE_FEATURES,
        classification_penalty: float = 1e-3,
        regression_penalty: float = 1e-3,
        gradient_boosting_params: Optional[dict] = None,
        neural_network_params: Optional[dict] = None,
        extraction: Optional["ExtractionConfig"] = None,
    ) -> None:
        self.test_network = test_network
        self.reference_network = reference_network
        self.label_space = label_space or cityscapes_label_space()
        self.base_features = list(base_features)
        self.classification_penalty = float(classification_penalty)
        self.regression_penalty = float(regression_penalty)
        _, self._default_max_workers = extraction_defaults(extraction)
        self.gradient_boosting_params = dict(gradient_boosting_params or {
            "n_estimators": 40, "max_depth": 3, "max_features": "sqrt", "subsample": 0.8,
        })
        self.neural_network_params = dict(neural_network_params or {
            "hidden_layer_sizes": (24,), "n_epochs": 80, "batch_size": 64,
        })
        self.builder = TimeSeriesBuilder(
            extractor=SegmentMetricsExtractor(label_space=self.label_space)
        )

    # ------------------------------------------------------------------ ---
    @staticmethod
    def _sequence_samples(dataset: KittiLikeDataset, sequence_index: int, cache: bool):
        """Samples of one sequence, uncached where the substrate supports it.

        Custom registered substrates may not take the ``cache`` keyword; they
        fall back to their default (cached) accessor, which is still correct,
        just without the streaming memory bound.
        """
        if not cache and supports_cache_kwarg(dataset.samples):
            return dataset.samples(sequence_index, cache=False)
        return dataset.samples(sequence_index)

    def _process_sequence(
        self, dataset: KittiLikeDataset, sequence_index: int, cache: bool = True
    ) -> SequenceMetrics:
        """Inference, pseudo labelling, extraction and tracking for one sequence.

        Both per-frame hot paths are sparse single-pass computations: metric
        extraction runs the fused aggregation of
        :class:`~repro.core.metrics.SegmentMetricsExtractor` (one top-2
        partition + grouped bincounts) and the tracker matches segments via
        :func:`~repro.timedynamic.tracking.match_segments`'s contingency
        table, so per-frame cost is O(H×W) rather than O(n_segments × H×W).
        """
        frames_per_sequence = dataset.n_frames_per_sequence
        samples = self._sequence_samples(dataset, sequence_index, cache)
        probability_fields = []
        real_gt: List[Optional[np.ndarray]] = []
        pseudo_gt: List[Optional[np.ndarray]] = []
        for sample in samples:
            frame_id = global_frame_index(
                sequence_index, sample.frame_index, frames_per_sequence
            )
            probability_fields.append(
                self.test_network.predict_probabilities(sample.labels, index=frame_id)
            )
            real_gt.append(sample.labels if sample.has_ground_truth else None)
            if sample.has_ground_truth:
                # Pseudo ground truth is only generated where no real
                # ground truth exists (as in the paper).
                pseudo_gt.append(None)
            else:
                pseudo_gt.append(
                    self.reference_network.predict_labels(sample.labels, index=frame_id)
                )
        return self.builder.process_sequence(
            probability_fields, real_gt, pseudo_gt, sequence_id=sequence_index
        )

    def process_dataset(
        self,
        dataset: KittiLikeDataset,
        max_workers: Optional[int] = None,
        cache: bool = True,
    ) -> List[SequenceMetrics]:
        """Run inference, pseudo labelling, metric extraction and tracking.

        Sequences are independent of each other (network RNG is derived from
        the global frame index, tracking state lives per sequence), so with
        ``max_workers`` > 1 they are processed on a thread pool via the shared
        batched-execution layer; the returned list is ordered by sequence
        index and bit-identical to the serial run.  ``max_workers=None``
        falls back to the pipeline's extraction config (serial by default).
        ``cache=False`` regenerates and releases each sequence's raw frames
        instead of caching the whole dataset's pixel data (the streaming
        walk); results are bitwise identical either way.
        """
        max_workers = normalize_max_workers(max_workers, self._default_max_workers)
        return map_ordered(
            lambda sequence_index: self._process_sequence(dataset, sequence_index, cache=cache),
            range(dataset.n_sequences),
            max_workers=max_workers,
        )

    def iter_process_dataset(
        self,
        dataset: KittiLikeDataset,
        start: int = 0,
        stop: Optional[int] = None,
        cache: bool = True,
    ) -> "Iterator[SequenceMetrics]":
        """Streaming variant of :meth:`process_dataset`.

        Yields the :class:`SequenceMetrics` of sequences ``start..stop`` one
        at a time (bitwise identical to the corresponding slice of the serial
        :meth:`process_dataset` result).  With ``cache=False`` the raw frames
        of a sequence are regenerated on the fly and released as soon as the
        sequence is processed, so a streaming consumer holds the compact
        per-sequence metrics but never the pixel data of the whole dataset.
        The ``start``/``stop`` range is also the process-backend shard unit.
        """
        if stop is None:
            stop = dataset.n_sequences
        if not 0 <= start <= stop <= dataset.n_sequences:
            raise ValueError(
                f"invalid sequence range [{start}, {stop}) for "
                f"{dataset.n_sequences} sequences"
            )
        for sequence_index in range(start, stop):
            yield self._process_sequence(dataset, sequence_index, cache=cache)

    # ------------------------------------------------------------------ ---
    def _make_classifier(self, method: str, seed: int) -> MetaClassifier:
        """Build the meta classifier for one method via the registry.

        Custom factories registered under ``meta_classifiers`` are called
        with the same keyword arguments as the built-in families.
        """
        factory = META_CLASSIFIERS.get(method)
        if method == "gradient_boosting":
            return factory(random_state=seed, **self.gradient_boosting_params)
        return factory(
            penalty=self.classification_penalty, random_state=seed,
            **self.neural_network_params,
        )

    def _make_regressor(self, method: str, seed: int) -> MetaRegressor:
        """Build the meta regressor for one method via the registry."""
        factory = META_REGRESSORS.get(method)
        if method == "gradient_boosting":
            return factory(random_state=seed, **self.gradient_boosting_params)
        return factory(
            penalty=self.regression_penalty, random_state=seed,
            **self.neural_network_params,
        )

    def run_protocol(
        self,
        sequences: Sequence[SequenceMetrics],
        n_frames_list: Sequence[int] = tuple(range(0, 11)),
        compositions: Sequence[str] = COMPOSITIONS,
        methods: Sequence[str] = ("gradient_boosting", "neural_network"),
        n_runs: int = 10,
        split_fractions: Sequence[float] = (0.7, 0.1, 0.2),
        augmentation_factor: float = 1.0,
        random_state: RandomState = 0,
        fit_cache=None,
    ) -> TimeDynamicResult:
        """Evaluate meta classification and regression for all configurations.

        ``fit_cache`` (an optional :class:`repro.store.FitCache`) loads
        previously performed meta-model fits from the store instead of
        re-fitting; bitwise neutral because every model's internal RNG is
        derived from the per-run seed, never from the shared protocol stream.
        """
        for composition in compositions:
            if composition not in COMPOSITIONS:
                raise ValueError(f"unknown composition {composition!r}")
        for method in methods:
            # Methods are shared between the two meta tasks (as in Table II),
            # so a name must be registered for both.
            if method not in META_CLASSIFIERS or method not in META_REGRESSORS:
                raise ValueError(f"unsupported method {method!r}")
        rng = as_rng(random_state)
        result = TimeDynamicResult(n_runs=n_runs)

        # Pre-build the datasets per history length (shared by all runs).
        real_datasets: Dict[int, MetricsDataset] = {}
        pseudo_datasets: Dict[int, MetricsDataset] = {}
        for n_frames in n_frames_list:
            real_datasets[n_frames] = build_time_series_dataset(
                sequences, n_previous=n_frames, target="real", base_features=self.base_features
            )
            pseudo_datasets[n_frames] = build_time_series_dataset(
                sequences, n_previous=n_frames, target="pseudo", base_features=self.base_features
            )
        result.n_real_segments = len(real_datasets[list(n_frames_list)[0]])
        result.n_pseudo_segments = len(pseudo_datasets[list(n_frames_list)[0]])

        collect_cls: Dict[Tuple[str, str, int], List[Dict[str, float]]] = {}
        collect_reg: Dict[Tuple[str, str, int], List[Dict[str, float]]] = {}
        for _ in range(n_runs):
            run_seed = int(rng.integers(0, 2**31 - 1))
            for n_frames in n_frames_list:
                real = real_datasets[n_frames]
                pseudo = pseudo_datasets[n_frames]
                train, _val, test = real.split(split_fractions, random_state=run_seed)
                test_cls_targets = test.target_iou0()
                test_reg_targets = test.target_iou()
                for composition in compositions:
                    training = assemble_composition(
                        composition, train, pseudo,
                        augmentation_factor=augmentation_factor, random_state=run_seed,
                    )
                    for method in methods:
                        split = {
                            "protocol": "timedynamic",
                            "run_seed": run_seed,
                            "n_frames": int(n_frames),
                            "composition": composition,
                            "split_fractions": list(split_fractions),
                            "augmentation_factor": float(augmentation_factor),
                        }
                        classifier = self._make_classifier(method, run_seed)
                        if fit_cache is not None and fit_cache.supports(classifier):
                            classifier = fit_cache.fit_or_load(
                                classifier, training,
                                {**split, "task": "classification"},
                            )
                        else:
                            classifier.fit(training)
                        scores = classifier.predict_proba(test)
                        collect_cls.setdefault((composition, method, n_frames), []).append({
                            "accuracy": accuracy(
                                test_cls_targets, (scores >= 0.5).astype(np.int64)
                            ),
                            "auroc": auroc(test_cls_targets, scores),
                        })
                        regressor = self._make_regressor(method, run_seed)
                        if fit_cache is not None and fit_cache.supports(regressor):
                            regressor = fit_cache.fit_or_load(
                                regressor, training,
                                {**split, "task": "regression"},
                            )
                        else:
                            regressor.fit(training)
                        predictions = regressor.predict(test)
                        collect_reg.setdefault((composition, method, n_frames), []).append({
                            "sigma": residual_std(test_reg_targets, predictions),
                            "r2": r2_score(test_reg_targets, predictions),
                        })

        for (composition, method, n_frames), runs in collect_cls.items():
            result.classification.setdefault(composition, {}).setdefault(method, {})[n_frames] = {
                key: mean_std([run[key] for run in runs]) for key in runs[0]
            }
        for (composition, method, n_frames), runs in collect_reg.items():
            result.regression.setdefault(composition, {}).setdefault(method, {})[n_frames] = {
                key: mean_std([run[key] for run in runs]) for key in runs[0]
            }
        return result

    # ------------------------------------------------------------------ ---
    def single_frame_linear_reference(
        self,
        sequences: Sequence[SequenceMetrics],
        n_runs: int = 10,
        split_fractions: Sequence[float] = (0.7, 0.1, 0.2),
        random_state: RandomState = 0,
    ) -> Dict[str, Tuple[float, float]]:
        """Single-frame linear-model reference (the baseline the paper improves on).

        Section III quotes gains of +5.04 pp. AUROC and +5.63 pp. R² of the
        time-dynamic gradient-boosting models over the single-frame linear
        models; this helper provides the latter.
        """
        rng = as_rng(random_state)
        dataset = build_time_series_dataset(
            sequences, n_previous=0, target="real", base_features=self.base_features
        )
        aurocs: List[float] = []
        r2s: List[float] = []
        accuracies: List[float] = []
        sigmas: List[float] = []
        for _ in range(n_runs):
            run_seed = int(rng.integers(0, 2**31 - 1))
            train, _val, test = dataset.split(split_fractions, random_state=run_seed)
            classifier = MetaClassifier(method="logistic", penalty=0.0, random_state=run_seed)
            classifier.fit(train)
            scores = classifier.predict_proba(test)
            aurocs.append(auroc(test.target_iou0(), scores))
            accuracies.append(accuracy(test.target_iou0(), (scores >= 0.5).astype(np.int64)))
            regressor = MetaRegressor(method="linear", penalty=0.0, random_state=run_seed)
            regressor.fit(train)
            predictions = regressor.predict(test)
            r2s.append(r2_score(test.target_iou(), predictions))
            sigmas.append(residual_std(test.target_iou(), predictions))
        return {
            "accuracy": mean_std(accuracies),
            "auroc": mean_std(aurocs),
            "sigma": mean_std(sigmas),
            "r2": mean_std(r2s),
        }
