"""Training-data compositions R / RA / RAP / RP / P of Section III.

The paper trains meta models on five compositions of training data:

* **R**   — real ground truth only (segments from the 142 labelled frames);
* **RA**  — real plus SMOTE-augmented synthetic metric samples;
* **RAP** — real, augmented and pseudo ground truth;
* **RP**  — real and pseudo ground truth;
* **P**   — pseudo ground truth only.

The additions are used *only during training*; validation and test always use
real ground truth.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.dataset import MetricsDataset
from repro.timedynamic.smote import smote_regression
from repro.utils.rng import RandomState, as_rng

#: Composition names in the order used by the paper's Table II and Fig. 2.
COMPOSITIONS: Tuple[str, ...] = ("R", "RA", "RAP", "RP", "P")


def _synthetic_dataset(
    template: MetricsDataset, features: np.ndarray, targets: np.ndarray
) -> MetricsDataset:
    """Wrap SMOTE output in a MetricsDataset compatible with *template*."""
    n = features.shape[0]
    return MetricsDataset(
        features=features,
        feature_names=list(template.feature_names),
        segment_ids=np.full(n, -1, dtype=np.int64),
        class_ids=np.full(n, -1, dtype=np.int64),
        image_ids=np.array(["smote"] * n, dtype=object),
        iou=np.clip(targets, 0.0, 1.0),
        extra={"synthetic": True},
    )


def assemble_composition(
    name: str,
    real_train: MetricsDataset,
    pseudo_train: Optional[MetricsDataset] = None,
    augmentation_factor: float = 1.0,
    smote_k_neighbors: int = 5,
    random_state: RandomState = None,
) -> MetricsDataset:
    """Build the training dataset for one composition.

    Parameters
    ----------
    name:
        One of ``"R"``, ``"RA"``, ``"RAP"``, ``"RP"``, ``"P"``.
    real_train:
        Metrics of segments with real ground-truth IoU targets.
    pseudo_train:
        Metrics of segments with pseudo ground-truth IoU targets (required for
        the P-containing compositions).
    augmentation_factor:
        Number of SMOTE samples generated per real sample (for RA / RAP).
    smote_k_neighbors:
        Neighbourhood size of the SmoteR interpolation.
    random_state:
        Seed controlling the SMOTE generation.
    """
    if name not in COMPOSITIONS:
        raise ValueError(f"unknown composition {name!r}; expected one of {COMPOSITIONS}")
    if augmentation_factor < 0:
        raise ValueError("augmentation_factor must be non-negative")
    needs_pseudo = "P" in name
    if needs_pseudo and pseudo_train is None:
        raise ValueError(f"composition {name!r} requires pseudo_train data")
    rng = as_rng(random_state)

    parts = []
    if "R" in name:
        parts.append(real_train)
    if "A" in name:
        n_synthetic = int(round(augmentation_factor * len(real_train)))
        if n_synthetic > 0:
            synthetic_features, synthetic_targets = smote_regression(
                real_train.features,
                real_train.target_iou(),
                n_synthetic=n_synthetic,
                k_neighbors=smote_k_neighbors,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            parts.append(_synthetic_dataset(real_train, synthetic_features, synthetic_targets))
    if needs_pseudo:
        parts.append(pseudo_train)
    if not parts:
        raise ValueError(f"composition {name!r} produced no training data")
    combined = MetricsDataset.concatenate(parts)
    combined.extra["composition"] = name
    return combined


def composition_sizes(
    real_train: MetricsDataset,
    pseudo_train: Optional[MetricsDataset],
    augmentation_factor: float = 1.0,
) -> Dict[str, int]:
    """Expected number of training samples per composition (diagnostic)."""
    n_real = len(real_train)
    n_pseudo = len(pseudo_train) if pseudo_train is not None else 0
    n_augmented = int(round(augmentation_factor * n_real))
    return {
        "R": n_real,
        "RA": n_real + n_augmented,
        "RAP": n_real + n_augmented + n_pseudo,
        "RP": n_real + n_pseudo,
        "P": n_pseudo,
    }
