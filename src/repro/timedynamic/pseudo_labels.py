"""Pseudo ground truth from a stronger reference network.

Section III: "we utilize the Xception65 net with high predictive performance,
its predicted segmentations we term pseudo ground truth.  We generate pseudo
ground truth for all images where no ground truth is available."  The helpers
here compute pseudo IoU targets for the segments of the network under test by
treating the reference network's argmax prediction as if it were ground
truth.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.segments import Segmentation, extract_segments, segment_ious
from repro.segmentation.network import SimulatedSegmentationNetwork
from repro.utils.validation import check_label_map


def pseudo_ground_truth_labels(
    reference_network: SimulatedSegmentationNetwork,
    gt_labels: np.ndarray,
    index: int = 0,
) -> np.ndarray:
    """Argmax prediction of the reference network, used as pseudo ground truth.

    The simulated reference network (like the real Xception65 in the paper)
    still makes mistakes — that is the point: pseudo ground truth is cheaper
    but noisier than human annotation.
    """
    gt_labels = check_label_map(gt_labels)
    return reference_network.predict_labels(gt_labels, index=index)


def pseudo_ground_truth_iou(
    prediction: Segmentation,
    pseudo_labels: np.ndarray,
    connectivity: int = 8,
    ignore_id: int = -1,
) -> np.ndarray:
    """Segment-wise IoU of a prediction against pseudo ground truth.

    Returns an array aligned with ``prediction.segment_ids()``.
    """
    pseudo_labels = check_label_map(pseudo_labels)
    pseudo_segmentation = extract_segments(
        pseudo_labels, connectivity=connectivity, ignore_id=ignore_id
    )
    iou_map = segment_ious(prediction, pseudo_segmentation, ignore_id=ignore_id)
    return np.array([iou_map[sid] for sid in prediction.segment_ids()], dtype=np.float64)


def agreement_rate(
    pseudo_labels: np.ndarray, real_labels: Optional[np.ndarray], ignore_id: int = -1
) -> Optional[float]:
    """Pixel agreement between pseudo and real ground truth (diagnostic)."""
    if real_labels is None:
        return None
    pseudo_labels = check_label_map(pseudo_labels)
    real_labels = check_label_map(real_labels)
    if pseudo_labels.shape != real_labels.shape:
        raise ValueError("pseudo and real label maps must share the same shape")
    valid = real_labels != ignore_id
    if not np.any(valid):
        return None
    return float(np.mean(pseudo_labels[valid] == real_labels[valid]))
