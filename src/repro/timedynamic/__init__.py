"""Time-dynamic MetaSeg (Section III of the paper).

Extends the single-frame metrics of :mod:`repro.core` to *time series* by
tracking predicted segments across video frames, and evaluates meta
classification / regression with gradient boosting and shallow neural
networks on training-data compositions built from real ground truth,
SMOTE-augmented data and pseudo ground truth produced by a stronger reference
network (the paper's R / RA / RAP / RP / P compositions).
"""

from repro.timedynamic.tracking import SegmentTracker, TrackedSegment, match_segments
from repro.timedynamic.time_series import TimeSeriesBuilder, build_time_series_dataset
from repro.timedynamic.smote import smote_regression
from repro.timedynamic.pseudo_labels import pseudo_ground_truth_iou
from repro.timedynamic.compositions import COMPOSITIONS, assemble_composition
from repro.timedynamic.pipeline import TimeDynamicPipeline, TimeDynamicResult

__all__ = [
    "SegmentTracker",
    "TrackedSegment",
    "match_segments",
    "TimeSeriesBuilder",
    "build_time_series_dataset",
    "smote_regression",
    "pseudo_ground_truth_iou",
    "COMPOSITIONS",
    "assemble_composition",
    "TimeDynamicPipeline",
    "TimeDynamicResult",
]
