"""SMOTE for regression targets (SmoteR).

Section III augments the small set of segments with real ground truth using
"a variant of SMOTE for continuous target variables" (Chawla et al. 2002;
Torgo et al. 2013).  The implementation below follows the SmoteR recipe:

1. a relevance function marks samples with *rare* target values (far from the
   target median) as seeds for over-sampling;
2. each synthetic sample interpolates a seed with one of its k nearest rare
   neighbours in feature space (uniform interpolation factor);
3. the synthetic target is the distance-weighted average of the two parents'
   targets.

If fewer than two rare samples exist, interpolation falls back to the whole
dataset so the function still produces the requested number of samples.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_feature_matrix, check_vector


def target_relevance(targets: np.ndarray) -> np.ndarray:
    """Relevance in [0, 1] of each target value (1 = rare / extreme).

    Relevance grows linearly with the absolute distance from the median,
    normalised by the larger one-sided spread, which is the common simple
    choice for SmoteR when no domain-specific relevance function is supplied.
    """
    targets = check_vector(targets, name="targets")
    if targets.shape[0] == 0:
        raise ValueError("targets must be non-empty")
    median = float(np.median(targets))
    spread = max(float(np.max(targets) - median), float(median - np.min(targets)), 1e-12)
    return np.clip(np.abs(targets - median) / spread, 0.0, 1.0)


def smote_regression(
    features: np.ndarray,
    targets: np.ndarray,
    n_synthetic: int,
    k_neighbors: int = 5,
    relevance_threshold: float = 0.5,
    random_state: RandomState = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate synthetic (feature, target) samples via SmoteR.

    Parameters
    ----------
    features, targets:
        The original dataset.
    n_synthetic:
        Number of synthetic samples to generate (0 returns empty arrays).
    k_neighbors:
        Neighbourhood size for the interpolation partner.
    relevance_threshold:
        Samples with relevance above this threshold are treated as rare seeds.
    random_state:
        Seed for reproducibility.

    Returns
    -------
    synthetic_features, synthetic_targets:
        Arrays of shape (n_synthetic, n_features) and (n_synthetic,).
    """
    features = check_feature_matrix(features)
    targets = check_vector(targets, n=features.shape[0], name="targets")
    if n_synthetic < 0:
        raise ValueError("n_synthetic must be non-negative")
    if k_neighbors < 1:
        raise ValueError("k_neighbors must be >= 1")
    if not 0.0 <= relevance_threshold <= 1.0:
        raise ValueError("relevance_threshold must be in [0, 1]")
    if n_synthetic == 0:
        return np.empty((0, features.shape[1])), np.empty(0)
    if features.shape[0] < 2:
        raise ValueError("SmoteR needs at least two samples")

    rng = as_rng(random_state)
    relevance = target_relevance(targets)
    rare_indices = np.nonzero(relevance >= relevance_threshold)[0]
    if rare_indices.size < 2:
        rare_indices = np.arange(features.shape[0])

    rare_features = features[rare_indices]
    # Standardise for the neighbour search so no single feature dominates.
    scale = rare_features.std(axis=0)
    scale[scale == 0.0] = 1.0
    normalised = (rare_features - rare_features.mean(axis=0)) / scale

    synthetic_features = np.empty((n_synthetic, features.shape[1]))
    synthetic_targets = np.empty(n_synthetic)
    effective_k = min(k_neighbors, rare_indices.size - 1)
    for i in range(n_synthetic):
        seed_position = int(rng.integers(0, rare_indices.size))
        distances = np.sqrt(np.sum((normalised - normalised[seed_position]) ** 2, axis=1))
        distances[seed_position] = np.inf
        neighbour_positions = np.argsort(distances)[:effective_k]
        partner_position = int(neighbour_positions[int(rng.integers(0, effective_k))])

        seed_index = rare_indices[seed_position]
        partner_index = rare_indices[partner_position]
        factor = float(rng.uniform(0.0, 1.0))
        new_features = features[seed_index] + factor * (features[partner_index] - features[seed_index])
        # Distance-weighted target, as in the SmoteR paper: the synthetic
        # target leans towards the closer parent.
        d_seed = float(np.linalg.norm(new_features - features[seed_index]))
        d_partner = float(np.linalg.norm(new_features - features[partner_index]))
        total = d_seed + d_partner
        if total == 0.0:
            new_target = 0.5 * (targets[seed_index] + targets[partner_index])
        else:
            new_target = (
                targets[seed_index] * (d_partner / total)
                + targets[partner_index] * (d_seed / total)
            )
        synthetic_features[i] = new_features
        synthetic_targets[i] = new_target
    return synthetic_features, synthetic_targets
