"""Segment-metric time series.

Section III extends every scalar segment metric M_i to a time series by
presenting, for a segment in frame t, the metrics of the *same tracked
segment* in up to 10 previous frames to the meta classifier / regressor.
This module builds those time-series feature vectors from per-frame metric
datasets and the tracker of :mod:`repro.timedynamic.tracking`.

Missing history (tracks younger than the requested number of frames) is
filled by persisting the oldest observed value, and the number of actually
observed history frames is added as an extra feature, so the models can learn
that young (flickering) segments are less reliable — one of the time-dynamic
effects the paper exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.dataset import MetricsDataset
from repro.core.metrics import ImageMetrics, SegmentMetricsExtractor
from repro.core.segments import segment_ious, extract_segments
from repro.timedynamic.tracking import SegmentTracker
from repro.utils.validation import check_label_map

#: Default per-frame metrics used as the base of the time series.  A compact
#: subset keeps the concatenated feature vectors manageable for up to 10
#: previous frames while covering dispersion, geometry and confidence.
DEFAULT_BASE_FEATURES = (
    "E_mean", "E_bd_mean", "E_rel",
    "M_mean", "V_mean",
    "S", "S_bd", "S_rel",
    "pmax_mean", "predicted_class", "is_thing",
    "centroid_row", "centroid_col",
)


@dataclass
class SequenceMetrics:
    """Per-frame metric extraction results plus tracking for one video sequence."""

    sequence_id: int
    frames: List[ImageMetrics]
    track_assignments: List[Dict[int, int]]
    tracker: SegmentTracker
    pseudo_iou: List[Optional[np.ndarray]] = field(default_factory=list)
    real_iou_available: List[bool] = field(default_factory=list)

    @property
    def n_frames(self) -> int:
        """Number of frames in the sequence."""
        return len(self.frames)


class TimeSeriesBuilder:
    """Run per-frame metric extraction + tracking over a video sequence."""

    def __init__(
        self,
        extractor: Optional[SegmentMetricsExtractor] = None,
        max_missed_frames: int = 2,
        min_overlap_fraction: float = 0.1,
    ) -> None:
        self.extractor = extractor or SegmentMetricsExtractor()
        self.max_missed_frames = max_missed_frames
        self.min_overlap_fraction = min_overlap_fraction

    def process_sequence(
        self,
        probability_fields: Sequence[np.ndarray],
        gt_labels: Sequence[Optional[np.ndarray]],
        pseudo_gt_labels: Optional[Sequence[Optional[np.ndarray]]] = None,
        sequence_id: int = 0,
    ) -> SequenceMetrics:
        """Extract metrics, IoU targets and tracks for one sequence.

        Parameters
        ----------
        probability_fields:
            Softmax field per frame (from the network under test).
        gt_labels:
            Real ground truth per frame, or ``None`` for unlabelled frames.
        pseudo_gt_labels:
            Optional pseudo ground truth per frame (predictions of a stronger
            reference network); when given, pseudo IoU targets are computed
            for every frame that has one.
        """
        if len(probability_fields) == 0:
            raise ValueError("the sequence must contain at least one frame")
        if len(gt_labels) != len(probability_fields):
            raise ValueError("gt_labels must align with probability_fields")
        if pseudo_gt_labels is not None and len(pseudo_gt_labels) != len(probability_fields):
            raise ValueError("pseudo_gt_labels must align with probability_fields")

        tracker = SegmentTracker(
            max_missed_frames=self.max_missed_frames,
            min_overlap_fraction=self.min_overlap_fraction,
        )
        frames: List[ImageMetrics] = []
        assignments: List[Dict[int, int]] = []
        pseudo_iou: List[Optional[np.ndarray]] = []
        real_available: List[bool] = []
        for frame_index, probs in enumerate(probability_fields):
            gt = gt_labels[frame_index]
            image_metrics = self.extractor.extract_full(
                probs,
                gt_labels=gt,
                image_id=f"seq{sequence_id:03d}_frame{frame_index:04d}",
            )
            frames.append(image_metrics)
            real_available.append(gt is not None)
            assignments.append(tracker.update(image_metrics.prediction))
            if pseudo_gt_labels is not None and pseudo_gt_labels[frame_index] is not None:
                pseudo = check_label_map(pseudo_gt_labels[frame_index])
                pseudo_segmentation = extract_segments(pseudo)
                iou_map = segment_ious(image_metrics.prediction, pseudo_segmentation)
                pseudo_iou.append(
                    np.array(
                        [iou_map[sid] for sid in image_metrics.prediction.segment_ids()],
                        dtype=np.float64,
                    )
                )
            else:
                pseudo_iou.append(None)
        return SequenceMetrics(
            sequence_id=sequence_id,
            frames=frames,
            track_assignments=assignments,
            tracker=tracker,
            pseudo_iou=pseudo_iou,
            real_iou_available=real_available,
        )


def time_series_feature_names(
    base_features: Sequence[str], n_previous: int
) -> List[str]:
    """Names of the concatenated time-series features."""
    names = [f"{name}_t0" for name in base_features]
    for lag in range(1, n_previous + 1):
        names.extend(f"{name}_t-{lag}" for name in base_features)
    names.append("observed_history")
    return names


def build_time_series_dataset(
    sequences: Sequence[SequenceMetrics],
    n_previous: int,
    target: str = "real",
    base_features: Sequence[str] = DEFAULT_BASE_FEATURES,
    include_unlabeled: bool = False,
) -> MetricsDataset:
    """Assemble the time-series metrics dataset over several sequences.

    Parameters
    ----------
    sequences:
        Output of :meth:`TimeSeriesBuilder.process_sequence`.
    n_previous:
        Number of previous frames whose metrics are appended (0 reproduces
        the single-frame MetaSeg features restricted to *base_features*).
    target:
        ``"real"`` to use IoU targets from real ground truth (rows are only
        produced for frames that have it), ``"pseudo"`` to use pseudo IoU
        targets from the reference network.
    base_features:
        Per-frame metrics forming the base of the time series.
    include_unlabeled:
        Only relevant for ``target="real"``: if True, frames without ground
        truth yield rows without targets (not generally useful; default off).
    """
    if n_previous < 0:
        raise ValueError("n_previous must be non-negative")
    if target not in ("real", "pseudo"):
        raise ValueError("target must be 'real' or 'pseudo'")
    rows: List[np.ndarray] = []
    targets: List[float] = []
    segment_ids: List[int] = []
    class_ids: List[int] = []
    image_ids: List[str] = []
    base_features = list(base_features)

    for sequence in sequences:
        base_matrices: List[np.ndarray] = []
        id_to_row: List[Dict[int, int]] = []
        for image_metrics in sequence.frames:
            dataset = image_metrics.dataset
            base_matrices.append(dataset.feature_matrix(base_features))
            id_to_row.append({int(sid): i for i, sid in enumerate(dataset.segment_ids)})
        for frame_index, image_metrics in enumerate(sequence.frames):
            dataset = image_metrics.dataset
            if target == "real":
                if not sequence.real_iou_available[frame_index] and not include_unlabeled:
                    continue
                frame_targets = dataset.iou if sequence.real_iou_available[frame_index] else None
            else:
                frame_targets = sequence.pseudo_iou[frame_index]
                if frame_targets is None:
                    continue
            assignment = sequence.track_assignments[frame_index]
            for row_index, segment_id in enumerate(dataset.segment_ids):
                segment_id = int(segment_id)
                track_id = assignment.get(segment_id)
                track = sequence.tracker.tracks.get(track_id) if track_id is not None else None
                history_rows: List[np.ndarray] = [base_matrices[frame_index][row_index]]
                observed = 0
                last_seen = history_rows[0]
                for lag in range(1, n_previous + 1):
                    past_frame = frame_index - lag
                    past_row: Optional[np.ndarray] = None
                    if past_frame >= 0 and track is not None:
                        past_segment = track.segment_history.get(past_frame)
                        if past_segment is not None:
                            past_index = id_to_row[past_frame].get(int(past_segment))
                            if past_index is not None:
                                past_row = base_matrices[past_frame][past_index]
                    if past_row is not None:
                        observed += 1
                        last_seen = past_row
                        history_rows.append(past_row)
                    else:
                        history_rows.append(last_seen)
                feature_vector = np.concatenate(history_rows + [np.array([float(observed)])])
                rows.append(feature_vector)
                targets.append(float(frame_targets[row_index]) if frame_targets is not None else np.nan)
                segment_ids.append(segment_id)
                class_ids.append(int(dataset.class_ids[row_index]))
                image_ids.append(str(dataset.image_ids[row_index]))

    if not rows:
        raise ValueError("no rows produced; check ground-truth availability and target type")
    features = np.vstack(rows)
    target_array = np.asarray(targets, dtype=np.float64)
    iou = None if np.any(np.isnan(target_array)) else target_array
    return MetricsDataset(
        features=features,
        feature_names=time_series_feature_names(base_features, n_previous),
        segment_ids=np.asarray(segment_ids, dtype=np.int64),
        class_ids=np.asarray(class_ids, dtype=np.int64),
        image_ids=np.asarray(image_ids, dtype=object),
        iou=iou,
        extra={"n_previous": n_previous, "target": target},
    )
