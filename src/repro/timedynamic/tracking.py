"""Light-weight segment tracking over video frames.

Section III: "we develop a light-weight tracking algorithm based on semantic
segmentation, since by assumption the latter is already available.  Segments
in consecutive frames are matched according to their overlap in multiple
frames.  These measures are improved by shifting segments according to their
expected location in the subsequent frame."

The tracker below follows that recipe:

* candidate matches between a segment in frame t-1 and a segment in frame t
  require equal predicted class;
* the matching score is the pixel overlap after *shifting* the old segment by
  its expected displacement (estimated from the track's recent centroid
  motion);
* greedy one-to-one assignment by decreasing score; unmatched new segments
  start new tracks, unmatched old tracks stay alive for a configurable number
  of frames (so short flickers do not break identities).

Sparse single-pass matching
---------------------------

``match_segments`` is vectorised the same way as the static matching in
:mod:`repro.core.segments`:

* all zero-shift candidate overlaps come from **one** contingency-table pass
  (:func:`repro.utils.connected_components.pair_contingency`) over the two
  component images;
* segments with a non-zero expected shift scatter their sparse pixel-index
  list (grouped once per frame via :meth:`Segmentation.pixel_groups`) by the
  shift and read the overlaps against *all* current segments from one
  ``np.bincount`` — never a dense per-segment mask, never a full-image scan
  inside the pair loop.

The per-segment-mask implementation is retained verbatim as
``_reference_match_segments``; ``tests/test_tracking_parity_fuzz.py`` asserts
the two are bitwise-identical (same match dicts, same insertion order, same
greedy tie-breaks) on randomized video sequences, and
``benchmarks/bench_tracking.py`` gates the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.segments import Segmentation
from repro.utils.connected_components import pair_contingency

#: Bounding-box margin (pixels) of the cheap candidate prefilter.
_BOX_MARGIN = 8


@dataclass
class TrackedSegment:
    """One segment instance tracked through time."""

    track_id: int
    class_id: int
    last_frame: int
    last_segment_id: int
    centroid_history: List[Tuple[float, float]] = field(default_factory=list)
    segment_history: Dict[int, int] = field(default_factory=dict)
    """Mapping frame index → segment id within that frame."""
    missed_frames: int = 0

    def expected_shift(self) -> Tuple[float, float]:
        """Expected displacement per frame from the recent centroid motion."""
        if len(self.centroid_history) < 2:
            return (0.0, 0.0)
        (prev_row, prev_col), (last_row, last_col) = self.centroid_history[-2:]
        return (last_row - prev_row, last_col - prev_col)


def _overlap_after_shift(
    old_mask: np.ndarray,
    new_mask: np.ndarray,
    shift: Tuple[float, float],
) -> int:
    """Pixel overlap of *old_mask* shifted by *shift* with *new_mask*."""
    height, width = old_mask.shape
    rows, cols = np.nonzero(old_mask)
    if rows.size == 0:
        return 0
    shifted_rows = np.round(rows + shift[0]).astype(np.int64)
    shifted_cols = np.round(cols + shift[1]).astype(np.int64)
    keep = (
        (shifted_rows >= 0)
        & (shifted_rows < height)
        & (shifted_cols >= 0)
        & (shifted_cols < width)
    )
    if not np.any(keep):
        return 0
    return int(np.sum(new_mask[shifted_rows[keep], shifted_cols[keep]]))


def match_segments(
    previous: Segmentation,
    current: Segmentation,
    shifts: Optional[Dict[int, Tuple[float, float]]] = None,
    min_overlap_fraction: float = 0.1,
) -> Dict[int, int]:
    """Greedy one-to-one matching of segments between two consecutive frames.

    Vectorised over segment pairs (see the module docstring): zero-shift
    overlaps come from one contingency-table pass, shifted overlaps from one
    sparse scatter per shifted segment.  Bitwise-identical to
    :func:`_reference_match_segments`.

    Parameters
    ----------
    previous, current:
        Segment decompositions of frame t-1 and frame t.
    shifts:
        Optional expected displacement per previous-frame segment id.
    min_overlap_fraction:
        Minimum overlap (relative to the smaller of the two segments) for a
        match to be accepted.

    Returns
    -------
    dict
        Mapping previous segment id → current segment id.
    """
    if not 0.0 <= min_overlap_fraction <= 1.0:
        raise ValueError("min_overlap_fraction must be in [0, 1]")
    shifts = shifts or {}
    prev_ids = previous.segment_ids()
    curr_ids = current.segment_ids()
    if not prev_ids or not curr_ids:
        return {}
    n_prev = len(prev_ids)
    n_curr = len(curr_ids)
    prev_ids_arr = np.array(prev_ids, dtype=np.int64)
    curr_ids_arr = np.array(curr_ids, dtype=np.int64)
    prev_infos = [previous.segments[sid] for sid in prev_ids]
    curr_infos = [current.segments[sid] for sid in curr_ids]
    prev_class = np.array([info.class_id for info in prev_infos], dtype=np.int64)
    curr_class = np.array([info.class_id for info in curr_infos], dtype=np.int64)
    prev_boxes = np.array([info.bounding_box for info in prev_infos], dtype=np.float64)
    curr_boxes = np.array([info.bounding_box for info in curr_infos], dtype=np.float64)
    prev_sizes = np.array([info.size for info in prev_infos], dtype=np.int64)
    curr_sizes = np.array([info.size for info in curr_infos], dtype=np.int64)
    shift_arr = np.empty((n_prev, 2), dtype=np.float64)
    for row, prev_id in enumerate(prev_ids):
        shift_arr[row] = shifts.get(prev_id, (0.0, 0.0))

    # Candidate mask: equal class and shifted bounding boxes within the margin
    # (the exact float arithmetic of _boxes_close, broadcast over all pairs).
    shifted_top = prev_boxes[:, 0:1] + (shift_arr[:, 0:1] - _BOX_MARGIN)
    shifted_bottom = prev_boxes[:, 2:3] + (shift_arr[:, 0:1] + _BOX_MARGIN)
    shifted_left = prev_boxes[:, 1:2] + (shift_arr[:, 1:2] - _BOX_MARGIN)
    shifted_right = prev_boxes[:, 3:4] + (shift_arr[:, 1:2] + _BOX_MARGIN)
    separated = (
        (shifted_bottom <= curr_boxes[None, :, 0])
        | (curr_boxes[None, :, 2] <= shifted_top)
        | (shifted_right <= curr_boxes[None, :, 1])
        | (curr_boxes[None, :, 3] <= shifted_left)
    )
    candidate = (prev_class[:, None] == curr_class[None, :]) & ~separated

    # Pairwise overlaps, computed without any per-segment dense mask.
    overlap = np.zeros((n_prev, n_curr), dtype=np.int64)
    zero_shift = (shift_arr[:, 0] == 0.0) & (shift_arr[:, 1] == 0.0)
    max_curr_id = int(curr_ids_arr.max())
    col_of = np.full(max_curr_id + 1, -1, dtype=np.int64)
    col_of[curr_ids_arr] = np.arange(n_curr, dtype=np.int64)
    if np.any(zero_shift):
        # One pass yields every unshifted candidate overlap at once.
        table_prev, table_curr, table_counts = pair_contingency(
            previous.components, current.components
        )
        max_prev_id = int(prev_ids_arr.max())
        row_of = np.full(max_prev_id + 1, -1, dtype=np.int64)
        row_of[prev_ids_arr[zero_shift]] = np.nonzero(zero_shift)[0]
        in_range = (
            (table_prev >= 0) & (table_prev <= max_prev_id)
            & (table_curr >= 0) & (table_curr <= max_curr_id)
        )
        rows = row_of[np.clip(table_prev, 0, max_prev_id)]
        cols = col_of[np.clip(table_curr, 0, max_curr_id)]
        keep = in_range & (rows >= 0) & (cols >= 0)
        overlap[rows[keep], cols[keep]] = table_counts[keep]
    if not np.all(zero_shift):
        height, width = previous.components.shape
        groups = previous.pixel_groups()
        curr_flat = current.components.ravel()
        for row in np.nonzero(~zero_shift)[0]:
            group = groups.get(prev_ids[row])
            if group is None:
                continue
            pixel_rows, pixel_cols = group
            shifted_rows = np.round(pixel_rows + shift_arr[row, 0]).astype(np.int64)
            shifted_cols = np.round(pixel_cols + shift_arr[row, 1]).astype(np.int64)
            keep = (
                (shifted_rows >= 0)
                & (shifted_rows < height)
                & (shifted_cols >= 0)
                & (shifted_cols < width)
            )
            if not np.any(keep):
                continue
            hits = curr_flat[shifted_rows[keep] * width + shifted_cols[keep]]
            counts = np.bincount(hits, minlength=max_curr_id + 1)
            overlap[row, :] = counts[curr_ids_arr]

    # Acceptance test and greedy assignment, replicating the reference's
    # candidate order (row-major over sorted ids) and stable descending sort.
    smaller = np.minimum(prev_sizes[:, None], curr_sizes[None, :])
    accepted = candidate & (smaller > 0) & (
        overlap / np.maximum(smaller, 1) >= min_overlap_fraction
    )
    cand_rows, cand_cols = np.nonzero(accepted)
    cand_overlaps = overlap[cand_rows, cand_cols]
    order = np.argsort(-cand_overlaps, kind="stable")
    matched_prev: set = set()
    matched_curr: set = set()
    matches: Dict[int, int] = {}
    for index in order:
        prev_id = prev_ids[cand_rows[index]]
        curr_id = curr_ids[cand_cols[index]]
        if prev_id in matched_prev or curr_id in matched_curr:
            continue
        matches[prev_id] = curr_id
        matched_prev.add(prev_id)
        matched_curr.add(curr_id)
    return matches


def _reference_match_segments(
    previous: Segmentation,
    current: Segmentation,
    shifts: Optional[Dict[int, Tuple[float, float]]] = None,
    min_overlap_fraction: float = 0.1,
) -> Dict[int, int]:
    """Per-segment-mask reference for :func:`match_segments`.

    The original O(n_prev × n_curr × H×W) implementation, retained verbatim
    as the parity-fuzz ground truth and for the tracking benchmark; do not use
    it on hot paths.
    """
    if not 0.0 <= min_overlap_fraction <= 1.0:
        raise ValueError("min_overlap_fraction must be in [0, 1]")
    shifts = shifts or {}
    candidates: List[Tuple[int, int, int]] = []
    current_masks = {sid: current.components == sid for sid in current.segment_ids()}
    for prev_id in previous.segment_ids():
        prev_info = previous.segments[prev_id]
        prev_mask = previous.components == prev_id
        shift = shifts.get(prev_id, (0.0, 0.0))
        for curr_id in current.segment_ids():
            curr_info = current.segments[curr_id]
            if curr_info.class_id != prev_info.class_id:
                continue
            # Cheap bounding-box rejection before the pixel-level overlap.
            if not _boxes_close(prev_info.bounding_box, curr_info.bounding_box, shift, margin=8):
                continue
            overlap = _overlap_after_shift(prev_mask, current_masks[curr_id], shift)
            smaller = min(prev_info.size, curr_info.size)
            if smaller > 0 and overlap / smaller >= min_overlap_fraction:
                candidates.append((overlap, prev_id, curr_id))
    candidates.sort(key=lambda item: -item[0])
    matched_prev: set = set()
    matched_curr: set = set()
    matches: Dict[int, int] = {}
    for overlap, prev_id, curr_id in candidates:
        if prev_id in matched_prev or curr_id in matched_curr:
            continue
        matches[prev_id] = curr_id
        matched_prev.add(prev_id)
        matched_curr.add(curr_id)
    return matches


def _boxes_close(
    box_a: Tuple[int, int, int, int],
    box_b: Tuple[int, int, int, int],
    shift: Tuple[float, float],
    margin: int,
) -> bool:
    """Whether bounding box *a*, shifted, overlaps box *b* within a margin."""
    top_a, left_a, bottom_a, right_a = box_a
    top_b, left_b, bottom_b, right_b = box_b
    top_a += shift[0] - margin
    bottom_a += shift[0] + margin
    left_a += shift[1] - margin
    right_a += shift[1] + margin
    return not (
        bottom_a <= top_b or bottom_b <= top_a or right_a <= left_b or right_b <= left_a
    )


class SegmentTracker:
    """Track predicted segments through a sequence of frames.

    Usage: call :meth:`update` once per frame (in order) with the frame's
    :class:`~repro.core.segments.Segmentation`; afterwards :attr:`tracks`
    contains every track with its per-frame segment ids.

    ``match_fn`` overrides the frame-pair matcher (same signature as
    :func:`match_segments`); it exists so the parity-fuzz suite and the
    tracking benchmark can run a whole tracker against
    :func:`_reference_match_segments`.
    """

    def __init__(
        self,
        max_missed_frames: int = 2,
        min_overlap_fraction: float = 0.1,
        match_fn: Optional[Callable[..., Dict[int, int]]] = None,
    ) -> None:
        if max_missed_frames < 0:
            raise ValueError("max_missed_frames must be non-negative")
        self.max_missed_frames = max_missed_frames
        self.min_overlap_fraction = min_overlap_fraction
        self.tracks: Dict[int, TrackedSegment] = {}
        self._active: Dict[int, TrackedSegment] = {}
        self._next_track_id = 0
        self._frame_index = -1
        self._previous: Optional[Segmentation] = None
        self._match_fn = match_fn or match_segments
        # Reverse index frame → {segment id: track id}, maintained by
        # _start_track/_extend_track so track_of is a dict lookup instead of
        # an O(n_tracks) scan over every track's history.
        self._frame_tracks: Dict[int, Dict[int, int]] = {}

    # ------------------------------------------------------------------ ---
    def update(self, segmentation: Segmentation) -> Dict[int, int]:
        """Ingest the next frame; return mapping segment id → track id."""
        self._frame_index += 1
        frame = self._frame_index
        assignment: Dict[int, int] = {}
        if self._previous is None:
            for segment_id in segmentation.segment_ids():
                assignment[segment_id] = self._start_track(segmentation, segment_id, frame)
        else:
            shifts = {}
            prev_segment_to_track = {
                track.last_segment_id: track
                for track in self._active.values()
                if track.last_frame == frame - 1
            }
            for prev_segment_id, track in prev_segment_to_track.items():
                shifts[prev_segment_id] = track.expected_shift()
            matches = self._match_fn(
                self._previous, segmentation, shifts, self.min_overlap_fraction
            )
            matched_current = set()
            for prev_segment_id, curr_segment_id in matches.items():
                track = prev_segment_to_track.get(prev_segment_id)
                if track is None:
                    continue
                self._extend_track(track, segmentation, curr_segment_id, frame)
                assignment[curr_segment_id] = track.track_id
                matched_current.add(curr_segment_id)
            for segment_id in segmentation.segment_ids():
                if segment_id not in matched_current:
                    assignment[segment_id] = self._start_track(segmentation, segment_id, frame)
        # Age unmatched active tracks and retire the stale ones.
        for track in list(self._active.values()):
            if track.last_frame != frame:
                track.missed_frames += 1
                if track.missed_frames > self.max_missed_frames:
                    del self._active[track.track_id]
        self._previous = segmentation
        return assignment

    # ------------------------------------------------------------------ ---
    def _start_track(self, segmentation: Segmentation, segment_id: int, frame: int) -> int:
        info = segmentation.segments[segment_id]
        track = TrackedSegment(
            track_id=self._next_track_id,
            class_id=info.class_id,
            last_frame=frame,
            last_segment_id=segment_id,
            centroid_history=[info.centroid],
            segment_history={frame: segment_id},
        )
        self.tracks[track.track_id] = track
        self._active[track.track_id] = track
        self._frame_tracks.setdefault(frame, {})[segment_id] = track.track_id
        self._next_track_id += 1
        return track.track_id

    def _extend_track(
        self, track: TrackedSegment, segmentation: Segmentation, segment_id: int, frame: int
    ) -> None:
        info = segmentation.segments[segment_id]
        track.last_frame = frame
        track.last_segment_id = segment_id
        track.missed_frames = 0
        track.centroid_history.append(info.centroid)
        track.segment_history[frame] = segment_id
        self._frame_tracks.setdefault(frame, {})[segment_id] = track.track_id

    # ------------------------------------------------------------------ ---
    @property
    def n_tracks(self) -> int:
        """Total number of tracks created so far."""
        return len(self.tracks)

    def track_of(self, frame: int, segment_id: int) -> Optional[int]:
        """Track id of a segment in a given frame, or ``None`` if untracked."""
        frame_tracks = self._frame_tracks.get(frame)
        if frame_tracks is None:
            return None
        return frame_tracks.get(segment_id)

    def track_lengths(self) -> Dict[int, int]:
        """Number of frames each track was observed in."""
        return {track_id: len(track.segment_history) for track_id, track in self.tracks.items()}
