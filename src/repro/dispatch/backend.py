"""The ``distributed`` execution backend: shard fan-out over the work queue.

:class:`DistributedBackend` is the :class:`~repro.api.execution.ProcessBackend`
with its process-pool shard computation replaced by the fault-tolerant
dispatch queue: a :class:`~repro.dispatch.coordinator.Coordinator` serves
the shard specs over localhost TCP to ``multiprocessing`` workers running
:func:`~repro.dispatch.worker.worker_main` (externally attached
``python -m repro worker`` processes can join the same queue).  Everything
else — spec construction, trace-envelope absorption, shard-order merging,
the serial fallback for one worker / one item — is inherited, so the
bitwise-parity contract of the base class carries over verbatim; the queue
adds worker-loss tolerance, lease timeouts, retry with backoff, dedup and
inline graceful degradation on top.

With a store attached, shard reuse additionally becomes *single-flight*
across processes: missing shard keys are claimed through the store's
lock-file primitives, unclaimed keys (another run is computing them right
now) are waited on and re-read, and a waiter whose producer died rescues
the shard by computing it inline.  Concurrent runs over the same config
therefore compute each shard once, not once per run.

Queue stats accumulate on ``self.dispatch_stats`` (the Runner copies them
into ``report.cache["dispatch"]``) and mirror to ``METRICS`` under
``dispatch.*`` — the counters the fault-injection suite asserts exactly.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Dict, List, Optional

from repro.api.config import ExecutionConfig
from repro.api.execution import ProcessBackend
from repro.api.registry import EXECUTION_BACKENDS
from repro.dispatch.coordinator import STAT_NAMES, Coordinator
from repro.dispatch.faults import FaultPlan
from repro.dispatch.worker import is_worker_process, worker_main
from repro.store import shard_key

#: Grace period for spawned workers to exit after the queue winds down.
JOIN_TIMEOUT = 10.0


def _worker_context():
    """The multiprocessing context used for spawned queue workers.

    Fork is preferred where available (no import re-execution, cheap
    startup); the platform default otherwise.  Workers never share state
    with the parent beyond the spec they receive over the socket, so the
    start method cannot influence results.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


@EXECUTION_BACKENDS.register("distributed")
class DistributedBackend(ProcessBackend):
    """Sharded execution over the fault-tolerant dispatch queue; see module doc."""

    name = "distributed"

    def __init__(self, execution: ExecutionConfig) -> None:
        super().__init__(execution)
        #: Aggregated queue counters of this run (see ``STAT_NAMES``); the
        #: Runner exposes them as ``report.cache["dispatch"]``.
        self.dispatch_stats: Dict[str, int] = {name: 0 for name in STAT_NAMES}

    def default_workers(self) -> int:
        if is_worker_process():
            # Inside a dispatch worker: degrade to the inline serial walk so
            # a distributed config never recursively fans out from within
            # its own workers.
            return 1
        return super().default_workers()

    # ------------------------------------------------------------- the queue
    @staticmethod
    def _dedup_keys(specs: List[Dict]) -> Optional[List[Optional[str]]]:
        """Shard-content keys for queue-level dedup, where derivable.

        Two specs with the same (config, index range) produce byte-identical
        payloads, so the coordinator may compute one and fan the result out.
        Specs without the shard fields (e.g. sweep points) get ``None``.
        """
        keys: List[Optional[str]] = []
        for spec in specs:
            try:
                keys.append(shard_key(spec["config"], spec["start"], spec["stop"]))
            except (KeyError, TypeError):
                keys.append(None)
        return keys if any(key is not None for key in keys) else None

    def _compute_shards(self, worker: Callable, specs: List[Dict]) -> List:
        """Compute shard specs through the dispatch queue (results in order)."""
        if len(specs) == 1 or is_worker_process():
            return [worker(spec) for spec in specs]
        fn = f"{worker.__module__}:{worker.__qualname__}"
        fault_plan = FaultPlan.from_env()
        n_workers = min(self.default_workers(), len(specs))
        context = _worker_context()
        execution = self.execution
        with Coordinator(
            lease_timeout=execution.lease_timeout,
            max_retries=execution.max_retries,
            backoff=execution.backoff,
        ) as coordinator:
            host, port = coordinator.address
            spawned = []
            for index in range(n_workers):
                process = context.Process(
                    target=worker_main,
                    args=(host, port),
                    kwargs={"worker_id": f"w{index}", "fault_plan": fault_plan},
                    daemon=True,
                )
                process.start()
                spawned.append(process)
            try:
                results = coordinator.run(
                    fn, specs, keys=self._dedup_keys(specs), spawned=spawned
                )
            finally:
                for name, value in coordinator.stats.items():
                    self.dispatch_stats[name] += value
                coordinator.close()  # EOF tells lingering workers to exit
                for process in spawned:
                    process.join(timeout=JOIN_TIMEOUT)
                for process in spawned:
                    if process.is_alive():
                        process.terminate()
                        process.join(timeout=JOIN_TIMEOUT)
        return results

    # ------------------------------------------------- single-flight caching
    def _map_shards(self, worker: Callable, specs: List[Dict]) -> List:
        """Shard results in shard order, single-flight across processes.

        Without a store this is the queue fan-out.  With one, every missing
        shard key is either *claimed* (we compute it — one queue run for the
        whole claimed batch — and publish), or already claimed by another
        process, in which case we wait and re-read; if that producer dies
        without publishing, the waiter rescues the shard by computing it
        inline.  Either way each shard is computed once machine-wide.
        """
        if self.store is None:
            computed = self._compute_shards(worker, specs)
            return [self._absorb_shard_trace(result) for result in computed]
        keys = [
            shard_key(spec["config"], spec["start"], spec["stop"]) for spec in specs
        ]
        results: List = [self.store.get(key, codec="pickle") for key in keys]
        missing = [index for index, result in enumerate(results) if result is None]
        self.shard_cache["hits"] += len(specs) - len(missing)
        self.shard_cache["misses"] += len(missing)
        if not missing:
            return results
        claimed = [index for index in missing if self.store.try_claim(keys[index])]
        waiting = [index for index in missing if index not in set(claimed)]
        try:
            if claimed:
                computed = self._compute_shards(worker, [specs[i] for i in claimed])
                for index, result in zip(claimed, computed):
                    results[index] = self._put_shard(keys[index], specs[index], result)
        finally:
            for index in claimed:
                self.store.release(keys[index])
        for index in waiting:
            value = self.store.wait_for(keys[index], codec="pickle")
            if value is None:
                # The claiming producer died without publishing: rescue the
                # shard inline (pure function of the spec — same bytes).
                value = self._put_shard(keys[index], specs[index], worker(specs[index]))
            results[index] = value
        return results

    def _put_shard(self, key: str, spec: Dict, result):
        """Absorb one computed shard's trace envelope and publish it."""
        result = self._absorb_shard_trace(result)
        self.store.put(
            key,
            result,
            codec="pickle",
            provenance={
                "type": "shard",
                "kind": spec["config"]["kind"],
                "start": spec["start"],
                "stop": spec["stop"],
                "config_hash": key,
            },
        )
        return result


__all__ = ["DistributedBackend", "JOIN_TIMEOUT"]
