"""Deterministic fault injection for the dispatch layer.

A :class:`FaultPlan` is a declarative, JSON-round-trippable list of fault
entries that test workers consult before computing each task::

    plan = FaultPlan([
        {"worker": "w0", "attempt": 0, "action": "kill"},
        {"task": 2, "attempt": 1, "action": "hang", "seconds": 2.0},
    ])

Each entry matches on any combination of

* ``worker``  — the worker id (``None``/absent: any worker);
* ``task``    — the task index (``None``/absent: any task);
* ``attempt`` — when ``task`` is given, the task's attempt number
  (0 = first try); without ``task``, the worker's own lease ordinal
  (0 = the first task that worker ever leases).  Absent: 0.

and triggers one of three actions:

* ``kill``  — the worker process exits immediately (``os._exit``), before
  any heartbeat is sent: the coordinator sees the connection drop while the
  lease is active and requeues the task (a ``worker_lost`` event);
* ``hang``  — the worker sleeps ``seconds`` *without heartbeating*, so the
  lease expires and the coordinator requeues the task (``lease_expired``);
  the worker then resumes, and its late/duplicate result is ignored;
* ``delay`` — the worker sleeps ``seconds`` *with heartbeats running*, so
  the lease stays alive and no retry is triggered (the control case).

Keying actions on ``(task, attempt)`` — or on the worker's lease ordinal —
rather than on a wall-clock makes every injected failure reproducible
regardless of how the scheduler interleaves workers, which is what lets
the fault suite assert retry/worker-loss counters *exactly*.

:meth:`FaultPlan.generate` derives a random plan from a seed (via
``np.random.default_rng``) for fuzz sweeps; plans travel to spawned workers
by pickle and to external workers via the ``REPRO_DISPATCH_FAULTS``
environment variable (JSON) or ``python -m repro worker --fault-plan``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

#: Environment variable carrying a JSON fault plan to workers/backends.
FAULTS_ENV = "REPRO_DISPATCH_FAULTS"

#: The injectable actions.
ACTIONS = ("kill", "hang", "delay")


class FaultPlanError(ValueError):
    """A structurally invalid fault plan."""


def _check_entry(entry: object, index: int) -> Dict[str, object]:
    if not isinstance(entry, dict):
        raise FaultPlanError(f"fault entry {index} must be a dict, got {entry!r}")
    action = entry.get("action")
    if action not in ACTIONS:
        raise FaultPlanError(
            f"fault entry {index}: action must be one of {ACTIONS}, got {action!r}"
        )
    unknown = set(entry) - {"worker", "task", "attempt", "action", "seconds"}
    if unknown:
        raise FaultPlanError(
            f"fault entry {index}: unknown keys {', '.join(sorted(unknown))}"
        )
    seconds = entry.get("seconds", 0.0)
    if not isinstance(seconds, (int, float)) or isinstance(seconds, bool) or seconds < 0:
        raise FaultPlanError(
            f"fault entry {index}: seconds must be a non-negative number"
        )
    return {
        "worker": entry.get("worker"),
        "task": entry.get("task"),
        "attempt": int(entry.get("attempt", 0)),
        "action": str(action),
        "seconds": float(seconds),
    }


class FaultPlan:
    """An ordered list of fault entries; first match wins."""

    def __init__(self, entries: Optional[List[Dict[str, object]]] = None) -> None:
        self.entries = [
            _check_entry(entry, index) for index, entry in enumerate(entries or [])
        ]

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __repr__(self) -> str:
        return f"FaultPlan({self.entries!r})"

    def action_for(
        self,
        worker_id: str,
        task_index: int,
        attempt: int,
        lease_ordinal: int,
    ) -> Optional[Dict[str, object]]:
        """The first entry matching this lease, or ``None``.

        ``attempt`` is the task's retry count (0-based); ``lease_ordinal``
        is how many tasks this worker has leased before this one.  Entries
        with a ``task`` match on ``(task, attempt)``; task-less entries
        match on the worker's own lease ordinal, which is what lets a plan
        say "this worker dies on its first task, whichever task that is".
        """
        for entry in self.entries:
            if entry["worker"] is not None and entry["worker"] != worker_id:
                continue
            if entry["task"] is not None:
                if entry["task"] != task_index or entry["attempt"] != attempt:
                    continue
            elif entry["attempt"] != lease_ordinal:
                continue
            return entry
        return None

    # ------------------------------------------------------- (de)serialisation
    def to_json(self) -> str:
        return json.dumps(self.entries, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            entries = json.loads(text)
        except ValueError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from None
        if not isinstance(entries, list):
            raise FaultPlanError("a fault plan is a JSON list of entries")
        return cls(entries)

    @classmethod
    def from_env(cls, environ: Optional[Dict[str, str]] = None) -> Optional["FaultPlan"]:
        """The plan carried by ``$REPRO_DISPATCH_FAULTS``, or ``None``."""
        text = (environ if environ is not None else os.environ).get(FAULTS_ENV)
        if not text:
            return None
        return cls.from_json(text)

    # ------------------------------------------------------------- generation
    @classmethod
    def generate(
        cls,
        seed: int,
        n_tasks: int,
        n_workers: int,
        n_faults: int = 2,
        max_attempt: int = 1,
        hang_seconds: float = 2.0,
        delay_seconds: float = 0.05,
    ) -> "FaultPlan":
        """A seeded random plan for fuzz sweeps (deterministic per seed)."""
        import numpy as np

        rng = np.random.default_rng(seed)
        entries: List[Dict[str, object]] = []
        for _ in range(n_faults):
            action = ACTIONS[int(rng.integers(len(ACTIONS)))]
            entry: Dict[str, object] = {"action": action}
            if rng.integers(2):
                entry["worker"] = f"w{int(rng.integers(n_workers))}"
                entry["attempt"] = 0
            else:
                entry["task"] = int(rng.integers(n_tasks))
                entry["attempt"] = int(rng.integers(max_attempt + 1))
            if action == "hang":
                entry["seconds"] = hang_seconds
            elif action == "delay":
                entry["seconds"] = delay_seconds
            entries.append(entry)
        return cls(entries)


__all__ = ["ACTIONS", "FAULTS_ENV", "FaultPlan", "FaultPlanError"]
