"""Fault-tolerant distributed dispatch: a localhost TCP work queue.

The package behind ``execution_backends["distributed"]``:

* :mod:`repro.dispatch.protocol` — the framed pickle wire protocol;
* :mod:`repro.dispatch.coordinator` — the selector-driven work queue with
  leases, heartbeats, retry/backoff, dedup, quarantine and inline fallback;
* :mod:`repro.dispatch.worker` — the worker loop (spawned or attached via
  ``python -m repro worker --connect host:port``);
* :mod:`repro.dispatch.backend` — the execution backend gluing the queue
  into the Runner;
* :mod:`repro.dispatch.faults` — the deterministic fault-injection harness.
"""

from repro.dispatch.coordinator import Coordinator, DispatchError, STAT_NAMES
from repro.dispatch.faults import FAULTS_ENV, FaultPlan, FaultPlanError
from repro.dispatch.protocol import (
    PROTOCOL_VERSION,
    FrameBuffer,
    ProtocolError,
    encode_frame,
    recv_message,
    send_message,
)
from repro.dispatch.worker import (
    KILL_EXIT_CODE,
    WORKER_ENV,
    is_worker_process,
    worker_main,
)

__all__ = [
    "Coordinator",
    "DispatchError",
    "FAULTS_ENV",
    "FaultPlan",
    "FaultPlanError",
    "FrameBuffer",
    "KILL_EXIT_CODE",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "STAT_NAMES",
    "WORKER_ENV",
    "encode_frame",
    "is_worker_process",
    "recv_message",
    "send_message",
    "worker_main",
]
