"""The dispatch coordinator: a fault-tolerant localhost TCP work queue.

A :class:`Coordinator` serves picklable task specs to worker processes over
the framed pickle protocol (:mod:`repro.dispatch.protocol`) and collects
their results, surviving every failure mode a multi-worker system has:

* **worker loss** — a connection dropping while its lease is active
  requeues the task immediately;
* **hangs** — every lease has a deadline, renewed by worker heartbeats; a
  worker that stops heartbeating (wedged, swapped, paused) loses the lease
  and the task is requeued;
* **poison shards** — a task is retried with exponential backoff and
  deterministic jitter up to ``max_retries`` times, then quarantined: the
  run fails with a structured :class:`DispatchError` naming the shard,
  never a hang;
* **stampedes** — tasks sharing a dedup key are computed once: while one is
  leased its twins are held, and its result fans out to all of them;
* **total worker death** — when every worker is gone (all spawned processes
  dead, no connection open) the coordinator finishes the remaining tasks
  inline in its own process, so a run *always* terminates with exactly the
  serial result.

The event loop is single-threaded (``selectors`` over blocking sockets, one
``recv`` per readiness event re-assembled by :class:`FrameBuffer`), runs in
the caller's thread, and is therefore free of shared mutable state by
construction.  Results are returned in task-index order; because the
payload of a task is a pure function of its spec, every retry/requeue/
failover path is bitwise identical to computing the specs serially.

Task messages carry the full spec — including the span context the
execution backend embeds (``spec["trace"]``) — so leases propagate the
parent trace across the socket exactly like the process backend does, and
every retry/requeue/worker-loss event is counted both in ``self.stats``
and on the process-wide :data:`repro.obs.METRICS` registry under
``dispatch.*``.
"""

from __future__ import annotations

import importlib
import selectors
import socket
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.dispatch.protocol import (
    PROTOCOL_VERSION,
    FrameBuffer,
    send_message,
)
from repro.obs.metrics import METRICS

#: Backoff delay cap (seconds): retries never wait longer than this.
BACKOFF_CAP = 5.0

#: Default idle delay told to workers when nothing is runnable right now.
WAIT_DELAY = 0.05

#: The stats counters every run reports (and mirrors to METRICS).
STAT_NAMES = (
    "completed", "from_workers", "inline", "dedup_hits", "retries",
    "worker_lost", "lease_expired", "failures", "duplicates", "quarantined",
)


class DispatchError(RuntimeError):
    """A task exhausted its retry budget (poison shard) or failed inline.

    Carries the failing task's identity so callers (and CI logs) can name
    the shard instead of guessing from a generic failure.
    """

    def __init__(self, task_index: int, key: Optional[str], attempts: int, reason: str) -> None:
        self.task_index = task_index
        self.key = key
        self.attempts = attempts
        self.reason = reason
        label = f" (key {key[:12]})" if key else ""
        super().__init__(
            f"dispatch task {task_index}{label} failed after {attempts} "
            f"attempt(s): {reason}"
        )


def resolve_callable(fn_spec: str) -> Callable:
    """Resolve a ``"module:qualname"`` task function reference.

    Workers receive functions by name, never by pickled code object, so an
    externally attached worker runs exactly the function its own code tree
    defines — version skew surfaces as an import/lookup error, not as
    silently different numbers.
    """
    module_name, _, qualname = fn_spec.partition(":")
    if not module_name or not qualname:
        raise DispatchError(-1, None, 0, f"malformed task function reference {fn_spec!r}")
    obj = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise DispatchError(-1, None, 0, f"task function {fn_spec!r} is not callable")
    return obj


def backoff_jitter(task_index: int, attempts: int) -> float:
    """Deterministic jitter fraction in ``[0, 0.5)`` for one retry.

    Derived arithmetically from (task, attempt) — no RNG, no global state —
    so two coordinators retrying the same task desynchronise their retries
    identically and reproducibly.
    """
    return ((task_index * 2654435761 + attempts * 40503) % 997) / 1994.0


class _Connection:
    """Per-socket state of one attached worker."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.buffer = FrameBuffer()
        self.worker_id: Optional[str] = None
        self.handshook = False
        self.task_index: Optional[int] = None  # current lease, if any
        self.lease_deadline = 0.0
        self.lease_attempt = -1


class Coordinator:
    """Serve task specs to workers over a localhost TCP queue; see module doc.

    Parameters mirror :class:`repro.api.config.ExecutionConfig`:
    ``lease_timeout`` (seconds a lease survives without a heartbeat),
    ``max_retries`` (requeues before quarantine) and ``backoff`` (base
    retry delay, doubled per attempt, capped at :data:`BACKOFF_CAP`).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout: float = 30.0,
        max_retries: int = 3,
        backoff: float = 0.05,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be > 0, got {lease_timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        self.lease_timeout = float(lease_timeout)
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        self.stats: Dict[str, int] = {name: 0 for name in STAT_NAMES}
        self._listener = socket.create_server((host, port), backlog=64)
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ)
        self._connections: Dict[socket.socket, _Connection] = {}
        self._ever_connected = False
        self._closed = False
        self._fn = ""
        self._tasks: List[Dict[str, object]] = []
        self._done = 0

    # ------------------------------------------------------------------ ---
    @property
    def address(self) -> Tuple[str, int]:
        """The (host, port) workers should connect to."""
        return self._listener.getsockname()[:2]

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut every connection down and release the listening socket."""
        if self._closed:
            return
        self._closed = True
        for conn in list(self._connections.values()):
            self._send_safe(conn, {"type": "shutdown"})
            self._drop(conn, lost=False)
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._listener.close()
        self._selector.close()

    def _count(self, name: str, n: int = 1) -> None:
        self.stats[name] += n
        METRICS.counter(f"dispatch.{name}").inc(n)

    # ------------------------------------------------------------------ run
    def run(
        self,
        fn: str,
        specs: List[Dict[str, object]],
        keys: Optional[List[Optional[str]]] = None,
        spawned: Optional[List[object]] = None,
    ) -> List[object]:
        """Dispatch every spec and return the results in spec order.

        ``fn`` is a ``"module:qualname"`` reference resolved *inside* each
        worker; ``keys`` (optional, same length) enables dedup — two specs
        with equal keys are computed once.  ``spawned`` is the list of
        process handles the caller launched for this run (anything with
        ``is_alive()``); the coordinator watches them to decide when every
        worker is gone and the remaining tasks must be finished inline.
        """
        if self._closed:
            raise RuntimeError("coordinator is closed")
        if keys is not None and len(keys) != len(specs):
            raise ValueError("keys must be None or match specs in length")
        tasks = [
            {
                "index": index,
                "spec": spec,
                "key": None if keys is None else keys[index],
                "status": "pending",
                "attempts": 0,
                "not_before": 0.0,
                "last_error": "",
                "result": None,
            }
            for index, spec in enumerate(specs)
        ]
        self._fn = fn
        self._tasks = tasks
        self._done = 0
        while self._done < len(tasks):
            self._check_quarantine()
            if self._workers_exhausted(spawned):
                self._finish_inline()
                break
            timeout = self._tick_timeout()
            for selector_key, _ in self._selector.select(timeout):
                if selector_key.fileobj is self._listener:
                    self._accept()
                else:
                    self._read(self._connections.get(selector_key.fileobj))
            self._expire_leases()
        self._check_quarantine()
        results = [task["result"] for task in self._tasks]
        # Wind down: tell idle workers to exit; their sockets close with us.
        for conn in list(self._connections.values()):
            if conn.task_index is None:
                self._send_safe(conn, {"type": "shutdown"})
        return results

    # ------------------------------------------------------------- event loop
    def _tick_timeout(self) -> float:
        """Sleep bound for one select: the nearest deadline, capped."""
        now = time.monotonic()  # repro: allow[det-wallclock] -- lease/backoff scheduling only, never enters results
        horizon = now + 0.2
        for conn in self._connections.values():
            if conn.task_index is not None:
                horizon = min(horizon, conn.lease_deadline)
        for task in self._tasks:
            if task["status"] == "pending" and task["not_before"] > now:
                horizon = min(horizon, task["not_before"])
        return max(0.01, horizon - now)

    def _accept(self) -> None:
        try:
            sock, _ = self._listener.accept()
        except OSError:
            return
        sock.setblocking(True)
        conn = _Connection(sock)
        self._connections[sock] = conn
        self._selector.register(sock, selectors.EVENT_READ)
        self._ever_connected = True

    def _read(self, conn: Optional[_Connection]) -> None:
        if conn is None:
            return
        try:
            data = conn.sock.recv(1 << 16)
        except OSError:
            self._drop(conn, lost=True)
            return
        if not data:
            self._drop(conn, lost=True)
            return
        try:
            messages = conn.buffer.feed(data)
        except Exception:
            # Unframeable/undecodable bytes: the peer is broken, not the run.
            self._drop(conn, lost=True)
            return
        for message in messages:
            self._handle(conn, message)
            if conn.sock not in self._connections:
                break

    def _drop(self, conn: _Connection, lost: bool) -> None:
        """Forget a connection; a lost one requeues its active lease."""
        self._connections.pop(conn.sock, None)
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        if lost and conn.task_index is not None:
            task = self._tasks[conn.task_index]
            conn.task_index = None
            if task["status"] == "leased":
                self._count("worker_lost")
                self._requeue(task, "worker connection lost")

    def _send_safe(self, conn: _Connection, message: Dict[str, object]) -> bool:
        try:
            send_message(conn.sock, message)
            return True
        except OSError:
            self._drop(conn, lost=True)
            return False

    # --------------------------------------------------------------- messages
    def _handle(self, conn: _Connection, message: Dict[str, object]) -> None:
        kind = message.get("type")
        if not conn.handshook:
            if kind != "hello" or message.get("version") != PROTOCOL_VERSION:
                self._send_safe(
                    conn,
                    {"type": "reject", "version": PROTOCOL_VERSION,
                     "got": message.get("version")},
                )
                self._drop(conn, lost=False)
                return
            conn.handshook = True
            conn.worker_id = str(message.get("worker_id") or f"worker-{len(self._connections)}")
            self._send_safe(conn, {"type": "welcome", "version": PROTOCOL_VERSION})
            return
        if kind == "request":
            self._assign(conn)
        elif kind == "heartbeat":
            if conn.task_index is not None and message.get("task") == conn.task_index:
                conn.lease_deadline = time.monotonic() + self.lease_timeout  # repro: allow[det-wallclock] -- lease renewal deadline, scheduling only
        elif kind == "result":
            self._complete(conn, message)
        elif kind == "error":
            self._worker_error(conn, message)
        elif kind == "bye":
            self._drop(conn, lost=False)
        # Unknown message types are ignored: forward compatibility within a
        # protocol version is additive.

    def _assign(self, conn: _Connection) -> None:
        if self._done >= len(self._tasks):
            self._send_safe(conn, {"type": "shutdown"})
            return
        now = time.monotonic()  # repro: allow[det-wallclock] -- backoff gating, scheduling only
        leased_keys = {
            task["key"]
            for task in self._tasks
            if task["status"] == "leased" and task["key"] is not None
        }
        runnable = None
        for task in self._tasks:
            if task["status"] != "pending" or task["not_before"] > now:
                continue
            if task["key"] is not None and task["key"] in leased_keys:
                continue  # dedup hold: its twin is already being computed
            runnable = task
            break
        if runnable is None:
            self._send_safe(conn, {"type": "wait", "seconds": WAIT_DELAY})
            return
        runnable["status"] = "leased"
        runnable["attempts"] += 1
        conn.task_index = runnable["index"]
        conn.lease_attempt = runnable["attempts"] - 1
        conn.lease_deadline = now + self.lease_timeout
        self._send_safe(
            conn,
            {
                "type": "task",
                "task": runnable["index"],
                "attempt": conn.lease_attempt,
                "fn": self._fn,
                "spec": runnable["spec"],
                "heartbeat_every": self.lease_timeout / 3.0,
            },
        )

    def _complete(self, conn: _Connection, message: Dict[str, object]) -> None:
        index = message.get("task")
        if (
            not isinstance(index, int)
            or conn.task_index != index
            or message.get("attempt") != conn.lease_attempt
        ):
            self._count("duplicates")  # stale result from an expired lease
            return
        conn.task_index = None
        task = self._tasks[index]
        if task["status"] == "done":
            self._count("duplicates")
            return
        self._finish_task(task, message.get("payload"), via="from_workers")

    def _finish_task(self, task: Dict[str, object], payload: object, via: str) -> None:
        task["status"] = "done"
        task["result"] = payload
        self._done += 1
        self._count("completed")
        self._count(via)
        if task["key"] is not None:
            # Dedup fan-out: every pending twin completes with this payload.
            for twin in self._tasks:
                if (
                    twin["status"] == "pending"
                    and twin["key"] == task["key"]
                    and twin is not task
                ):
                    twin["status"] = "done"
                    twin["result"] = payload
                    self._done += 1
                    self._count("completed")
                    self._count("dedup_hits")

    def _worker_error(self, conn: _Connection, message: Dict[str, object]) -> None:
        index = message.get("task")
        if (
            not isinstance(index, int)
            or conn.task_index != index
            or message.get("attempt") != conn.lease_attempt
        ):
            return
        conn.task_index = None
        task = self._tasks[index]
        if task["status"] != "leased":
            return
        self._count("failures")
        self._requeue(task, str(message.get("error", "worker error")))

    # ------------------------------------------------------ retries / leases
    def _requeue(self, task: Dict[str, object], reason: str) -> None:
        task["last_error"] = reason
        if task["attempts"] > self.max_retries:
            task["status"] = "quarantined"
            self._count("quarantined")
            return
        self._count("retries")
        delay = min(BACKOFF_CAP, self.backoff * (2 ** (task["attempts"] - 1)))
        delay *= 1.0 + backoff_jitter(task["index"], task["attempts"])
        task["status"] = "pending"
        task["not_before"] = time.monotonic() + delay  # repro: allow[det-wallclock] -- retry backoff deadline, scheduling only

    def _expire_leases(self) -> None:
        now = time.monotonic()  # repro: allow[det-wallclock] -- lease expiry check, scheduling only
        for conn in list(self._connections.values()):
            if conn.task_index is None or now <= conn.lease_deadline:
                continue
            task = self._tasks[conn.task_index]
            conn.task_index = None  # the worker keeps running; its late result is ignored
            if task["status"] == "leased":
                self._count("lease_expired")
                self._requeue(task, f"lease expired after {self.lease_timeout}s without a heartbeat")

    def _check_quarantine(self) -> None:
        for task in self._tasks:
            if task["status"] == "quarantined":
                raise DispatchError(
                    task["index"], task["key"], task["attempts"], task["last_error"]
                )

    # ------------------------------------------------------ inline completion
    def _workers_exhausted(self, spawned: Optional[List[object]]) -> bool:
        """True when no worker is left to make progress.

        With spawned processes: all of them dead and no connection open.
        Without (externally attached workers only): at least one worker came
        and went, and none remain — a queue nobody ever joined keeps
        waiting, because an external ``python -m repro worker`` may still be
        on its way.
        """
        # Any open connection counts, handshaken or not: a worker that just
        # connected but whose hello is still in flight must not be mistaken
        # for "came and went".
        if self._connections:
            return False
        if spawned is not None:
            return all(not process.is_alive() for process in spawned)
        return self._ever_connected

    def _finish_inline(self) -> None:
        """Compute every unfinished task in this process, in index order.

        The task payload is a pure function of the spec, so inline results
        are bitwise identical to worker results — graceful degradation
        changes wall-clock, never numbers.  A task that fails inline raises
        immediately: with no workers left there is nothing to retry on.
        """
        fn = resolve_callable(self._fn)
        done_by_key: Dict[str, object] = {
            task["key"]: task["result"]
            for task in self._tasks
            if task["status"] == "done" and task["key"] is not None
        }
        for task in self._tasks:
            if task["status"] == "done":
                continue
            if task["key"] is not None and task["key"] in done_by_key:
                self._finish_task(task, done_by_key[task["key"]], via="dedup_hits")
                continue
            try:
                payload = fn(task["spec"])
            except Exception as exc:
                raise DispatchError(
                    task["index"], task["key"], task["attempts"] + 1, repr(exc)
                ) from exc
            self._finish_task(task, payload, via="inline")
            if task["key"] is not None:
                done_by_key[task["key"]] = payload


__all__ = [
    "BACKOFF_CAP",
    "Coordinator",
    "DispatchError",
    "backoff_jitter",
    "resolve_callable",
]
