"""The dispatch worker: connect, lease tasks, heartbeat, compute, repeat.

A worker is a plain loop over the queue protocol
(:mod:`repro.dispatch.protocol`): handshake, then *request → task →
compute → result* until the coordinator says ``shutdown`` (or the
connection drops).  Workers are started two ways:

* **spawned** — the distributed execution backend launches
  ``worker_main`` in ``multiprocessing`` children for the configured
  worker count;
* **attached** — any machine-local process can join a running queue with
  ``python -m repro worker --connect HOST:PORT`` and the coordinator
  treats it exactly like a spawned one (the task function travels by
  ``module:qualname`` reference, so the worker runs its own code tree).

While a task computes, a daemon heartbeat thread renews the lease at the
interval the coordinator asked for; all socket sends are serialised
through one lock so heartbeat frames never interleave with result frames.
Workers set ``$REPRO_DISPATCH_WORKER`` so any nested distributed backend
inside the task degrades to inline serial execution instead of recursively
fanning out.

A :class:`~repro.dispatch.faults.FaultPlan` (argument, or the
``$REPRO_DISPATCH_FAULTS`` environment variable) makes the worker
deterministically kill/hang/delay itself at specific leases — the
fault-injection harness the dispatch tests and CI smokes are built on.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
from typing import Optional

from repro.dispatch.coordinator import resolve_callable
from repro.dispatch.faults import FaultPlan
from repro.dispatch.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_message,
    send_message,
)

#: Set in every worker process; the distributed backend reads it to degrade
#: to inline serial execution instead of recursively fanning out.
WORKER_ENV = "REPRO_DISPATCH_WORKER"

#: Exit code of a fault-injected ``kill`` (distinguishable from crashes).
KILL_EXIT_CODE = 17


class _Heartbeat:
    """Daemon thread renewing one task's lease until stopped."""

    def __init__(
        self, sock: socket.socket, lock: threading.Lock, task_index: int, interval: float
    ) -> None:
        self._sock = sock
        self._lock = lock
        self._task_index = task_index
        self._interval = max(0.01, float(interval))
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{task_index}", daemon=True
        )

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                with self._lock:
                    send_message(
                        self._sock, {"type": "heartbeat", "task": self._task_index}
                    )
            except OSError:
                return  # coordinator is gone; the main loop will notice too


def worker_main(
    host: str,
    port: int,
    worker_id: Optional[str] = None,
    fault_plan: Optional[FaultPlan] = None,
    connect_timeout: float = 30.0,
) -> int:
    """Run one worker against the coordinator at ``host:port``; exit code.

    Returns 0 on a clean shutdown, 1 when the coordinator disappears or
    rejects the handshake.  ``fault_plan`` defaults to the plan carried by
    ``$REPRO_DISPATCH_FAULTS`` (used by the CI fault smokes).
    """
    worker_id = worker_id or f"pid{os.getpid()}"
    if fault_plan is None:
        fault_plan = FaultPlan.from_env()
    os.environ[WORKER_ENV] = "1"
    try:
        sock = socket.create_connection((host, port), timeout=connect_timeout)
    except OSError as exc:
        print(f"worker {worker_id}: cannot connect to {host}:{port}: {exc}")
        return 1
    sock.settimeout(None)
    lock = threading.Lock()
    try:
        with lock:
            send_message(
                sock,
                {
                    "type": "hello",
                    "version": PROTOCOL_VERSION,
                    "worker_id": worker_id,
                    "pid": os.getpid(),
                },
            )
        welcome = recv_message(sock)
        if welcome is None or welcome.get("type") != "welcome":
            raise ProtocolError(
                f"coordinator rejected worker {worker_id!r}: "
                f"{'connection closed' if welcome is None else welcome}"
            )
        lease_ordinal = 0
        while True:
            with lock:
                send_message(sock, {"type": "request", "worker_id": worker_id})
            message = recv_message(sock)
            if message is None or message.get("type") == "shutdown":
                return 0
            kind = message.get("type")
            if kind == "wait":
                time.sleep(float(message.get("seconds", 0.05)))
                continue
            if kind != "task":
                continue
            index = int(message["task"])
            attempt = int(message["attempt"])
            action = None
            if fault_plan:
                action = fault_plan.action_for(worker_id, index, attempt, lease_ordinal)
            lease_ordinal += 1
            if action is not None and action["action"] == "kill":
                # Simulated crash: no goodbye, no flush — the coordinator
                # must recover purely from the connection dropping.
                os._exit(KILL_EXIT_CODE)
            if action is not None and action["action"] == "hang":
                # Simulated wedge: sleep with NO heartbeats so the lease
                # genuinely expires; then resume (the late result exercises
                # the coordinator's duplicate handling).
                time.sleep(action["seconds"])
            with _Heartbeat(sock, lock, index, float(message.get("heartbeat_every", 1.0))):
                try:
                    if action is not None and action["action"] == "delay":
                        # Slow-but-healthy: heartbeats keep the lease alive.
                        time.sleep(action["seconds"])
                    fn = resolve_callable(str(message["fn"]))
                    payload = fn(message["spec"])
                except Exception as exc:
                    with lock:
                        send_message(
                            sock,
                            {
                                "type": "error",
                                "task": index,
                                "attempt": attempt,
                                "error": repr(exc),
                                "traceback": traceback.format_exc(),
                            },
                        )
                    continue
            with lock:
                send_message(
                    sock,
                    {"type": "result", "task": index, "attempt": attempt,
                     "payload": payload},
                )
    except (OSError, ProtocolError) as exc:
        print(f"worker {worker_id}: {exc}")
        return 1
    finally:
        try:
            sock.close()
        except OSError:
            pass


def is_worker_process() -> bool:
    """True inside a dispatch worker (used to suppress nested fan-out)."""
    return bool(os.environ.get(WORKER_ENV))


__all__ = ["KILL_EXIT_CODE", "WORKER_ENV", "is_worker_process", "worker_main"]
