"""Framed pickle wire protocol of the dispatch work queue.

Coordinator and workers exchange plain-dict messages over a localhost TCP
connection.  Every message is one *frame*: an 8-byte big-endian unsigned
length prefix followed by the pickled dict.  Framing makes the stream
self-delimiting, so the coordinator's selector loop can read whatever the
kernel hands it and let :class:`FrameBuffer` re-assemble message boundaries.

The first frame in each direction is the version handshake: the worker
sends ``{"type": "hello", "version": PROTOCOL_VERSION, ...}`` and the
coordinator answers ``welcome`` (accepted) or ``reject`` (version mismatch,
with the expected version) — a worker from a different code version fails
fast with a :class:`ProtocolError` instead of corrupting a run with
incompatibly-pickled payloads.

Message vocabulary (``"type"`` field):

===========  ==========  ====================================================
type         direction   meaning
===========  ==========  ====================================================
hello        w -> c      handshake: protocol version, worker id, pid
welcome      c -> w      handshake accepted
reject       c -> w      version mismatch; connection will be closed
request      w -> c      worker is idle and wants a task
task         c -> w      one work item: task id, attempt, fn, spec, lease
wait         c -> w      nothing runnable right now; re-request after delay
heartbeat    w -> c      lease renewal for the named task
result       w -> c      task payload (success)
error        w -> c      task raised; message carries the formatted error
shutdown     c -> w      no work left; worker should exit cleanly
===========  ==========  ====================================================

Trust model: frames are pickled, so the queue must only ever bind to
localhost and only accept workers it trusts — the same trust boundary as
the on-disk result cache, which is also pickle-backed.  The coordinator
binds ``127.0.0.1`` by default and never listens on public interfaces.
"""

from __future__ import annotations

import pickle
import struct
from typing import Dict, List, Optional

#: Bump on any incompatible change to the message vocabulary or framing.
PROTOCOL_VERSION = 1

#: Frame header: one 8-byte big-endian unsigned payload length.
_HEADER = struct.Struct(">Q")

#: Upper bound on a single frame (guards against a corrupt/hostile length
#: prefix allocating unbounded memory).  Shard payloads are metrics tables,
#: well under this.
MAX_FRAME_BYTES = 1 << 31


class ProtocolError(RuntimeError):
    """Malformed frame, truncated stream or handshake failure."""


def encode_frame(message: Dict[str, object]) -> bytes:
    """One message as its on-wire bytes (header + pickled dict)."""
    body = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"message of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte frame cap"
        )
    return _HEADER.pack(len(body)) + body


def send_message(sock, message: Dict[str, object]) -> None:
    """Send one framed message over a connected socket (blocking)."""
    sock.sendall(encode_frame(message))


def _recv_exact(sock, n_bytes: int) -> Optional[bytes]:
    """Read exactly *n_bytes*; ``None`` on clean EOF before the first byte.

    EOF in the *middle* of a frame is a truncation and raises — the peer
    died mid-send, and pretending the stream ended cleanly would silently
    drop a message.
    """
    chunks: List[bytes] = []
    received = 0
    while received < n_bytes:
        chunk = sock.recv(min(65536, n_bytes - received))
        if not chunk:
            if received == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({received}/{n_bytes} bytes)"
            )
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def recv_message(sock) -> Optional[Dict[str, object]]:
    """Receive one framed message (blocking); ``None`` on clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds the cap")
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed between frame header and body")
    message = pickle.loads(body)
    if not isinstance(message, dict):
        raise ProtocolError(f"frames must decode to dicts, got {type(message).__name__}")
    return message


class FrameBuffer:
    """Incremental frame re-assembly for non-blocking reads.

    The coordinator's selector loop reads whatever bytes are available and
    feeds them here; :meth:`feed` returns every *complete* message those
    bytes finished, keeping any trailing partial frame buffered for the next
    read.  One buffer per connection.
    """

    def __init__(self) -> None:
        self._pending = bytearray()

    def feed(self, data: bytes) -> List[Dict[str, object]]:
        """Absorb raw bytes; return the messages they completed (in order)."""
        self._pending.extend(data)
        messages: List[Dict[str, object]] = []
        while True:
            if len(self._pending) < _HEADER.size:
                break
            (length,) = _HEADER.unpack(bytes(self._pending[: _HEADER.size]))
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(f"frame length {length} exceeds the cap")
            end = _HEADER.size + length
            if len(self._pending) < end:
                break
            body = bytes(self._pending[_HEADER.size:end])
            del self._pending[:end]
            message = pickle.loads(body)
            if not isinstance(message, dict):
                raise ProtocolError(
                    f"frames must decode to dicts, got {type(message).__name__}"
                )
            messages.append(message)
        return messages

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards the next (incomplete) frame."""
        return len(self._pending)


__all__ = [
    "FrameBuffer",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "encode_frame",
    "recv_message",
    "send_message",
]
