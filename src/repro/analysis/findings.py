"""The unit of analyzer output: one finding, with a stable fingerprint.

A finding names the rule that fired, where it fired (repo-relative path +
line) and what to do about it.  The *fingerprint* deliberately excludes the
line number so a committed baseline survives unrelated edits above the
finding; it includes the message, which names the offending symbol, so two
distinct findings in one file do not alias.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Rule ids of the analyzer's own bookkeeping checks.  They are always on
#: (not registry entries) and cannot be suppressed with an allow comment —
#: only a baseline can accept them.
META_RULES = (
    "parse-error",
    "malformed-suppression",
    "unused-suppression",
    "stale-baseline",
)


@dataclass(frozen=True)
class Finding:
    """One diagnostic: rule id, location, message and a fix hint."""

    rule: str
    path: str
    line: int
    message: str
    hint: str = field(default="", compare=False)

    def format(self) -> str:
        """The one-line CLI form: ``path:line: [rule] message``."""
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            text += f" (fix: {self.hint})"
        return text

    def fingerprint(self) -> str:
        """Line-independent identity used by baselines."""
        return f"{self.rule}::{self.path}::{self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (``--json`` / ``--output``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }


def sort_findings(findings) -> list:
    """Deterministic report order: path, then line, then rule, then text."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))
