"""Static enforcement of the library's behavioural contracts.

Every guarantee this reproduction makes — bitwise parity between optimized
and ``_reference_*`` paths, one seed driving all randomness, content-address
keys that only change when behaviour changes, deterministic
``to_state``/``from_state`` round-trips — is otherwise enforced dynamically,
by tests that must happen to exercise the offending line.  This package is
the static half of that enforcement: an AST-based linter
(``python -m repro analyze``) with a string-keyed rule registry mirroring
the component registries of :mod:`repro.api.registry`.

Rule families (see ``python -m repro analyze --list-rules``):

* **determinism** — unsorted directory walks, set iteration flowing into
  ordered output, wall-clock reads, unseeded RNG construction and builtin
  ``hash()`` outside the derived-seed / provenance seams;
* **parity-gate** — every ``_reference_*`` function must be exercised by at
  least one test under ``tests/``;
* **registry/config contract** — every ``*Config`` dataclass field must be
  consumed somewhere, and dotted override keys in sweep grids / example
  configs must resolve to real fields;
* **state-schema** — classes defining ``to_state`` must cover every
  ``__init__``-assigned attribute and round-trip through ``from_state``;
* **shared-state concurrency** — mutable state reachable from thread-pool
  worker code must be lock-guarded or thread-local.

Findings are suppressed per line with ``# repro: allow[rule-id] -- reason``
(the reason is mandatory and unused suppressions are themselves findings), or
accepted wholesale through a committed baseline file so only *new* findings
fail CI.
"""

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.engine import AnalysisResult, run_analysis
from repro.analysis.findings import Finding
from repro.analysis.project import AnalysisProject
from repro.analysis.registry import ANALYSIS_RULES, AnalysisRule

__all__ = [
    "ANALYSIS_RULES",
    "AnalysisProject",
    "AnalysisResult",
    "AnalysisRule",
    "Finding",
    "load_baseline",
    "run_analysis",
    "write_baseline",
]
