"""Committed baselines: accepted pre-existing findings, by fingerprint.

A baseline file lets a tree with known, consciously accepted findings pass
CI while any *new* finding still fails.  Entries are line-independent
fingerprints (rule + path + message) so unrelated edits do not invalidate
them — but a baselined finding that no longer occurs becomes a
``stale-baseline`` finding, so the file shrinks as debts are paid and never
silently accumulates dead entries.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Tuple

from repro.analysis.findings import Finding

#: Format marker of the baseline JSON document.
BASELINE_VERSION = 1


class BaselineError(ValueError):
    """A baseline file that cannot be read or has the wrong shape."""


def load_baseline(path) -> List[str]:
    """Fingerprints of a baseline file (``[]`` for a missing file).

    A missing file is an empty baseline — that is what ``--write-baseline``
    starts from — but an unreadable or malformed file is an error: silently
    treating it as empty would un-accept every baselined finding at once.
    """
    path = Path(path)
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from None
    if (
        not isinstance(payload, dict)
        or payload.get("version") != BASELINE_VERSION
        or not isinstance(payload.get("findings"), list)
        or not all(isinstance(entry, str) for entry in payload["findings"])
    ):
        raise BaselineError(
            f"baseline {path} is not a version-{BASELINE_VERSION} "
            f"analysis baseline"
        )
    return list(payload["findings"])


def write_baseline(path, findings: Iterable[Finding]) -> int:
    """Write the findings' fingerprints as the new baseline; returns count.

    Output is sorted and newline-terminated so the file diffs cleanly in
    review, and parent directories are created like every other CLI output.
    """
    path = Path(path)
    fingerprints = sorted({finding.fingerprint() for finding in findings})
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            {"version": BASELINE_VERSION, "findings": fingerprints}, indent=2
        )
        + "\n"
    )
    return len(fingerprints)


def apply_baseline(
    findings: List[Finding], fingerprints: List[str], baseline_path: str
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (new, accepted); stale entries become findings.

    Returns ``(kept, baselined)`` where *kept* includes one
    ``stale-baseline`` finding per fingerprint that matched nothing.
    """
    remaining = set(fingerprints)
    kept: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        fingerprint = finding.fingerprint()
        if fingerprint in remaining or fingerprint in fingerprints:
            remaining.discard(fingerprint)
            baselined.append(finding)
        else:
            kept.append(finding)
    for fingerprint in sorted(remaining):
        kept.append(
            Finding(
                rule="stale-baseline",
                path=baseline_path,
                line=1,
                message=f"baseline entry matches no finding: {fingerprint}",
                hint="remove the entry (or re-run with --write-baseline)",
            )
        )
    return kept, baselined
