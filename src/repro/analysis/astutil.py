"""Small AST helpers shared by the analysis rules (stdlib only)."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    Call results inside the chain (``x().y``) end the chain: the helper
    answers "what static name does this expression spell", nothing more.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's callee, else ``None``."""
    return dotted_name(node.func)


def build_parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """child -> parent for every node of *tree*."""
    parents: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def enclosing_calls(
    node: ast.AST, parents: Dict[ast.AST, ast.AST]
) -> Iterator[ast.Call]:
    """Call nodes the expression *node* sits inside, innermost first.

    Stops at the enclosing statement: a wrapping call in a *different*
    statement cannot reorder this expression's result.
    """
    current = parents.get(node)
    while current is not None and not isinstance(current, ast.stmt):
        if isinstance(current, ast.Call):
            yield current
        current = parents.get(current)


def self_attribute_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """Attribute names of a ``self.a.b...`` chain (outermost last).

    ``self.cache`` -> ``("cache",)``; ``self._scratch.state`` ->
    ``("_scratch", "state")``; anything not rooted at the name ``self``
    (including subscripted roots) -> ``None``.
    """
    parts = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            if node.id == "self" and parts:
                return tuple(reversed(parts))
            return None
        else:
            return None


def assign_targets(stmt: ast.stmt) -> Iterator[ast.expr]:
    """The target expressions of any assignment statement kind."""
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                yield from target.elts
            else:
                yield target
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        if stmt.target is not None:
            yield stmt.target


def string_constants(tree: ast.AST) -> Iterator[str]:
    """Every string literal below *tree* (f-string fragments included)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            yield node.value


def decorator_names(node: ast.AST) -> Iterator[str]:
    """Dotted names of a class/function's decorators (call or bare)."""
    for decorator in getattr(node, "decorator_list", []):
        if isinstance(decorator, ast.Call):
            decorator = decorator.func
        name = dotted_name(decorator)
        if name is not None:
            yield name


def is_dataclass_def(node: ast.ClassDef) -> bool:
    """Whether the class is decorated with ``@dataclass`` (any spelling)."""
    return any(
        name.split(".")[-1] == "dataclass" for name in decorator_names(node)
    )


def class_methods(node: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    """Directly defined methods of a class body, by name."""
    return {
        stmt.name: stmt
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
