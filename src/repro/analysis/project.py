"""What the analyzer looks at: parsed source, tests and config JSONs.

An :class:`AnalysisProject` is the shared input of every rule: the modules
under the *analyzed* paths (findings are reported against these), the parsed
test tree (context for the parity-gate audit — tests are cross-checked, not
linted) and the example config JSONs (context for the dotted-override
contract).  Everything is collected in sorted order so reports are
deterministic, and files that fail to parse become ``parse-error`` findings
instead of crashing the run.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.analysis.suppressions import SuppressionSet

#: Directory names that mark a repository root when inferring context.
_ROOT_MARKERS = ("tests", ".git", "pytest.ini")


class SourceModule:
    """One parsed Python file: AST, raw text and its suppression set."""

    def __init__(self, path: Path, rel: str, text: str, tree: ast.AST) -> None:
        self.path = path
        self.rel = rel
        self.text = text
        self.tree = tree
        self.suppressions = SuppressionSet.from_source(text)

    def __repr__(self) -> str:
        return f"SourceModule({self.rel!r})"


class AnalysisProject:
    """All parsed inputs of one analyzer run."""

    def __init__(
        self,
        root: Path,
        modules: List[SourceModule],
        test_modules: List[SourceModule],
        config_files: List[Tuple[str, object]],
        parse_failures: List[Finding],
    ) -> None:
        self.root = root
        self.modules = modules
        self.test_modules = test_modules
        self.config_files = config_files
        self.parse_failures = parse_failures

    # ------------------------------------------------------------------ ---
    @classmethod
    def from_paths(
        cls,
        paths: Sequence[str],
        tests_dir: Optional[str] = None,
        configs_dir: Optional[str] = None,
    ) -> "AnalysisProject":
        """Load the analyzed tree plus its test/config context.

        *paths* are files or directories to analyze.  The repository root is
        inferred by walking up from the first path until a directory with a
        ``tests`` tree (or ``.git``/``pytest.ini``) appears; ``tests_dir``
        and ``configs_dir`` override the derived defaults (``<root>/tests``
        and ``<root>/examples/configs``).  A missing context directory
        silently disables the rules that need it — analyzing a single file
        must not fail because it has no test tree.
        """
        resolved = [Path(p).resolve() for p in paths]
        for path in resolved:
            if not path.exists():
                raise FileNotFoundError(f"no such file or directory: {path}")
        root = _infer_root(resolved[0])

        parse_failures: List[Finding] = []
        modules = _load_tree(_collect_py_files(resolved), root, parse_failures)

        tests_path = Path(tests_dir).resolve() if tests_dir else root / "tests"
        test_modules: List[SourceModule] = []
        if tests_path.is_dir():
            # Context only: a syntactically broken test file is the test
            # suite's problem, not a finding against the analyzed tree.
            test_modules = _load_tree(
                sorted(tests_path.rglob("*.py")), root, failures=None
            )

        configs_path = (
            Path(configs_dir).resolve() if configs_dir else root / "examples" / "configs"
        )
        config_files: List[Tuple[str, object]] = []
        if configs_path.is_dir():
            for json_path in sorted(configs_path.rglob("*.json")):
                rel = _relative(json_path, root)
                try:
                    config_files.append((rel, json.loads(json_path.read_text())))
                except (OSError, ValueError) as exc:
                    parse_failures.append(
                        Finding(
                            rule="parse-error",
                            path=rel,
                            line=1,
                            message=f"cannot parse config JSON: {exc}",
                        )
                    )
        return cls(
            root=root,
            modules=modules,
            test_modules=test_modules,
            config_files=config_files,
            parse_failures=parse_failures,
        )

    # ------------------------------------------------------------------ ---
    def module_by_rel(self, rel: str) -> Optional[SourceModule]:
        """The analyzed module with the given repo-relative path, if any."""
        for module in self.modules:
            if module.rel == rel:
                return module
        return None

    def relative(self, path: Path) -> str:
        """Repo-relative posix form of *path* (used in findings)."""
        return _relative(path, self.root)


def _infer_root(start: Path) -> Path:
    """Nearest ancestor that looks like a repository root."""
    candidate = start if start.is_dir() else start.parent
    for _ in range(8):
        if any((candidate / marker).exists() for marker in _ROOT_MARKERS):
            return candidate
        if candidate.parent == candidate:
            break
        candidate = candidate.parent
    return start if start.is_dir() else start.parent


def _relative(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def _collect_py_files(paths: List[Path]) -> List[Path]:
    """All Python files under the analyzed paths, sorted and de-duplicated."""
    seen: Dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            for file_path in sorted(path.rglob("*.py")):
                seen.setdefault(file_path, None)
        elif path.suffix == ".py":
            seen.setdefault(path, None)
    return sorted(seen)


def _load_tree(
    files: List[Path], root: Path, failures: Optional[List[Finding]]
) -> List[SourceModule]:
    modules: List[SourceModule] = []
    for file_path in files:
        rel = _relative(file_path, root)
        try:
            text = file_path.read_text()
            tree = ast.parse(text, filename=rel)
        except (OSError, SyntaxError, ValueError) as exc:
            if failures is not None:
                failures.append(
                    Finding(
                        rule="parse-error",
                        path=rel,
                        line=getattr(exc, "lineno", 1) or 1,
                        message=f"cannot parse: {exc}",
                    )
                )
            continue
        modules.append(SourceModule(file_path, rel, text, tree))
    return modules
