"""The string-keyed rule registry, mirroring :mod:`repro.api.registry`.

Rules self-register at import time with the same decorator idiom the
experiment components use::

    from repro.analysis.registry import ANALYSIS_RULES, AnalysisRule

    @ANALYSIS_RULES.register("det-wallclock")
    class WallClockRule(AnalysisRule):
        '''Wall-clock reads outside the provenance/timing seams.'''
        ...

It is a separate registry class (not :class:`repro.api.registry.Registry`)
on purpose: that class lazily imports the numpy-backed component modules on
first lookup, while the analyzer must stay stdlib-only so it can lint a tree
whose dependencies are broken.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Type

from repro.analysis.findings import Finding
from repro.analysis.project import AnalysisProject


class RuleError(KeyError):
    """Lookup of an unknown rule id or registration under a taken id."""


class AnalysisRule:
    """Base class of all analysis rules.

    Subclasses set ``rule_id`` (done by the registration decorator), provide
    a docstring whose first line is the CLI description, and implement
    :meth:`check` yielding :class:`Finding` objects against
    ``project.modules``.
    """

    rule_id: str = ""

    def check(self, project: AnalysisProject) -> Iterator[Finding]:
        raise NotImplementedError

    @classmethod
    def describe(cls) -> str:
        doc = cls.__doc__ or ""
        return doc.strip().splitlines()[0] if doc.strip() else cls.__name__


class RuleRegistry:
    """String-keyed collection of rule classes (sorted, introspectable)."""

    def __init__(self) -> None:
        self._entries: Dict[str, Type[AnalysisRule]] = {}
        self._loaded = False

    def register(self, rule_id: str):
        """Class decorator registering a rule under *rule_id*."""
        if not isinstance(rule_id, str) or not rule_id:
            raise TypeError("rule ids must be non-empty strings")

        def _add(rule_cls: Type[AnalysisRule]) -> Type[AnalysisRule]:
            if rule_id in self._entries:
                raise RuleError(f"analysis rule {rule_id!r} is already registered")
            rule_cls.rule_id = rule_id
            self._entries[rule_id] = rule_cls
            return rule_cls

        return _add

    def get(self, rule_id: str) -> Type[AnalysisRule]:
        self._load()
        try:
            return self._entries[rule_id]
        except KeyError:
            raise RuleError(
                f"unknown analysis rule {rule_id!r}; "
                f"available: {', '.join(self.available()) or '(none)'}"
            ) from None

    def available(self) -> List[str]:
        self._load()
        return sorted(self._entries)

    def items(self) -> List:
        self._load()
        return [(rule_id, self._entries[rule_id]) for rule_id in self.available()]

    def __contains__(self, rule_id: str) -> bool:
        self._load()
        return rule_id in self._entries

    def _load(self) -> None:
        """Import the built-in rule modules (self-registration on import)."""
        if self._loaded:
            return
        self._loaded = True
        import repro.analysis.rules  # noqa: F401  (registers the built-ins)


#: The rule registry; built-in rules register on first lookup.
ANALYSIS_RULES = RuleRegistry()
