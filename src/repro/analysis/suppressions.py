"""Per-line suppression comments: ``# repro: allow[rule-id] -- reason``.

A suppression silences the named rule(s) on its own line only, and the
reason after ``--`` is mandatory: an allow comment is a written waiver of a
library invariant, so it must say *why* the line is exempt.  Several ids can
share one comment (``allow[det-wallclock, det-rng]``).  Both failure modes
are findings in their own right: a malformed or reason-less comment raises
``malformed-suppression`` and a suppression that silenced nothing raises
``unused-suppression`` — so waivers cannot rot silently.

Comments are found with :mod:`tokenize`, not substring search, so a string
literal containing ``# repro:`` never counts as a directive.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.findings import META_RULES, Finding

#: Anything after the ``repro:`` comment marker is a directive and must
#: parse completely (this sentence avoids spelling the marker itself).
_DIRECTIVE_RE = re.compile(r"#\s*repro:\s*(?P<body>.*)$")
_ALLOW_RE = re.compile(
    r"^allow\[(?P<ids>[^\]]*)\]\s*(?:--\s*(?P<reason>\S.*))?$"
)


@dataclass
class Suppression:
    """One parsed allow comment."""

    line: int
    rule_ids: Tuple[str, ...]
    reason: str
    used: Set[str] = field(default_factory=set)


class SuppressionSet:
    """All suppression directives of one source file, with usage tracking."""

    def __init__(self) -> None:
        self._by_line: Dict[int, Suppression] = {}
        self._malformed: List[Tuple[int, str]] = []

    @classmethod
    def from_source(cls, text: str) -> "SuppressionSet":
        """Parse every ``# repro:`` comment of *text*.

        Tokenization errors are ignored here: a file that does not tokenize
        does not parse either, and the engine reports that as a single
        ``parse-error`` finding instead.
        """
        out = cls()
        reader = io.StringIO(text).readline
        try:
            tokens = list(tokenize.generate_tokens(reader))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return out
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE_RE.search(token.string)
            if match is None:
                continue
            out._add_directive(token.start[0], match.group("body").strip())
        return out

    def _add_directive(self, line: int, body: str) -> None:
        match = _ALLOW_RE.match(body)
        if match is None:
            self._malformed.append(
                (line, f"unrecognised repro directive {body!r}")
            )
            return
        ids = tuple(
            part.strip() for part in match.group("ids").split(",") if part.strip()
        )
        reason = (match.group("reason") or "").strip()
        if not ids:
            self._malformed.append((line, "allow[] names no rule ids"))
            return
        meta = [rule_id for rule_id in ids if rule_id in META_RULES]
        if meta:
            self._malformed.append(
                (line, f"rule {meta[0]!r} cannot be suppressed with an allow "
                       f"comment; accept it through a baseline instead")
            )
            return
        if not reason:
            self._malformed.append(
                (line, f"allow[{', '.join(ids)}] is missing its '-- reason'")
            )
            return
        self._by_line[line] = Suppression(line=line, rule_ids=ids, reason=reason)

    # ------------------------------------------------------------------ ---
    def suppresses(self, rule_id: str, line: int) -> bool:
        """True (and marked used) when *rule_id* is allowed on *line*."""
        if rule_id in META_RULES:
            return False
        suppression = self._by_line.get(line)
        if suppression is None or rule_id not in suppression.rule_ids:
            return False
        suppression.used.add(rule_id)
        return True

    def leftover_findings(self, path: str) -> Iterator[Finding]:
        """Findings for malformed directives and unused suppressions."""
        for line, message in self._malformed:
            yield Finding(
                rule="malformed-suppression",
                path=path,
                line=line,
                message=message,
                hint="write '# repro: allow[rule-id] -- reason'",
            )
        for line in sorted(self._by_line):
            suppression = self._by_line[line]
            for rule_id in suppression.rule_ids:
                if rule_id not in suppression.used:
                    yield Finding(
                        rule="unused-suppression",
                        path=path,
                        line=line,
                        message=(
                            f"suppression allow[{rule_id}] matched no finding"
                        ),
                        hint="delete the stale allow comment",
                    )

    def __len__(self) -> int:
        return len(self._by_line)
