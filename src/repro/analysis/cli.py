"""Implementation of ``python -m repro analyze`` (argparse lives in
:mod:`repro.__main__`, behaviour lives here).

The subcommand follows the established CLI contract: one-line diagnostics
(never a traceback), exit 0 when clean / 1 when there are findings / 2 on
usage errors, ``--json`` machine output on stdout, and parent directories
created for ``--output``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from repro.analysis.baseline import BaselineError, write_baseline
from repro.analysis.engine import run_analysis
from repro.analysis.project import AnalysisProject
from repro.analysis.registry import ANALYSIS_RULES, RuleError


def _print_rules() -> int:
    print("analysis rules — static invariant checks of `repro analyze`")
    for rule_id, rule_cls in ANALYSIS_RULES.items():
        print(f"  {rule_id:<24s} {rule_cls.describe()}")
    print(
        "  (always on: parse-error, malformed-suppression, "
        "unused-suppression, stale-baseline)"
    )
    return 0


def run_cli(args: argparse.Namespace) -> int:
    """Execute the analyze subcommand; returns the process exit code."""
    if args.list_rules:
        return _print_rules()

    paths: List[str] = args.paths or ["src/repro"]
    rule_ids = None
    if args.rules:
        rule_ids = [part.strip() for part in args.rules.split(",") if part.strip()]
        unknown = [rule_id for rule_id in rule_ids if rule_id not in ANALYSIS_RULES]
        if unknown:
            print(
                f"error: unknown analysis rule(s) {', '.join(unknown)}; "
                f"available: {', '.join(ANALYSIS_RULES.available())}",
                file=sys.stderr,
            )
            return 2
    if args.write_baseline and not args.baseline:
        print("error: --write-baseline requires --baseline FILE", file=sys.stderr)
        return 2

    try:
        project = AnalysisProject.from_paths(
            paths, tests_dir=args.tests, configs_dir=args.configs
        )
    except (FileNotFoundError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        result = run_analysis(
            project,
            rule_ids=rule_ids,
            # While (re)writing the baseline the current findings must not
            # be filtered by the old one, or fixed entries would survive.
            baseline_path=None if args.write_baseline else args.baseline,
        )
    except (BaselineError, RuleError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        n_entries = write_baseline(args.baseline, result.findings)
        print(f"baseline written to {args.baseline} ({n_entries} entries)")
        return 0

    if args.output:
        output = Path(args.output)
        try:
            output.parent.mkdir(parents=True, exist_ok=True)
            output.write_text(json.dumps(result.to_dict(), indent=2) + "\n")
        except OSError as exc:
            print(f"error: cannot write findings {output}: {exc}", file=sys.stderr)
            return 2
        print(f"findings written to {output}")

    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0 if result.clean else 1

    for finding in result.findings:
        print(finding.format())
    status = "clean" if result.clean else f"{len(result.findings)} finding(s)"
    extras = []
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if result.n_suppressed:
        extras.append(f"{result.n_suppressed} suppressed")
    suffix = f" ({', '.join(extras)})" if extras else ""
    print(
        f"analyze: {status} in {result.n_files} files, "
        f"{len(result.rules)} rules{suffix}"
    )
    return 0 if result.clean else 1
