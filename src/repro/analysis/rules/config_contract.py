"""Config-contract rules: every knob must exist, every field must matter.

Two complementary checks keep the declarative config layer honest:

* ``config-field-unread`` — a ``*Config`` dataclass field nobody reads is a
  knob that silently does nothing; every field must be consumed somewhere
  outside the class's own ``validate``/``__post_init__``.
* ``config-override-path`` — dotted override paths in the example config
  JSONs (sweep ``grid`` keys) and the section/field keys of experiment
  config documents must resolve to real dataclass fields, statically.  A
  typo in a sweep grid otherwise only fails at run time, deep inside the
  driver.

Both rules are driven purely by the dataclass ASTs, so they stay in sync
with the config schema by construction.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.astutil import (
    dotted_name,
    is_dataclass_def,
    class_methods,
    string_constants,
)
from repro.analysis.findings import Finding
from repro.analysis.project import AnalysisProject
from repro.analysis.registry import ANALYSIS_RULES, AnalysisRule

#: Methods whose self.<field> reads do not count as consumption: a field
#: only checked by its own class is still a knob nobody acts on.
_SELF_CHECK_METHODS = {"validate", "__post_init__"}


def _dataclass_fields(node: ast.ClassDef) -> Dict[str, Optional[str]]:
    """field name -> annotation dotted name (None for non-name annotations)."""
    fields: Dict[str, Optional[str]] = {}
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if stmt.target.id.startswith("_"):
                continue
            fields[stmt.target.id] = dotted_name(stmt.annotation)
    return fields


def _field_lines(node: ast.ClassDef) -> Dict[str, int]:
    return {
        stmt.target.id: stmt.lineno
        for stmt in node.body
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
    }


def _collect_dataclasses(project: AnalysisProject):
    """(module, ClassDef) for every dataclass in the analyzed tree."""
    for module in project.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and is_dataclass_def(node):
                yield module, node


@ANALYSIS_RULES.register("config-field-unread")
class ConfigFieldUnreadRule(AnalysisRule):
    """Every *Config dataclass field must be consumed somewhere."""

    def check(self, project: AnalysisProject) -> Iterator[Finding]:
        config_classes = [
            (module, node)
            for module, node in _collect_dataclasses(project)
            if node.name.endswith("Config")
        ]
        if not config_classes:
            return
        consumed = self._consumed_names(project, {n.name for _, n in config_classes})
        for module, node in config_classes:
            lines = _field_lines(node)
            for field_name in _dataclass_fields(node):
                if field_name not in consumed:
                    yield Finding(
                        rule=self.rule_id,
                        path=module.rel,
                        line=lines[field_name],
                        message=(
                            f"config field {node.name}.{field_name} is never "
                            f"read outside its own validation"
                        ),
                        hint="wire the field into the code it configures, "
                             "or delete the dead knob",
                    )

    @staticmethod
    def _consumed_names(
        project: AnalysisProject, config_class_names: Set[str]
    ) -> Set[str]:
        """Names that count as consumption: attribute loads outside the
        config classes' own validation methods, plus string literals
        (registry keys, ``_SECTIONS``-style maps, dotted override paths)."""
        consumed: Set[str] = set()
        for module in project.modules:
            skip_bodies = set()
            for node in ast.walk(module.tree):
                if (
                    isinstance(node, ast.ClassDef)
                    and node.name in config_class_names
                ):
                    for name, method in class_methods(node).items():
                        if name in _SELF_CHECK_METHODS:
                            skip_bodies.update(ast.walk(method))
            for node in ast.walk(module.tree):
                if node in skip_bodies:
                    continue
                if isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Load
                ):
                    consumed.add(node.attr)
                elif isinstance(node, ast.Constant) and isinstance(
                    node.value, str
                ):
                    # "meta_models.classifiers" consumes both components.
                    consumed.update(node.value.split("."))
        return consumed


@ANALYSIS_RULES.register("config-override-path")
class OverridePathRule(AnalysisRule):
    """Dotted override paths and config-document keys must resolve."""

    def check(self, project: AnalysisProject) -> Iterator[Finding]:
        schema = self._schema(project)
        if schema is None:
            # No ExperimentConfig dataclass in the analyzed tree: nothing
            # to resolve the JSON documents against.
            return
        by_name, root_class = schema
        for rel, payload in project.config_files:
            if not isinstance(payload, dict):
                continue
            if isinstance(payload.get("grid"), dict):
                yield from self._check_sweep(rel, payload, by_name, root_class)
            elif "kind" in payload:
                yield from self._check_experiment(rel, payload, by_name, root_class)

    # ------------------------------------------------------------------ ---
    def _schema(
        self, project: AnalysisProject
    ) -> Optional[Tuple[Dict[str, Dict[str, Optional[str]]], str]]:
        by_name: Dict[str, Dict[str, Optional[str]]] = {}
        for _, node in _collect_dataclasses(project):
            by_name[node.name] = _dataclass_fields(node)
        if "ExperimentConfig" not in by_name:
            return None
        return by_name, "ExperimentConfig"

    def _resolve(
        self,
        path: str,
        by_name: Dict[str, Dict[str, Optional[str]]],
        root_class: str,
    ) -> Optional[str]:
        """None if the dotted path resolves, else the offending prefix."""
        current = root_class
        parts = path.split(".")
        for depth, part in enumerate(parts):
            fields = by_name.get(current)
            if fields is None or part not in fields:
                return ".".join(parts[: depth + 1])
            annotation = fields[part]
            current = annotation if annotation in by_name else ""
        return None

    def _check_sweep(
        self, rel, payload, by_name, root_class
    ) -> Iterator[Finding]:
        for path in sorted(payload["grid"]):
            bad = self._resolve(str(path), by_name, root_class)
            if bad is not None:
                yield Finding(
                    rule=self.rule_id,
                    path=rel,
                    line=1,
                    message=(
                        f"sweep grid path {path!r} does not resolve "
                        f"(no such field {bad!r})"
                    ),
                    hint=f"fix the dotted path against {root_class}",
                )
        base = payload.get("base")
        if isinstance(base, dict):
            yield from self._check_experiment(rel, base, by_name, root_class)

    def _check_experiment(
        self, rel, payload, by_name, root_class
    ) -> Iterator[Finding]:
        root_fields = by_name[root_class]
        for key, value in sorted(payload.items()):
            if key not in root_fields:
                yield Finding(
                    rule=self.rule_id,
                    path=rel,
                    line=1,
                    message=f"unknown config key {key!r} in {root_class} document",
                    hint=f"valid keys: {', '.join(sorted(root_fields))}",
                )
                continue
            section_class = root_fields[key]
            if section_class in by_name and isinstance(value, dict):
                section_fields = by_name[section_class]
                for sub_key in sorted(value):
                    if sub_key not in section_fields:
                        yield Finding(
                            rule=self.rule_id,
                            path=rel,
                            line=1,
                            message=(
                                f"unknown field {key}.{sub_key} "
                                f"({section_class} has no field {sub_key!r})"
                            ),
                            hint=f"valid fields: {', '.join(sorted(section_fields))}",
                        )
