"""Built-in analysis rules; importing this package registers them all."""

import repro.analysis.rules.concurrency  # noqa: F401
import repro.analysis.rules.config_contract  # noqa: F401
import repro.analysis.rules.determinism  # noqa: F401
import repro.analysis.rules.parity  # noqa: F401
import repro.analysis.rules.state_schema  # noqa: F401
