"""Determinism rules: one seed must drive everything.

The library's headline contract is that a config (and therefore a single
seed) produces bitwise-identical results — across backends, machines and
re-runs.  These rules flag the constructs that silently break that:

* ``det-listdir``   — filesystem enumeration order is OS-dependent; every
  ``os.listdir``/``glob``/``iterdir`` walk must be wrapped in ``sorted()``
  (or an order-neutral reduction);
* ``det-set-order`` — ``set``/``frozenset`` iteration order depends on the
  per-process hash seed; a set flowing into ordered output (a loop, a
  ``list``/``tuple``/``enumerate`` call, a ``join``) must be sorted first;
* ``det-wallclock`` — wall-clock reads belong in the provenance/timing
  seams only (store sidecars, report timings), never in computed results;
* ``det-rng``       — randomness must come from the derived-seed helpers
  (:mod:`repro.utils.rng`); the stdlib ``random`` module, the legacy
  ``np.random.*`` global state and seedless generator construction are all
  process-global or nondeterministic;
* ``det-hash``      — builtin ``hash()`` on strings is salted per process
  (``PYTHONHASHSEED``); use :mod:`hashlib` or the store's canonical keys.

Sites inside the sanctioned seams carry explicit
``# repro: allow[...] -- reason`` waivers, so the exemptions are visible,
reasoned and audited (an unused waiver is itself a finding).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.astutil import (
    build_parent_map,
    call_name,
    enclosing_calls,
)
from repro.analysis.findings import Finding
from repro.analysis.project import AnalysisProject, SourceModule
from repro.analysis.registry import ANALYSIS_RULES, AnalysisRule

#: Wrappers that erase enumeration order (or reduce to an order-free value).
_ORDER_NEUTRAL = {
    "sorted", "len", "set", "frozenset", "sum", "min", "max", "any", "all",
}

#: Bare / dotted callables that enumerate the filesystem.
_FS_WALK_DOTTED = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
_FS_WALK_METHODS = {"glob", "rglob", "iterdir"}

#: Wall-clock reads: ``<module>.<func>`` suffixes and seamless bare names.
_WALLCLOCK_SUFFIXES = {
    ("time", "time"), ("time", "time_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}
_WALLCLOCK_BARE = {
    "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns", "time_ns",
}


def _is_order_neutral(node: ast.AST, parents) -> bool:
    """Whether the expression's enumeration order is erased by a wrapper."""
    for call in enclosing_calls(node, parents):
        name = call_name(call)
        if name is not None and name.split(".")[-1] in _ORDER_NEUTRAL:
            return True
    return False


class _PerModuleRule(AnalysisRule):
    """Base for rules that inspect each analyzed module independently."""

    def check(self, project: AnalysisProject) -> Iterator[Finding]:
        for module in project.modules:
            yield from self.check_module(module)

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: SourceModule, node: ast.AST, message: str, hint: str = "") -> Finding:
        return Finding(
            rule=self.rule_id,
            path=module.rel,
            line=getattr(node, "lineno", 1),
            message=message,
            hint=hint,
        )


@ANALYSIS_RULES.register("det-listdir")
class UnsortedWalkRule(_PerModuleRule):
    """Filesystem enumeration (listdir/glob/iterdir) must be sorted."""

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        parents = build_parent_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            is_walk = name in _FS_WALK_DOTTED or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _FS_WALK_METHODS
            )
            if not is_walk or _is_order_neutral(node, parents):
                continue
            shown = name or node.func.attr
            yield self.finding(
                module,
                node,
                f"filesystem enumeration {shown}() has OS-dependent order",
                hint="wrap it in sorted(...)",
            )


@ANALYSIS_RULES.register("det-set-order")
class SetOrderRule(_PerModuleRule):
    """set/frozenset iteration must not flow into ordered output."""

    _CONSUMERS = {"list", "tuple", "enumerate", "iter", "next", "zip", "map"}

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        # One scope per function (plus the module body): set-valued names
        # are tracked with one level of local dataflow, no aliasing.
        for scope in self._scopes(module.tree):
            yield from self._check_scope(module, scope)

    @staticmethod
    def _scopes(tree: ast.AST):
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                yield node

    def _check_scope(self, module: SourceModule, scope: ast.AST) -> Iterator[Finding]:
        set_vars: Set[str] = set()
        statements = [
            node for node in ast.walk(scope)
            if node is not scope
            and not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        ]
        for node in statements:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if self._is_set_expr(node.value, set_vars):
                        set_vars.add(target.id)
                    else:
                        set_vars.discard(target.id)
        for node in statements:
            yield from self._check_node(module, node, set_vars)

    def _check_node(
        self, module: SourceModule, node: ast.AST, set_vars: Set[str]
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if self._is_set_expr(node.iter, set_vars):
                yield self.finding(
                    module, node,
                    "iterating a set has arbitrary, hash-seed-dependent order",
                    hint="iterate sorted(...) instead",
                )
        elif isinstance(node, ast.comprehension):
            if self._is_set_expr(node.iter, set_vars):
                yield self.finding(
                    module, node.iter,
                    "comprehension over a set has arbitrary order",
                    hint="iterate sorted(...) instead",
                )
        elif isinstance(node, ast.Call):
            name = call_name(node)
            if (
                name in self._CONSUMERS
                and node.args
                and self._is_set_expr(node.args[0], set_vars)
            ):
                yield self.finding(
                    module, node,
                    f"{name}() over a set produces arbitrary order",
                    hint="apply sorted(...) first",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and node.args
                and self._is_set_expr(node.args[0], set_vars)
            ):
                yield self.finding(
                    module, node,
                    "join() over a set concatenates in arbitrary order",
                    hint="join sorted(...) instead",
                )

    def _is_set_expr(self, node: ast.AST, set_vars: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and call_name(node) in ("set", "frozenset"):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)
        ):
            return self._is_set_expr(node.left, set_vars) or self._is_set_expr(
                node.right, set_vars
            )
        if isinstance(node, ast.Name):
            return node.id in set_vars
        return False


@ANALYSIS_RULES.register("det-wallclock")
class WallClockRule(_PerModuleRule):
    """Wall-clock reads outside the provenance/timing seams."""

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = self._wallclock_name(node)
            if name is not None:
                yield self.finding(
                    module, node,
                    f"wall-clock read {name}() makes results time-dependent",
                    hint="keep wall-clock out of computed results; waive "
                         "provenance/timing sites with a reasoned allow comment",
                )

    @staticmethod
    def _wallclock_name(node: ast.Call) -> Optional[str]:
        name = call_name(node)
        if name is None:
            return None
        parts = name.split(".")
        if len(parts) == 1:
            return name if name in _WALLCLOCK_BARE else None
        if (parts[-2], parts[-1]) in _WALLCLOCK_SUFFIXES:
            return name
        return None


@ANALYSIS_RULES.register("det-rng")
class UnseededRngRule(_PerModuleRule):
    """Randomness outside the derived-seed helpers of repro.utils.rng."""

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            parts = name.split(".")
            if parts[0] == "random" and len(parts) > 1:
                yield self.finding(
                    module, node,
                    f"stdlib {name}() uses the process-global RNG",
                    hint="derive a numpy Generator via repro.utils.rng",
                )
            elif len(parts) >= 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
                tail = parts[2]
                if tail in ("default_rng", "Generator", "SeedSequence", "RandomState"):
                    if not node.args and not node.keywords:
                        yield self.finding(
                            module, node,
                            f"{name}() without a seed is nondeterministic",
                            hint="pass a seed derived from the experiment seed",
                        )
                else:
                    yield self.finding(
                        module, node,
                        f"legacy {name}() draws from numpy's global RNG state",
                        hint="use a seeded np.random.default_rng(...) generator",
                    )
            elif name == "default_rng" and not node.args and not node.keywords:
                yield self.finding(
                    module, node,
                    "default_rng() without a seed is nondeterministic",
                    hint="pass a seed derived from the experiment seed",
                )


@ANALYSIS_RULES.register("det-hash")
class BuiltinHashRule(_PerModuleRule):
    """Builtin hash() is salted per process (PYTHONHASHSEED)."""

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield self.finding(
                    module, node,
                    "builtin hash() is salted per process for strings",
                    hint="use hashlib (see repro.store.keys) for stable digests",
                )
