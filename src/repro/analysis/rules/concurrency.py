"""Shared-state concurrency rule for the thread-facing parts of the tree.

The thread backend and the serving layer run library code on worker
threads, so any state shared across calls is a data race waiting for a
scheduler to expose it.  Within modules that are concurrency-relevant —
they import ``threading``/``concurrent.futures`` or live under the serving
package — this rule flags the shared-mutable-state idioms:

* module-level mutable containers (a dict/list/set at import scope is
  visible to every thread);
* ``global`` rebinding outside a ``with <lock>`` block;
* instance-attribute writes outside ``__init__`` that are neither routed
  through a ``threading.local()`` attribute (the warm scratch-buffer idiom
  of :mod:`repro.core.metrics`) nor inside a ``with <lock>`` block.

The sanctioned patterns — locks, thread-locals — pass structurally;
everything else needs a reasoned ``# repro: allow[concurrency-shared-state]``
waiver explaining why the write is safe (e.g. parent-thread-only, or
idempotent same-value initialisation).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from repro.analysis.astutil import (
    build_parent_map,
    call_name,
    class_methods,
    dotted_name,
    self_attribute_chain,
)
from repro.analysis.findings import Finding
from repro.analysis.project import AnalysisProject, SourceModule
from repro.analysis.registry import ANALYSIS_RULES, AnalysisRule

#: Calls whose result is a shared mutable container.
_MUTABLE_FACTORIES = {
    "list", "dict", "set", "defaultdict", "deque", "OrderedDict", "Counter",
}

#: Methods where instance state is expected to be (re)built wholesale.
_SETUP_METHODS = {"__init__", "__post_init__", "__new__", "__setstate__", "__getstate__"}


def _in_scope(module: SourceModule) -> bool:
    """Concurrency-relevant: threads are imported or the module serves."""
    if "/serve/" in f"/{module.rel}":
        return True
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            if any(alias.name.split(".")[0] in ("threading", "concurrent")
                   for alias in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in ("threading", "concurrent"):
                return True
    return False


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        return name is not None and name.split(".")[-1] in _MUTABLE_FACTORIES
    return False


def _lock_guarded(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> bool:
    """Whether *node* sits inside a ``with <something lock-ish>:`` block."""
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.With, ast.AsyncWith)):
            for item in current.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    expr = expr.func
                name = dotted_name(expr) or ""
                if "lock" in name.lower():
                    return True
        current = parents.get(current)
    return False


def _thread_local_attrs(node: ast.ClassDef) -> Set[str]:
    """Attributes assigned ``threading.local()`` in the class's __init__."""
    attrs: Set[str] = set()
    init = class_methods(node).get("__init__")
    if init is None:
        return attrs
    for stmt in ast.walk(init):
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            name = call_name(stmt.value) or ""
            if name.split(".")[-1] == "local" and "local" in name:
                for target in stmt.targets:
                    chain = self_attribute_chain(target)
                    if chain is not None and len(chain) == 1:
                        attrs.add(chain[0])
    return attrs


@ANALYSIS_RULES.register("concurrency-shared-state")
class SharedStateRule(AnalysisRule):
    """Unguarded shared mutable state in thread-facing modules."""

    def check(self, project: AnalysisProject) -> Iterator[Finding]:
        for module in project.modules:
            if _in_scope(module):
                yield from self._check_module(module)

    def _check_module(self, module: SourceModule) -> Iterator[Finding]:
        parents = build_parent_map(module.tree)
        yield from self._check_module_level(module)
        yield from self._check_globals(module, parents)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node, parents)

    # ------------------------------------------------------------------ ---
    def _check_module_level(self, module: SourceModule) -> Iterator[Finding]:
        for stmt in module.tree.body:
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            value = stmt.value
            if value is None or not _is_mutable_value(value):
                continue
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and not (
                    target.id.startswith("__") and target.id.endswith("__")
                ):
                    yield Finding(
                        rule=self.rule_id,
                        path=module.rel,
                        line=stmt.lineno,
                        message=(
                            f"module-level mutable {target.id} is shared "
                            f"across threads"
                        ),
                        hint="guard mutation with a lock, make it immutable, "
                             "or waive with a reason if read-only after import",
                    )

    def _check_globals(
        self, module: SourceModule, parents: Dict[ast.AST, ast.AST]
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Global):
                continue
            function = parents.get(node)
            while function is not None and not isinstance(
                function, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                function = parents.get(function)
            if function is None:
                continue
            declared = set(node.names)
            for stmt in ast.walk(function):
                if not isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    continue
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in declared
                        and not _lock_guarded(stmt, parents)
                    ):
                        yield Finding(
                            rule=self.rule_id,
                            path=module.rel,
                            line=stmt.lineno,
                            message=(
                                f"unguarded write to global {target.id} in "
                                f"{function.name}()"
                            ),
                            hint="hold a module lock around the check-and-set",
                        )

    def _check_class(
        self,
        module: SourceModule,
        node: ast.ClassDef,
        parents: Dict[ast.AST, ast.AST],
    ) -> Iterator[Finding]:
        thread_locals = _thread_local_attrs(node)
        for name, method in class_methods(node).items():
            if name in _SETUP_METHODS:
                continue
            for stmt in ast.walk(method):
                if not isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    continue
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    chain = self_attribute_chain(target)
                    if chain is None:
                        continue
                    if chain[0] in thread_locals and len(chain) > 1:
                        continue  # the threading.local() scratch idiom
                    if _lock_guarded(stmt, parents):
                        continue
                    yield Finding(
                        rule=self.rule_id,
                        path=module.rel,
                        line=stmt.lineno,
                        message=(
                            f"unguarded write to self.{'.'.join(chain)} in "
                            f"{node.name}.{name}() of a thread-facing module"
                        ),
                        hint="guard with a lock or route through a "
                             "threading.local(); waive with a reason if the "
                             "write is parent-thread-only or idempotent",
                    )
