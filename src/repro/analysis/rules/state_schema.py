"""State-schema completeness: ``to_state`` must capture the whole object.

Fitted artifacts round-trip through JSON (``to_state`` / ``from_state``) and
the round-trip is gated bitwise in tests — but a *new* ``__init__``
attribute that ``to_state`` forgets silently survives only in memory and is
reset on reload.  This rule statically cross-checks, per class defining
``to_state``:

* every ``self.<attr>`` assigned in ``__init__`` (private ``_underscore``
  names excluded) is read somewhere in ``to_state``, transitively through
  same-class ``self.method()`` calls (so ``param_state``-style helpers
  count);
* every top-level state key — string keys of returned dict literals plus
  ``state["key"] = ...`` subscript stores, again transitively — appears as a
  string literal in ``from_state``, so the reader knows about every key the
  writer emits.

Deliberately ephemeral attributes (caches) carry a reasoned
``# repro: allow[state-schema]`` waiver on the ``__init__`` assignment line.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.analysis.astutil import (
    class_methods,
    self_attribute_chain,
    string_constants,
)
from repro.analysis.findings import Finding
from repro.analysis.project import AnalysisProject
from repro.analysis.registry import ANALYSIS_RULES, AnalysisRule

#: State keys every serializer emits as format/dispatch markers, checked by
#: shared helpers (expect_state_type) rather than each from_state.
_MARKER_KEYS = {"type", "format"}


def _init_attr_lines(init: ast.FunctionDef) -> Dict[str, int]:
    """Public ``self.X = ...`` assignments of ``__init__``: name -> line."""
    attrs: Dict[str, int] = {}
    for node in ast.walk(init):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                chain = self_attribute_chain(target)
                if chain is not None and len(chain) == 1 and not chain[0].startswith("_"):
                    attrs.setdefault(chain[0], node.lineno)
    return attrs


def _reachable_methods(
    methods: Dict[str, ast.FunctionDef], start: str
) -> List[ast.FunctionDef]:
    """*start* plus every same-class method reachable via self.m() calls."""
    seen: Set[str] = set()
    queue = [start]
    reached: List[ast.FunctionDef] = []
    while queue:
        name = queue.pop()
        if name in seen or name not in methods:
            continue
        seen.add(name)
        method = methods[name]
        reached.append(method)
        for node in ast.walk(method):
            if isinstance(node, ast.Call):
                chain = self_attribute_chain(node.func)
                if chain is not None and len(chain) == 1:
                    queue.append(chain[0])
    return reached


def _attr_reads(bodies: List[ast.FunctionDef]) -> Set[str]:
    reads: Set[str] = set()
    for body in bodies:
        for node in ast.walk(body):
            if isinstance(node, ast.Attribute):
                chain = self_attribute_chain(node)
                if chain is not None:
                    reads.add(chain[0])
    return reads


def _state_keys(bodies: List[ast.FunctionDef]) -> Set[str]:
    """Top-level keys the serializer emits: returned dict literals plus
    ``<name>["key"] = ...`` subscript stores (nested dicts excluded)."""
    keys: Set[str] = set()
    for body in bodies:
        for node in ast.walk(body):
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
                for key in node.value.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        keys.add(key.value)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                    ):
                        keys.add(target.slice.value)
    return keys


@ANALYSIS_RULES.register("state-schema")
class StateSchemaRule(AnalysisRule):
    """to_state must cover all __init__ attributes; from_state all keys."""

    def check(self, project: AnalysisProject) -> Iterator[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(module, node)

    def _check_class(self, module, node: ast.ClassDef) -> Iterator[Finding]:
        methods = class_methods(node)
        to_state = methods.get("to_state")
        if to_state is None:
            return
        writer_bodies = _reachable_methods(methods, "to_state")

        init = methods.get("__init__")
        if init is not None:
            reads = _attr_reads(writer_bodies)
            for attr, line in sorted(_init_attr_lines(init).items()):
                if attr not in reads:
                    yield Finding(
                        rule=self.rule_id,
                        path=module.rel,
                        line=line,
                        message=(
                            f"{node.name}.{attr} is set in __init__ but never "
                            f"read by to_state"
                        ),
                        hint="serialize the attribute (or waive it with a "
                             "reasoned allow comment if it is ephemeral)",
                    )

        from_state = methods.get("from_state")
        if from_state is None:
            yield Finding(
                rule=self.rule_id,
                path=module.rel,
                line=to_state.lineno,
                message=f"{node.name} defines to_state but no from_state",
                hint="add a from_state classmethod so the state round-trips",
            )
            return
        reader_bodies = _reachable_methods(methods, "from_state")
        known: Set[str] = set()
        for body in reader_bodies:
            known.update(string_constants(body))
        for key in sorted(_state_keys(writer_bodies) - _MARKER_KEYS):
            if key not in known:
                yield Finding(
                    rule=self.rule_id,
                    path=module.rel,
                    line=to_state.lineno,
                    message=(
                        f"{node.name}.to_state emits key {key!r} that "
                        f"from_state never reads"
                    ),
                    hint="consume the key in from_state (a dropped key is "
                         "silent data loss on reload)",
                )
