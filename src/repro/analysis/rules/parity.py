"""Parity-gate audit: every reference implementation must be exercised.

The repo's correctness story rests on ``_reference_*`` functions — slow,
obviously-correct implementations that the optimized paths are compared
against bitwise in tests.  An unreferenced reference function is a silent
hole in that story: the optimized path it should gate can drift without any
test noticing.  This rule cross-checks each ``_reference_*`` definition in
the analyzed tree against the parsed test tree (names, attribute accesses
and string literals all count, so indirect dispatch via registries or
parametrized ids is recognized).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.astutil import string_constants
from repro.analysis.findings import Finding
from repro.analysis.project import AnalysisProject
from repro.analysis.registry import ANALYSIS_RULES, AnalysisRule


def _referenced_symbols(project: AnalysisProject) -> Set[str]:
    symbols: Set[str] = set()
    for module in project.test_modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Name):
                symbols.add(node.id)
            elif isinstance(node, ast.Attribute):
                symbols.add(node.attr)
        symbols.update(string_constants(module.tree))
    return symbols


@ANALYSIS_RULES.register("parity-gate")
class ParityGateRule(AnalysisRule):
    """Every _reference_* function must be referenced by a test."""

    def check(self, project: AnalysisProject) -> Iterator[Finding]:
        if not project.test_modules:
            # Analyzing a lone file/tree without test context: the audit
            # has nothing to cross-check against, so it stays silent.
            return
        referenced = _referenced_symbols(project)
        for module in project.modules:
            for node in ast.walk(module.tree):
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name.startswith("_reference_")
                    and node.name not in referenced
                ):
                    yield Finding(
                        rule=self.rule_id,
                        path=module.rel,
                        line=node.lineno,
                        message=(
                            f"reference implementation {node.name}() is not "
                            f"exercised by any test"
                        ),
                        hint="add a bitwise parity test against the "
                             "optimized path (or remove the dead reference)",
                    )
