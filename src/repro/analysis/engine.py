"""The analyzer engine: run rules, apply suppressions, apply the baseline.

The pipeline is deliberately ordered:

1. every selected rule runs over the project and yields raw findings
   (plus any ``parse-error`` findings collected while loading);
2. per-line ``# repro: allow[...]`` suppressions filter them, *marking
   usage* as they match;
3. malformed and unused suppressions are appended as findings of their own
   (a waiver that silences nothing is debt);
4. the baseline splits what remains into accepted and new findings, turning
   stale entries into findings.

The returned result is deterministic: findings are sorted by path, line,
rule and message, so two runs over the same tree are diffable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.project import AnalysisProject
from repro.analysis.registry import ANALYSIS_RULES


@dataclass
class AnalysisResult:
    """Outcome of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)
    """New (unsuppressed, non-baselined) findings; non-empty means exit 1."""
    baselined: List[Finding] = field(default_factory=list)
    """Findings accepted by the baseline file."""
    n_suppressed: int = 0
    """Findings silenced by allow comments."""
    n_files: int = 0
    """Analyzed Python files."""
    rules: List[str] = field(default_factory=list)
    """Rule ids that ran."""

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        """JSON document for ``--json`` / ``--output``."""
        return {
            "clean": self.clean,
            "n_files": self.n_files,
            "n_findings": len(self.findings),
            "n_baselined": len(self.baselined),
            "n_suppressed": self.n_suppressed,
            "rules": list(self.rules),
            "findings": [finding.to_dict() for finding in self.findings],
            "baselined": [finding.to_dict() for finding in self.baselined],
        }


def run_analysis(
    project: AnalysisProject,
    rule_ids: Optional[Sequence[str]] = None,
    baseline_path: Optional[str] = None,
) -> AnalysisResult:
    """Run the selected rules (default: all registered) over *project*."""
    selected = list(rule_ids) if rule_ids else ANALYSIS_RULES.available()
    raw: List[Finding] = list(project.parse_failures)
    for rule_id in selected:
        rule = ANALYSIS_RULES.get(rule_id)()
        raw.extend(rule.check(project))

    modules_by_rel = {module.rel: module for module in project.modules}
    kept: List[Finding] = []
    n_suppressed = 0
    for finding in raw:
        module = modules_by_rel.get(finding.path)
        if module is not None and module.suppressions.suppresses(
            finding.rule, finding.line
        ):
            n_suppressed += 1
        else:
            kept.append(finding)
    # Suppression bookkeeping runs after all rules consumed their matches.
    for module in project.modules:
        kept.extend(module.suppressions.leftover_findings(module.rel))

    baselined: List[Finding] = []
    if baseline_path is not None:
        fingerprints = load_baseline(baseline_path)
        kept, baselined = apply_baseline(kept, fingerprints, str(baseline_path))

    return AnalysisResult(
        findings=sort_findings(kept),
        baselined=sort_findings(baselined),
        n_suppressed=n_suppressed,
        n_files=len(project.modules),
        rules=selected,
    )
