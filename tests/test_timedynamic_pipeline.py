"""Tests for repro.timedynamic.pipeline (the Fig. 2 / Table II protocol)."""

import pytest

from repro.timedynamic.pipeline import TimeDynamicPipeline


@pytest.fixture(scope="module")
def pipeline(mobilenet_network, xception_network, label_space):
    return TimeDynamicPipeline(
        test_network=mobilenet_network,
        reference_network=xception_network,
        label_space=label_space,
        gradient_boosting_params={"n_estimators": 15, "max_depth": 2, "max_features": "sqrt"},
        neural_network_params={"hidden_layer_sizes": (12,), "n_epochs": 30},
    )


@pytest.fixture(scope="module")
def processed(pipeline, kitti_like):
    return pipeline.process_dataset(kitti_like)


@pytest.fixture(scope="module")
def protocol_result(pipeline, processed):
    return pipeline.run_protocol(
        processed,
        n_frames_list=(0, 2),
        compositions=("R", "RP"),
        methods=("gradient_boosting",),
        n_runs=2,
        random_state=0,
    )


class TestProcessDataset:
    def test_sequences_processed(self, processed, kitti_like):
        assert len(processed) == kitti_like.n_sequences
        for sequence in processed:
            assert sequence.n_frames == kitti_like.n_frames_per_sequence
            assert sequence.tracker.n_tracks > 0

    def test_pseudo_only_for_unlabeled(self, processed, kitti_like):
        labeled = set(kitti_like.labeled_frame_indices())
        for sequence in processed:
            for frame_index, pseudo in enumerate(sequence.pseudo_iou):
                assert (pseudo is None) == (frame_index in labeled)


class TestRunProtocol:
    def test_result_structure(self, protocol_result):
        assert set(protocol_result.classification) == {"R", "RP"}
        assert set(protocol_result.classification["R"]) == {"gradient_boosting"}
        assert set(protocol_result.classification["R"]["gradient_boosting"]) == {0, 2}
        assert protocol_result.n_real_segments > 0
        assert protocol_result.n_pseudo_segments > 0

    def test_metric_values_valid(self, protocol_result):
        for composition in protocol_result.classification.values():
            for method in composition.values():
                for metrics in method.values():
                    assert 0.0 <= metrics["accuracy"][0] <= 1.0
                    assert 0.0 <= metrics["auroc"][0] <= 1.0
        for composition in protocol_result.regression.values():
            for method in composition.values():
                for metrics in method.values():
                    assert metrics["sigma"][0] >= 0.0
                    assert metrics["r2"][0] <= 1.0

    def test_auroc_series_and_best(self, protocol_result):
        series = protocol_result.auroc_series("R", "gradient_boosting")
        assert list(series) == [0, 2]
        best = protocol_result.best_classification("R", "gradient_boosting")
        assert best["n_frames"] in (0, 2)
        assert best["auroc"][0] >= max(v[0] for v in series.values()) - 1e-12
        best_reg = protocol_result.best_regression("R", "gradient_boosting")
        assert best_reg["n_frames"] in (0, 2)

    def test_invalid_arguments(self, pipeline, processed):
        with pytest.raises(ValueError):
            pipeline.run_protocol(processed, compositions=("Z",), n_runs=1)
        with pytest.raises(ValueError):
            pipeline.run_protocol(processed, methods=("svm",), n_runs=1)

    def test_single_frame_linear_reference(self, pipeline, processed):
        reference = pipeline.single_frame_linear_reference(processed, n_runs=2, random_state=1)
        assert set(reference) == {"accuracy", "auroc", "sigma", "r2"}
        assert 0.0 <= reference["auroc"][0] <= 1.0
