"""Tests for repro.utils.connected_components."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.utils.connected_components import (
    component_sizes,
    component_slices,
    connected_components,
    relabel_sequential,
)


class TestConnectedComponents:
    def test_single_uniform_region(self):
        labels = np.zeros((4, 4), dtype=int)
        components, count = connected_components(labels)
        assert count == 1
        assert np.all(components == 1)

    def test_two_classes_two_components(self):
        labels = np.zeros((4, 6), dtype=int)
        labels[:, 3:] = 1
        components, count = connected_components(labels)
        assert count == 2
        assert components[0, 0] != components[0, 5]

    def test_same_class_disconnected_regions(self):
        labels = np.zeros((5, 5), dtype=int)
        labels[0, 0] = 1
        labels[4, 4] = 1
        components, count = connected_components(labels, connectivity=4)
        assert count == 3  # background class 0 plus two isolated class-1 pixels

    def test_background_ignored(self):
        labels = np.full((3, 3), -1)
        labels[1, 1] = 2
        components, count = connected_components(labels, background=-1)
        assert count == 1
        assert components[0, 0] == 0
        assert components[1, 1] == 1

    def test_diagonal_connectivity_difference(self):
        labels = np.zeros((2, 2), dtype=int)
        labels[0, 0] = 1
        labels[1, 1] = 1
        _, count4 = connected_components(labels, connectivity=4)
        _, count8 = connected_components(labels, connectivity=8)
        # 4-connectivity: both diagonal pairs (class 1 and class 0) stay split
        # into two components each; 8-connectivity merges each pair.
        assert count4 == 4
        assert count8 == 2

    def test_ids_are_dense_and_start_at_one(self):
        labels = np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]])
        components, count = connected_components(labels, connectivity=4)
        present = np.unique(components)
        assert present.min() == 1
        assert present.max() == count

    def test_invalid_connectivity(self):
        with pytest.raises(ValueError):
            connected_components(np.zeros((2, 2), dtype=int), connectivity=6)

    def test_invalid_engine(self):
        with pytest.raises(ValueError):
            connected_components(np.zeros((2, 2), dtype=int), engine="magic")

    def test_engines_agree(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 4, size=(20, 24))
        for connectivity in (4, 8):
            scipy_out, scipy_count = connected_components(
                labels, connectivity=connectivity, engine="scipy"
            )
            uf_out, uf_count = connected_components(
                labels, connectivity=connectivity, engine="unionfind"
            )
            assert scipy_count == uf_count
            np.testing.assert_array_equal(scipy_out, uf_out)

    def test_all_background(self):
        labels = np.full((4, 4), -1)
        components, count = connected_components(labels)
        assert count == 0
        assert np.all(components == 0)


class TestComponentSizes:
    def test_sizes_sum_to_pixels(self):
        labels = np.array([[0, 0, 1], [0, 1, 1]])
        components, count = connected_components(labels)
        sizes = component_sizes(components)
        assert sizes[1:].sum() == labels.size
        assert len(sizes) == count + 1

    def test_empty_input(self):
        assert component_sizes(np.zeros((0,), dtype=int)).tolist() == [0]


class TestRelabelSequential:
    def test_dense_relabelling(self):
        components = np.array([[0, 5], [5, 9]])
        out, count = relabel_sequential(components)
        assert count == 2
        assert set(np.unique(out)) == {0, 1, 2}

    def test_preserves_partition(self):
        components = np.array([[3, 3, 7], [7, 7, 3]])
        out, _ = relabel_sequential(components)
        assert (out[0, 0] == out[0, 1]) and (out[0, 2] == out[1, 0])
        assert out[0, 0] != out[0, 2]


class TestComponentSlices:
    def test_bounding_boxes(self):
        labels = np.zeros((6, 6), dtype=int)
        labels[2:4, 3:6] = 1
        components, _ = connected_components(labels)
        boxes = component_slices(components)
        # There are two components; find the one covering the class-1 block.
        block_id = components[2, 3]
        rows_slice, cols_slice = boxes[block_id]
        assert (rows_slice.start, rows_slice.stop) == (2, 4)
        assert (cols_slice.start, cols_slice.stop) == (3, 6)

    def test_empty_components(self):
        assert component_slices(np.zeros((3, 3), dtype=np.int64)) == {}


@given(
    labels=arrays(
        dtype=np.int64,
        shape=st.tuples(st.integers(2, 12), st.integers(2, 12)),
        elements=st.integers(min_value=-1, max_value=3),
    ),
    connectivity=st.sampled_from([4, 8]),
)
@settings(max_examples=40, deadline=None)
def test_property_components_partition_foreground(labels, connectivity):
    """Every non-background pixel gets exactly one id; components are class-pure."""
    components, count = connected_components(labels, connectivity=connectivity)
    foreground = labels != -1
    assert np.all((components > 0) == foreground)
    for comp_id in range(1, count + 1):
        values = np.unique(labels[components == comp_id])
        assert values.size == 1


@given(
    labels=arrays(
        dtype=np.int64,
        shape=st.tuples(st.integers(2, 10), st.integers(2, 10)),
        elements=st.integers(min_value=0, max_value=2),
    )
)
@settings(max_examples=25, deadline=None)
def test_property_engines_equivalent(labels):
    """The scipy fast path and the union-find fallback agree exactly."""
    a, count_a = connected_components(labels, engine="scipy")
    b, count_b = connected_components(labels, engine="unionfind")
    assert count_a == count_b
    np.testing.assert_array_equal(a, b)
