"""Tests for repro.timedynamic.tracking."""

import numpy as np
import pytest

from repro.core.segments import extract_segments
from repro.timedynamic.tracking import SegmentTracker, match_segments


def _frame_with_box(top, left, size=4, class_id=13, shape=(20, 30)):
    labels = np.zeros(shape, dtype=int)
    labels[top : top + size, left : left + size] = class_id
    return extract_segments(labels)


class TestMatchSegments:
    def test_identical_frames_match_every_segment(self, image_metrics):
        segmentation = image_metrics.prediction
        matches = match_segments(segmentation, segmentation)
        assert len(matches) == segmentation.n_segments
        assert all(prev == curr for prev, curr in matches.items())

    def test_moving_object_matched(self):
        previous = _frame_with_box(5, 5)
        current = _frame_with_box(5, 7)
        matches = match_segments(previous, current)
        prev_box = [sid for sid, info in previous.segments.items() if info.class_id == 13][0]
        curr_box = [sid for sid, info in current.segments.items() if info.class_id == 13][0]
        assert matches.get(prev_box) == curr_box

    def test_shift_enables_matching_fast_objects(self):
        previous = _frame_with_box(5, 5, size=3)
        current = _frame_with_box(5, 13, size=3)
        without_shift = match_segments(previous, current, min_overlap_fraction=0.3)
        prev_box = [sid for sid, info in previous.segments.items() if info.class_id == 13][0]
        with_shift = match_segments(
            previous, current, shifts={prev_box: (0.0, 8.0)}, min_overlap_fraction=0.3
        )
        curr_box = [sid for sid, info in current.segments.items() if info.class_id == 13][0]
        assert with_shift.get(prev_box) == curr_box
        assert without_shift.get(prev_box) != curr_box

    def test_class_mismatch_never_matched(self):
        previous = _frame_with_box(5, 5, class_id=13)
        current = _frame_with_box(5, 5, class_id=11)
        matches = match_segments(previous, current)
        prev_box = [sid for sid, info in previous.segments.items() if info.class_id == 13][0]
        assert prev_box not in matches

    def test_one_to_one_assignment(self):
        labels_prev = np.zeros((20, 30), dtype=int)
        labels_prev[5:9, 5:9] = 13
        previous = extract_segments(labels_prev)
        labels_curr = np.zeros((20, 30), dtype=int)
        labels_curr[5:9, 5:9] = 13
        labels_curr[5:9, 12:16] = 13
        current = extract_segments(labels_curr)
        matches = match_segments(previous, current)
        assert len(set(matches.values())) == len(matches)

    def test_invalid_overlap_fraction(self, image_metrics):
        with pytest.raises(ValueError):
            match_segments(image_metrics.prediction, image_metrics.prediction,
                           min_overlap_fraction=1.5)


class TestSegmentTracker:
    def test_static_sequence_one_track_per_segment(self, image_metrics):
        tracker = SegmentTracker()
        first = tracker.update(image_metrics.prediction)
        second = tracker.update(image_metrics.prediction)
        assert tracker.n_tracks == image_metrics.prediction.n_segments
        for segment_id, track_id in second.items():
            assert first[segment_id] == track_id

    def test_moving_object_keeps_identity(self):
        tracker = SegmentTracker()
        assignments = []
        for step in range(4):
            frame = _frame_with_box(5, 5 + 2 * step)
            assignments.append(tracker.update(frame))
        box_tracks = set()
        for step, frame_assignment in enumerate(assignments):
            frame = _frame_with_box(5, 5 + 2 * step)
            box_segment = [sid for sid, info in frame.segments.items() if info.class_id == 13][0]
            box_tracks.add(frame_assignment[box_segment])
        assert len(box_tracks) == 1

    def test_track_history_records_frames(self):
        tracker = SegmentTracker()
        for step in range(3):
            tracker.update(_frame_with_box(5, 5 + step))
        lengths = tracker.track_lengths()
        assert max(lengths.values()) == 3

    def test_flicker_survival(self):
        # The object disappears for one frame and is re-identified afterwards
        # provided max_missed_frames allows it.
        tracker = SegmentTracker(max_missed_frames=2)
        frame_a = _frame_with_box(5, 5)
        empty = extract_segments(np.zeros((20, 30), dtype=int))
        frame_b = _frame_with_box(5, 6)
        tracker.update(frame_a)
        tracker.update(empty)
        assignment = tracker.update(frame_b)
        box_segment = [sid for sid, info in frame_b.segments.items() if info.class_id == 13][0]
        # The re-appearing box may either continue the old track or start a
        # new one depending on the overlap test; the tracker must at least
        # not crash and must assign some track.
        assert box_segment in assignment

    def test_new_objects_get_new_tracks(self):
        tracker = SegmentTracker()
        tracker.update(_frame_with_box(5, 5))
        labels = np.zeros((20, 30), dtype=int)
        labels[5:9, 5:9] = 13
        labels[12:16, 20:24] = 11
        second = extract_segments(labels)
        tracker.update(second)
        assert tracker.n_tracks >= 3  # background, first box, new person

    def test_track_of_lookup(self):
        tracker = SegmentTracker()
        frame = _frame_with_box(5, 5)
        assignment = tracker.update(frame)
        for segment_id, track_id in assignment.items():
            assert tracker.track_of(0, segment_id) == track_id
        assert tracker.track_of(0, 9999) is None

    def test_expected_shift_estimation(self):
        tracker = SegmentTracker()
        for step in range(3):
            tracker.update(_frame_with_box(5, 5 + 3 * step))
        moving = [t for t in tracker.tracks.values() if t.class_id == 13][0]
        shift = moving.expected_shift()
        assert abs(shift[1] - 3.0) < 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SegmentTracker(max_missed_frames=-1)

    def test_real_sequence_tracking(self, kitti_like, mobilenet_network, extractor):
        sequence = kitti_like.sequence(0)
        tracker = SegmentTracker()
        n_segments_total = 0
        for index, scene in enumerate(sequence.frames):
            probs = mobilenet_network.predict_probabilities(scene.labels, index=index)
            segmentation = extract_segments(np.argmax(probs, axis=2))
            assignment = tracker.update(segmentation)
            n_segments_total += segmentation.n_segments
            assert set(assignment) == set(segmentation.segment_ids())
        # Tracking compresses segments into fewer identities.
        assert tracker.n_tracks < n_segments_total
