"""Tests for repro.api.registry: the component registries of the experiment API."""

import pytest

from repro.api.config import DataConfig, EvalConfig, ExperimentConfig, MetaModelConfig
from repro.api.registry import (
    DATASETS,
    DECISION_RULES,
    META_CLASSIFIERS,
    META_REGRESSORS,
    METRIC_GROUPS,
    NETWORK_PROFILES,
    Registry,
    RegistryError,
    all_registries,
)
from repro.core.meta_classification import MetaClassifier
from repro.core.meta_regression import MetaRegressor
from repro.segmentation.datasets import CityscapesLikeDataset, KittiLikeDataset
from repro.segmentation.network import NetworkProfile


class TestRegistryBasics:
    def test_register_via_decorator_returns_object(self):
        registry = Registry("toys")

        @registry.register("one")
        def make_one():
            """Makes a one."""
            return 1

        assert make_one() == 1
        assert registry.get("one") is make_one

    def test_register_plain_call_accepts_any_value(self):
        registry = Registry("toys")
        registry.register("names", ("a", "b"))
        registry.register("nothing", None)
        assert registry.get("names") == ("a", "b")
        assert registry.get("nothing") is None

    def test_available_is_sorted(self):
        registry = Registry("toys")
        registry.register("zeta", 1)
        registry.register("alpha", 2)
        assert registry.available() == ["alpha", "zeta"]
        assert list(registry) == ["alpha", "zeta"]
        assert len(registry) == 2

    def test_duplicate_name_rejected(self):
        registry = Registry("toys")
        registry.register("taken", 1)
        with pytest.raises(RegistryError, match="already has an entry named 'taken'"):
            registry.register("taken", 2)

    def test_unknown_name_lists_alternatives(self):
        registry = Registry("toys")
        registry.register("alpha", 1)
        with pytest.raises(RegistryError, match="unknown toys entry 'beta'.*alpha"):
            registry.get("beta")

    def test_invalid_names_rejected(self):
        registry = Registry("toys")
        with pytest.raises(TypeError):
            registry.register("", 1)
        with pytest.raises(TypeError):
            registry.register(3, 1)

    def test_contains_and_items(self):
        registry = Registry("toys")
        registry.register("alpha", 1)
        assert "alpha" in registry
        assert "beta" not in registry
        assert registry.items() == [("alpha", 1)]

    def test_describe_uses_docstring_for_callables(self):
        registry = Registry("toys")

        @registry.register("documented")
        def entry():
            """First line.

            More detail.
            """

        registry.register("data", (1, 2))
        assert registry.describe("documented") == "First line."
        assert registry.describe("data") == "(1, 2)"


class TestBuiltinListings:
    def test_every_registry_has_at_least_three_entries(self):
        for kind, registry in all_registries().items():
            assert len(registry.available()) >= 3, kind

    def test_network_profiles(self):
        for name in ("generic", "xception65", "mobilenetv2"):
            profile = NETWORK_PROFILES.get(name)()
            assert isinstance(profile, NetworkProfile)
            assert profile.name == name

    def test_datasets(self):
        assert {"cityscapes_like", "cityscapes_like_small",
                "kitti_like", "kitti_like_small"} <= set(DATASETS.available())

    def test_metric_groups_match_extractor_features(self, extractor):
        names = extractor.feature_names()
        assert METRIC_GROUPS.get("all") is None
        for group in ("entropy_only", "dispersion", "geometry", "context"):
            features = METRIC_GROUPS.get(group)
            assert features, group
            assert set(features) <= set(names)

    def test_meta_model_variants(self):
        assert set(META_CLASSIFIERS.available()) == {
            "logistic", "gradient_boosting", "neural_network"
        }
        assert set(META_REGRESSORS.available()) == {
            "linear", "gradient_boosting", "neural_network"
        }

    def test_decision_rules(self):
        assert {"bayes", "ml", "interpolated"} <= set(DECISION_RULES.available())


class TestConfigRegistryRoundTrip:
    """Config -> registry -> live instance for each of the three kinds."""

    def test_metaseg_round_trip(self):
        from repro.api.runner import Runner

        config = ExperimentConfig(
            kind="metaseg",
            seed=3,
            data=DataConfig(dataset="cityscapes_like_small", n_val=2),
            meta_models=MetaModelConfig(feature_group="dispersion"),
        ).validate()
        resolved = Runner().resolve(config)
        assert isinstance(resolved.dataset, CityscapesLikeDataset)
        assert resolved.network.profile.name == "mobilenetv2"
        assert resolved.reference_network is None
        assert resolved.feature_subset == list(METRIC_GROUPS.get("dispersion"))
        classifier = META_CLASSIFIERS.get(resolved.classifiers[0])(penalty=0.5)
        assert isinstance(classifier, MetaClassifier)
        assert classifier.method == "logistic"
        regressor = META_REGRESSORS.get(resolved.regressors[0])()
        assert isinstance(regressor, MetaRegressor)
        assert regressor.method == "linear"

    def test_timedynamic_round_trip(self):
        from repro.api.runner import Runner

        config = ExperimentConfig(
            kind="timedynamic",
            seed=4,
            data=DataConfig(dataset="kitti_like_small", n_sequences=1, n_frames=4),
            meta_models=MetaModelConfig(
                classifiers=["gradient_boosting"], regressors=["gradient_boosting"]
            ),
        ).validate()
        resolved = Runner().resolve(config)
        assert isinstance(resolved.dataset, KittiLikeDataset)
        assert resolved.network.profile.name == "mobilenetv2"
        assert resolved.reference_network is not None
        assert resolved.reference_network.profile.name == "xception65"

    def test_decision_round_trip(self):
        from repro.api.runner import Runner

        config = ExperimentConfig(
            kind="decision",
            seed=5,
            data=DataConfig(dataset="cityscapes_like_small", n_train=2, n_val=1),
            evaluation=EvalConfig(rules=["bayes", "ml", "interpolated"]),
        ).validate()
        resolved = Runner().resolve(config)
        assert isinstance(resolved.dataset, CityscapesLikeDataset)
        for rule in resolved.rules:
            assert callable(DECISION_RULES.get(rule))

    def test_unknown_names_fail_fast(self):
        from repro.api.runner import Runner

        runner = Runner()
        bad_profile = ExperimentConfig(kind="metaseg")
        bad_profile.network.profile = "resnet101"
        with pytest.raises(RegistryError, match="unknown networks entry 'resnet101'"):
            runner.resolve(bad_profile)
        bad_dataset = ExperimentConfig(kind="metaseg")
        bad_dataset.data.dataset = "ade20k"
        with pytest.raises(RegistryError, match="unknown datasets entry 'ade20k'"):
            runner.resolve(bad_dataset)
        bad_rule = ExperimentConfig(kind="decision", data=DataConfig(n_train=1, n_val=1))
        bad_rule.evaluation.rules = ["bayes", "argmin"]
        with pytest.raises(RegistryError, match="unknown decision_rules entry 'argmin'"):
            runner.resolve(bad_rule)


class TestBuiltinLoaderThreadSafety:
    """The lazy builtin loader must never expose a partially loaded registry.

    Regression tests for the first-lookup race: the loader used to flip its
    loaded flag *before* importing the self-registering modules, so a second
    thread looking up concurrently returned immediately and saw whatever
    subset had registered so far.
    """

    def test_concurrent_lookup_blocks_until_registration_completes(self, monkeypatch):
        import builtins
        import threading

        import repro.api.registry as reg

        monkeypatch.setattr(reg, "_BUILTINS_READY", False)
        entered = threading.Event()
        release = threading.Event()
        real_import = builtins.__import__

        def slow_import(name, *args, **kwargs):
            # Stall the loading thread mid-registration, with the lock held.
            if name == "repro.decision.rules":
                entered.set()
                release.wait(timeout=10)
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", slow_import)
        results = []
        loader = threading.Thread(target=reg.DECISION_RULES.available)
        second = threading.Thread(
            target=lambda: results.append(reg.META_CLASSIFIERS.available())
        )
        try:
            loader.start()
            assert entered.wait(timeout=10)
            second.start()
            second.join(timeout=0.3)
            # The buggy loader let this lookup through mid-import; now it
            # must wait for the loading thread instead.
            assert second.is_alive()
        finally:
            release.set()
        loader.join(timeout=10)
        second.join(timeout=10)
        assert not loader.is_alive() and not second.is_alive()
        assert results and "logistic" in results[0]

    def test_parallel_first_lookups_agree(self, monkeypatch):
        import threading

        import repro.api.registry as reg

        monkeypatch.setattr(reg, "_BUILTINS_READY", False)
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        results = [None] * n_threads
        errors = []

        def lookup(i):
            try:
                barrier.wait(timeout=10)
                results[i] = tuple(reg.DECISION_RULES.available())
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=lookup, args=(i,)) for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        assert len(set(results)) == 1 and results[0]
