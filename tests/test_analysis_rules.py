"""Tests for repro.analysis: rules, suppressions, baseline and self-audit.

The known-bad fixtures under ``tests/fixtures/analysis`` each violate exactly
one rule family; the tests pin that the intended rule (and only that rule)
fires on each.  Suppression and baseline behaviour is exercised on temporary
trees, and the final test runs the full analyzer over the real ``src/repro``
tree — the same standing gate ``scripts/ci.sh`` enforces.
"""

from pathlib import Path

import pytest

from repro.analysis import (
    ANALYSIS_RULES,
    AnalysisProject,
    load_baseline,
    run_analysis,
    write_baseline,
)

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
REPO_ROOT = Path(__file__).parent.parent


def analyze(paths, tmp_path=None, **kwargs):
    """Run the full rule set over *paths* without real-repo context."""
    if "tests_dir" not in kwargs:
        # Point the context dirs somewhere empty so fixture analysis does
        # not pick up the real test tree through root inference.
        kwargs["tests_dir"] = str((tmp_path or FIXTURES) / "no-tests-here")
        kwargs["configs_dir"] = str((tmp_path or FIXTURES) / "no-configs-here")
    project = AnalysisProject.from_paths([str(p) for p in paths], **kwargs)
    return run_analysis(project)


class TestKnownBadFixtures:
    @pytest.mark.parametrize(
        "fixture, rule",
        [
            ("det_listdir.py", "det-listdir"),
            ("det_set_order.py", "det-set-order"),
            ("det_wallclock.py", "det-wallclock"),
            ("det_rng.py", "det-rng"),
            ("det_hash.py", "det-hash"),
            ("state_schema.py", "state-schema"),
            ("concurrency.py", "concurrency-shared-state"),
        ],
    )
    def test_fixture_fires_exactly_its_rule(self, fixture, rule):
        result = analyze([FIXTURES / fixture])
        assert result.findings, f"{fixture} produced no findings"
        assert {f.rule for f in result.findings} == {rule}

    def test_parity_gate_flags_only_the_orphan(self):
        result = analyze([FIXTURES / "parity" / "src"], tests_dir=None)
        assert {f.rule for f in result.findings} == {"parity-gate"}
        assert len(result.findings) == 1
        assert "_reference_foo" in result.findings[0].message

    def test_config_contract_flags_dead_knob_and_bad_paths(self):
        result = analyze([FIXTURES / "config" / "src"], tests_dir=None)
        by_rule = {}
        for finding in result.findings:
            by_rule.setdefault(finding.rule, []).append(finding.message)
        assert set(by_rule) == {"config-field-unread", "config-override-path"}
        assert by_rule["config-field-unread"] == [
            "config field UnusedConfig.ghost is never read outside its own validation"
        ]
        assert len(by_rule["config-override-path"]) == 2
        assert any("train.momentum" in m for m in by_rule["config-override-path"])
        assert any("train.decay" in m for m in by_rule["config-override-path"])

    def test_findings_carry_location_and_hint(self):
        result = analyze([FIXTURES / "det_hash.py"])
        finding = result.findings[0]
        assert finding.path.endswith("det_hash.py")
        assert finding.line == 5
        assert finding.hint
        formatted = finding.format()
        assert f":{finding.line}: [det-hash]" in formatted
        assert "(fix:" in formatted


class TestNegatives:
    """The sanctioned spellings must pass without suppression."""

    def test_clean_idioms_produce_no_findings(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text(
            "import os\n"
            "import threading\n"
            "import numpy as np\n"
            "\n"
            "_LOCK = threading.Lock()\n"
            "_FLAG = False\n"
            "\n"
            "\n"
            "def walk(root, seed):\n"
            "    names = sorted(os.listdir(root))\n"
            "    count = len(os.listdir(root))\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return names, count, rng.random()\n"
            "\n"
            "\n"
            "def set_flag():\n"
            "    global _FLAG\n"
            "    with _LOCK:\n"
            "        _FLAG = True\n"
            "\n"
            "\n"
            "class Scratch:\n"
            "    def __init__(self):\n"
            "        self._scratch = threading.local()\n"
            "        self.lock = threading.Lock()\n"
            "        self.state = None\n"
            "\n"
            "    def warm(self, value):\n"
            "        self._scratch.buffer = value\n"
            "        with self.lock:\n"
            "            self.state = value\n"
            "\n"
            "\n"
            "def pick(values):\n"
            "    for value in sorted(set(values)):\n"
            "        yield value\n"
        )
        result = analyze([clean], tmp_path=tmp_path)
        assert result.findings == []
        assert result.n_suppressed == 0


class TestSuppressions:
    def bad_line(self):
        return "import time\n\n\ndef stamp():\n    return time.time()"

    def test_allow_comment_silences_and_counts(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(
            self.bad_line()
            + "  # repro: allow[det-wallclock] -- fixture timing seam\n"
        )
        result = analyze([src], tmp_path=tmp_path)
        assert result.findings == []
        assert result.n_suppressed == 1

    def test_reasonless_allow_is_malformed(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(self.bad_line() + "  # repro: allow[det-wallclock]\n")
        result = analyze([src], tmp_path=tmp_path)
        rules = sorted(f.rule for f in result.findings)
        assert rules == ["det-wallclock", "malformed-suppression"]

    def test_unknown_directive_is_malformed(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text("X = 1  # repro: ignore-all\n")
        result = analyze([src], tmp_path=tmp_path)
        assert [f.rule for f in result.findings] == ["malformed-suppression"]

    def test_unused_suppression_is_a_finding(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text("X = 1  # repro: allow[det-hash] -- nothing here\n")
        result = analyze([src], tmp_path=tmp_path)
        assert [f.rule for f in result.findings] == ["unused-suppression"]
        assert "det-hash" in result.findings[0].message

    def test_meta_rules_cannot_be_suppressed(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text("X = 1  # repro: allow[unused-suppression] -- nope\n")
        result = analyze([src], tmp_path=tmp_path)
        assert [f.rule for f in result.findings] == ["malformed-suppression"]

    def test_directive_inside_string_is_ignored(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text('DOC = "# repro: allow[det-hash] -- not a comment"\n')
        result = analyze([src], tmp_path=tmp_path)
        assert result.findings == []


class TestBaseline:
    def write_bad_module(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text("def key_of(name):\n    return hash(name)\n")
        return src

    def test_baseline_accepts_then_goes_stale(self, tmp_path):
        src = self.write_bad_module(tmp_path)
        baseline = tmp_path / "baseline.json"

        first = analyze([src], tmp_path=tmp_path)
        assert [f.rule for f in first.findings] == ["det-hash"]
        assert write_baseline(baseline, first.findings) == 1
        assert load_baseline(baseline) == [f.fingerprint() for f in first.findings]

        project = AnalysisProject.from_paths(
            [str(src)],
            tests_dir=str(tmp_path / "none"),
            configs_dir=str(tmp_path / "none"),
        )
        accepted = run_analysis(project, baseline_path=str(baseline))
        assert accepted.findings == []
        assert [f.rule for f in accepted.baselined] == ["det-hash"]

        # Fix the defect: the baseline entry is now stale and must surface.
        src.write_text("import hashlib\n\n\ndef key_of(name):\n    return hashlib.sha256(name.encode()).hexdigest()\n")
        project = AnalysisProject.from_paths(
            [str(src)],
            tests_dir=str(tmp_path / "none"),
            configs_dir=str(tmp_path / "none"),
        )
        fixed = run_analysis(project, baseline_path=str(baseline))
        assert [f.rule for f in fixed.findings] == ["stale-baseline"]
        assert fixed.baselined == []

    def test_baseline_is_line_independent(self, tmp_path):
        src = self.write_bad_module(tmp_path)
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, analyze([src], tmp_path=tmp_path).findings)
        # Shift the finding to another line: the fingerprint still matches.
        src.write_text("import os\n\n\ndef key_of(name):\n    del os\n    return hash(name)\n")
        project = AnalysisProject.from_paths(
            [str(src)],
            tests_dir=str(tmp_path / "none"),
            configs_dir=str(tmp_path / "none"),
        )
        result = run_analysis(project, baseline_path=str(baseline))
        assert result.findings == []
        assert len(result.baselined) == 1

    def test_malformed_baseline_is_an_error(self, tmp_path):
        from repro.analysis.baseline import BaselineError

        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"version": 99}\n')
        with pytest.raises(BaselineError):
            load_baseline(baseline)
        baseline.write_text("not json at all")
        with pytest.raises(BaselineError):
            load_baseline(baseline)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == []


class TestRegistryAndSelfAudit:
    def test_all_rule_families_are_registered(self):
        available = ANALYSIS_RULES.available()
        assert available == sorted(available)
        for rule_id in (
            "det-listdir",
            "det-set-order",
            "det-wallclock",
            "det-rng",
            "det-hash",
            "parity-gate",
            "config-field-unread",
            "config-override-path",
            "state-schema",
            "concurrency-shared-state",
        ):
            assert rule_id in ANALYSIS_RULES
            assert ANALYSIS_RULES.get(rule_id).describe()

    def test_real_tree_is_clean_without_baseline(self):
        """The standing CI gate: src/repro passes with no baseline at all."""
        project = AnalysisProject.from_paths([str(REPO_ROOT / "src" / "repro")])
        result = run_analysis(project)
        assert result.findings == [], "\n".join(
            finding.format() for finding in result.findings
        )
        assert result.n_files > 80
        # The waived seams stay visible as suppression counts, not silence.
        assert result.n_suppressed > 0
