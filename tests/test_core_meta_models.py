"""Tests for repro.core.meta_classification and repro.core.meta_regression."""

import numpy as np
import pytest

from repro.core.meta_classification import (
    MetaClassifier,
    entropy_baseline_classifier,
    naive_baseline_accuracy,
    random_baseline_scores,
)
from repro.core.meta_regression import MetaRegressor, entropy_baseline_regressor
from repro.evaluation.classification import auroc


@pytest.fixture(scope="module")
def split_dataset(metrics_dataset):
    return metrics_dataset.split((0.8, 0.2), random_state=1)


class TestMetaClassifier:
    def test_logistic_beats_chance(self, split_dataset):
        train, test = split_dataset
        result = MetaClassifier(method="logistic").evaluate(train, test)
        assert result.test_auroc > 0.7
        assert result.test_accuracy > naive_baseline_accuracy(test) - 0.1

    def test_full_metrics_beat_entropy_baseline(self, split_dataset):
        train, test = split_dataset
        full = MetaClassifier(method="logistic").evaluate(train, test)
        entropy = entropy_baseline_classifier().evaluate(train, test)
        assert full.test_auroc > entropy.test_auroc

    def test_gradient_boosting_works(self, split_dataset):
        train, test = split_dataset
        result = MetaClassifier(method="gradient_boosting", n_estimators=20).evaluate(train, test)
        assert result.test_auroc > 0.7

    def test_neural_network_works(self, split_dataset):
        train, test = split_dataset
        result = MetaClassifier(
            method="neural_network", penalty=1e-3, n_epochs=60
        ).evaluate(train, test)
        assert result.test_auroc > 0.65

    def test_predict_proba_range(self, split_dataset):
        train, test = split_dataset
        classifier = MetaClassifier(method="logistic").fit(train)
        probs = classifier.predict_proba(test)
        assert np.all((probs >= 0) & (probs <= 1))
        assert probs.shape == (len(test),)

    def test_predict_threshold(self, split_dataset):
        train, test = split_dataset
        classifier = MetaClassifier(method="logistic").fit(train)
        assert classifier.predict(test, threshold=0.05).sum() >= classifier.predict(test, threshold=0.95).sum()

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            MetaClassifier(method="svm")

    def test_negative_penalty_raises(self):
        with pytest.raises(ValueError):
            MetaClassifier(penalty=-1.0)

    def test_unfitted_predict_raises(self, metrics_dataset):
        with pytest.raises(RuntimeError):
            MetaClassifier().predict_proba(metrics_dataset)

    def test_single_class_training_raises(self, metrics_dataset):
        positives = np.nonzero(metrics_dataset.target_iou0() == 1)[0]
        subset = metrics_dataset.subset(positives)
        with pytest.raises(ValueError):
            MetaClassifier().fit(subset)

    def test_result_as_dict(self, split_dataset):
        train, test = split_dataset
        result = MetaClassifier(method="logistic").evaluate(train, test)
        as_dict = result.as_dict()
        assert set(as_dict) == {"train_accuracy", "test_accuracy", "train_auroc", "test_auroc"}


class TestBaselines:
    def test_naive_accuracy_is_majority_fraction(self, metrics_dataset):
        naive = naive_baseline_accuracy(metrics_dataset)
        positive_rate = float(np.mean(metrics_dataset.target_iou0()))
        assert naive == max(positive_rate, 1 - positive_rate)
        assert 0.5 <= naive <= 1.0

    def test_random_scores_are_uninformative(self, metrics_dataset):
        scores = random_baseline_scores(len(metrics_dataset), random_state=0)
        value = auroc(metrics_dataset.target_iou0(), scores)
        assert 0.3 < value < 0.7

    def test_random_scores_invalid_n(self):
        with pytest.raises(ValueError):
            random_baseline_scores(0)


class TestMetaRegressor:
    def test_linear_beats_entropy_baseline(self, split_dataset):
        train, test = split_dataset
        # A mild ridge penalty keeps the comparison stable on the small test
        # fixture (the paper's datasets have thousands of segments).
        full = MetaRegressor(method="linear", penalty=1.0).evaluate(train, test)
        entropy = entropy_baseline_regressor().evaluate(train, test)
        assert full.test_r2 > entropy.test_r2
        assert full.test_sigma < entropy.test_sigma

    def test_r2_reasonable(self, split_dataset):
        train, test = split_dataset
        result = MetaRegressor(method="linear", penalty=1.0).evaluate(train, test)
        assert result.test_r2 > 0.3

    def test_predictions_clipped_to_unit_interval(self, split_dataset):
        train, test = split_dataset
        regressor = MetaRegressor(method="linear").fit(train)
        predictions = regressor.predict(test)
        assert predictions.min() >= 0.0
        assert predictions.max() <= 1.0

    def test_clipping_can_be_disabled(self, split_dataset):
        train, test = split_dataset
        regressor = MetaRegressor(method="linear", clip_predictions=False).fit(train)
        predictions = regressor.predict(test)
        assert predictions.shape == (len(test),)

    def test_gradient_boosting_regression(self, split_dataset):
        train, test = split_dataset
        result = MetaRegressor(method="gradient_boosting", n_estimators=20).evaluate(train, test)
        assert result.test_r2 > 0.3

    def test_neural_network_regression(self, split_dataset):
        train, test = split_dataset
        result = MetaRegressor(method="neural_network", penalty=1e-3, n_epochs=60).evaluate(train, test)
        assert result.test_r2 > 0.2

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            MetaRegressor(method="forest")

    def test_unfitted_predict_raises(self, metrics_dataset):
        with pytest.raises(RuntimeError):
            MetaRegressor().predict(metrics_dataset)

    def test_result_as_dict(self, split_dataset):
        train, test = split_dataset
        result = MetaRegressor(method="linear").evaluate(train, test)
        assert set(result.as_dict()) == {"train_sigma", "test_sigma", "train_r2", "test_r2"}
