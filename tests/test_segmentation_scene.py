"""Tests for repro.segmentation.scene."""

import numpy as np
import pytest

from repro.segmentation.scene import Scene, SceneConfig, SceneObject, StreetSceneGenerator


class TestSceneConfig:
    def test_defaults_valid(self):
        SceneConfig()

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            SceneConfig(height=16, width=16)

    def test_invalid_fraction_ranges(self):
        with pytest.raises(ValueError):
            SceneConfig(horizon_fraction_range=(0.9, 0.2))
        with pytest.raises(ValueError):
            SceneConfig(road_fraction_range=(0.0, 0.5))

    def test_invalid_ignore_margin(self):
        with pytest.raises(ValueError):
            SceneConfig(ignore_margin=-1)

    def test_scaled(self):
        config = SceneConfig(height=64, width=128)
        scaled = config.scaled(96, 192)
        assert (scaled.height, scaled.width) == (96, 192)
        assert scaled.n_cars_range == config.n_cars_range


class TestSceneObject:
    def test_moved_applies_velocity(self):
        obj = SceneObject(0, 13, 10.0, 20.0, 5.0, 8.0, velocity=(1.0, -2.0))
        moved = obj.moved(2.0)
        assert moved.center_row == 12.0
        assert moved.center_col == 16.0
        assert obj.center_row == 10.0  # original unchanged

    def test_bounding_box(self):
        obj = SceneObject(0, 13, 10.0, 20.0, 4.0, 6.0)
        top, left, bottom, right = obj.bounding_box()
        assert (bottom - top, right - left) == (4, 6)


class TestStreetSceneGenerator:
    def test_scene_shape_and_dtype(self, scene, scene_config):
        assert scene.labels.shape == (scene_config.height, scene_config.width)
        assert scene.labels.dtype == np.int64

    def test_labels_within_class_range(self, scene, label_space):
        values = np.unique(scene.labels)
        assert values.min() >= -1
        assert values.max() < label_space.n_classes

    def test_deterministic_per_index(self, scene_config):
        a = StreetSceneGenerator(config=scene_config, random_state=5).generate(3)
        b = StreetSceneGenerator(config=scene_config, random_state=5).generate(3)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_indices_differ(self, scene_generator):
        a = scene_generator.generate(0)
        b = scene_generator.generate(1)
        assert not np.array_equal(a.labels, b.labels)

    def test_independent_of_generation_order(self, scene_config):
        generator = StreetSceneGenerator(config=scene_config, random_state=9)
        direct = generator.generate(4)
        generator2 = StreetSceneGenerator(config=scene_config, random_state=9)
        generator2.generate_many(4)
        later = generator2.generate(4)
        np.testing.assert_array_equal(direct.labels, later.labels)

    def test_sky_above_road(self, scenes, label_space):
        sky = label_space.id_of("sky")
        road = label_space.id_of("road")
        for scene in scenes:
            sky_rows, _ = np.nonzero(scene.labels == sky)
            road_rows, _ = np.nonzero(scene.labels == road)
            if sky_rows.size and road_rows.size:
                assert sky_rows.mean() < road_rows.mean()

    def test_road_present_and_large(self, scenes, label_space):
        road = label_space.id_of("road")
        for scene in scenes:
            fraction = np.mean(scene.labels == road)
            assert fraction > 0.1

    def test_humans_are_rare(self, scene_generator, label_space):
        scenes = scene_generator.generate_many(8)
        human_ids = label_space.ids_in_category("human")
        total = 0
        human = 0
        for scene in scenes:
            total += scene.labels.size
            human += int(np.isin(scene.labels, human_ids).sum())
        assert human / total < 0.05  # strong class imbalance

    def test_objects_recorded(self, scene):
        assert len(scene.objects) >= 1
        for obj in scene.objects:
            assert 0 <= obj.class_id < 19

    def test_class_pixel_counts_sum(self, scene):
        counts = scene.class_pixel_counts()
        assert sum(counts.values()) == int(np.sum(scene.labels >= 0))

    def test_ignore_margin_applied(self, label_space):
        config = SceneConfig(height=48, width=96, ignore_margin=4)
        scene = StreetSceneGenerator(config=config, random_state=0).generate(0)
        assert np.all(scene.labels[-4:, :] == -1)
        assert np.all(scene.labels[:-4, :] >= 0)

    def test_render_respects_occlusion_order(self, scene_generator, scene):
        # Painting the same objects again yields the identical label map
        # (rendering is deterministic given background and objects).
        repainted = scene_generator.render(scene.background, scene.objects)
        mismatch = np.mean(repainted != scene.labels)
        assert mismatch < 1e-6

    def test_negative_index_raises(self, scene_generator):
        with pytest.raises(ValueError):
            scene_generator.generate(-1)

    def test_perspective_scale_monotone(self, scene_generator):
        horizon = 20
        low = scene_generator._perspective_scale(25, horizon)
        high = scene_generator._perspective_scale(45, horizon)
        assert high >= low
