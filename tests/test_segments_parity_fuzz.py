"""Parity-fuzz harness for the vectorized contingency-table segment matching.

Every case builds a seeded random (ground truth, prediction) label-map pair —
varying class counts, ignore regions, border-touching segments, shifted and
noisy predictions that span multiple GT components — and asserts the
vectorized matchers return **bitwise-identical** results to the retained
``_reference_*`` per-segment-loop implementations.  Floats are compared with
``==`` (no tolerance), which for non-NaN values is exactly bitwise equality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.segments import (
    _reference_false_negative_segments,
    _reference_false_positive_segments,
    _reference_segment_ious,
    _reference_segment_precision_recall,
    extract_segments,
    false_negative_segments,
    false_positive_segments,
    segment_ious,
    segment_precision_recall,
)

#: Number of generated fuzz cases (the issue asks for >= 200).
N_CASES = 220

IGNORE_ID = -1


def _random_case(seed: int):
    """One seeded random ground-truth / prediction pair plus case parameters."""
    rng = np.random.default_rng(seed)
    cell = int(rng.integers(2, 6))
    grid_h = int(rng.integers(3, 11))
    grid_w = int(rng.integers(3, 11))
    n_classes = int(rng.integers(1, 7))

    # Chunky segments via block upsampling of a coarse class grid; blocks of
    # equal class merge into larger multi-cell components and routinely touch
    # the image border.
    gt_grid = rng.integers(0, n_classes, size=(grid_h, grid_w))
    gt = np.kron(gt_grid, np.ones((cell, cell), dtype=np.int64)).astype(np.int64)
    height, width = gt.shape

    # Ignore regions: random rectangles of unannotated pixels, occasionally an
    # entirely unannotated frame (the union == 0 edge case).
    if rng.uniform() < 0.15:
        gt[:, :] = IGNORE_ID
    elif rng.uniform() < 0.6:
        for _ in range(int(rng.integers(1, 4))):
            r0 = int(rng.integers(0, height))
            c0 = int(rng.integers(0, width))
            r1 = int(rng.integers(r0, height)) + 1
            c1 = int(rng.integers(c0, width)) + 1
            gt[r0:r1, c0:c1] = IGNORE_ID

    # Prediction: ground truth with labels everywhere (networks always emit a
    # class), optionally shifted (creates partial overlaps and predictions
    # spanning several GT components), plus rectangle and salt noise.
    pred = np.where(gt == IGNORE_ID, rng.integers(0, n_classes, size=gt.shape), gt)
    if rng.uniform() < 0.5:
        shift_r = int(rng.integers(-cell, cell + 1))
        shift_c = int(rng.integers(-cell, cell + 1))
        pred = np.roll(pred, (shift_r, shift_c), axis=(0, 1))
    for _ in range(int(rng.integers(0, 4))):
        r0 = int(rng.integers(0, height))
        c0 = int(rng.integers(0, width))
        r1 = min(height, r0 + int(rng.integers(1, 2 * cell + 1)))
        c1 = min(width, c0 + int(rng.integers(1, 2 * cell + 1)))
        pred[r0:r1, c0:c1] = int(rng.integers(0, n_classes))
    if rng.uniform() < 0.5:
        n_noise = int(rng.integers(1, 12))
        noise_rows = rng.integers(0, height, size=n_noise)
        noise_cols = rng.integers(0, width, size=n_noise)
        pred[noise_rows, noise_cols] = rng.integers(0, n_classes, size=n_noise)

    connectivity = 4 if rng.uniform() < 0.3 else 8
    return gt, pred.astype(np.int64), n_classes, connectivity, rng


def _decompose(gt: np.ndarray, pred: np.ndarray, connectivity: int):
    prediction = extract_segments(pred, connectivity=connectivity)
    ground_truth = extract_segments(gt, connectivity=connectivity, ignore_id=IGNORE_ID)
    return prediction, ground_truth


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", range(N_CASES))
def test_segment_iou_parity(seed):
    gt, pred, _n_classes, connectivity, _rng = _random_case(seed)
    prediction, ground_truth = _decompose(gt, pred, connectivity)
    fast = segment_ious(prediction, ground_truth, ignore_id=IGNORE_ID)
    reference = _reference_segment_ious(prediction, ground_truth, ignore_id=IGNORE_ID)
    assert list(fast) == list(reference)
    for segment_id in reference:
        assert fast[segment_id] == reference[segment_id], (
            f"seed={seed} segment={segment_id}: "
            f"{fast[segment_id]!r} != {reference[segment_id]!r}"
        )


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", range(N_CASES))
def test_false_positive_negative_parity(seed):
    gt, pred, _n_classes, connectivity, _rng = _random_case(seed)
    prediction, ground_truth = _decompose(gt, pred, connectivity)
    assert false_positive_segments(
        prediction, ground_truth, ignore_id=IGNORE_ID
    ) == _reference_false_positive_segments(prediction, ground_truth, ignore_id=IGNORE_ID)
    assert false_negative_segments(
        prediction, ground_truth, ignore_id=IGNORE_ID
    ) == _reference_false_negative_segments(prediction, ground_truth, ignore_id=IGNORE_ID)


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", range(N_CASES))
def test_precision_recall_parity(seed):
    gt, pred, n_classes, connectivity, rng = _random_case(seed)
    prediction, ground_truth = _decompose(gt, pred, connectivity)
    n_chosen = int(rng.integers(1, n_classes + 1))
    class_ids = [int(c) for c in rng.choice(n_classes, size=n_chosen, replace=False)]
    fast_p, fast_r = segment_precision_recall(
        prediction, ground_truth, class_ids=class_ids, ignore_id=IGNORE_ID
    )
    ref_p, ref_r = _reference_segment_precision_recall(
        prediction, ground_truth, class_ids=class_ids, ignore_id=IGNORE_ID
    )
    assert list(fast_p) == list(ref_p)
    assert list(fast_r) == list(ref_r)
    for segment_id in ref_p:
        assert fast_p[segment_id] == ref_p[segment_id], f"seed={seed} precision {segment_id}"
    for segment_id in ref_r:
        assert fast_r[segment_id] == ref_r[segment_id], f"seed={seed} recall {segment_id}"


@pytest.mark.fuzz
def test_case_generator_covers_edge_shapes():
    """The fuzz corpus actually exercises the advertised edge cases."""
    saw_all_ignore = saw_partial_ignore = saw_multi_component_union = False
    saw_border_segment = False
    for seed in range(N_CASES):
        gt, pred, _n_classes, connectivity, _rng = _random_case(seed)
        if np.all(gt == IGNORE_ID):
            saw_all_ignore = True
        elif np.any(gt == IGNORE_ID):
            saw_partial_ignore = True
        prediction, ground_truth = _decompose(gt, pred, connectivity)
        border = np.concatenate([
            prediction.components[0, :], prediction.components[-1, :],
            prediction.components[:, 0], prediction.components[:, -1],
        ])
        if np.any(border > 0):
            saw_border_segment = True
        # A predicted segment intersecting >= 2 same-class GT components is
        # exactly the multi-component union K' of eq. (2).
        gt_class = ground_truth.class_lookup()
        for segment_id, info in prediction.segments.items():
            mask = prediction.components == segment_id
            gt_ids = np.unique(ground_truth.components[mask])
            gt_ids = gt_ids[(gt_ids > 0) & (gt_class[gt_ids] == info.class_id)]
            if gt_ids.size >= 2:
                saw_multi_component_union = True
                break
        if saw_all_ignore and saw_partial_ignore and saw_multi_component_union and saw_border_segment:
            return
    assert saw_all_ignore, "no all-ignore ground truth generated"
    assert saw_partial_ignore, "no partial ignore regions generated"
    assert saw_multi_component_union, "no multi-component GT union generated"
    assert saw_border_segment, "no border-touching segment generated"
