"""Tests for repro.evaluation.classification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.classification import (
    accuracy,
    auroc,
    confusion_matrix,
    optimal_accuracy_threshold,
    roc_curve,
)


class TestAccuracy:
    def test_perfect(self):
        y = np.array([0, 1, 1, 0])
        assert accuracy(y, y) == 1.0

    def test_half(self):
        assert accuracy(np.array([0, 0, 1, 1]), np.array([0, 1, 1, 0])) == 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0, 1]), np.array([0]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestConfusionMatrix:
    def test_entries(self):
        y_true = np.array([0, 0, 1, 1, 1])
        y_pred = np.array([0, 1, 1, 1, 0])
        matrix = confusion_matrix(y_true, y_pred)
        assert matrix[0, 0] == 1  # TN
        assert matrix[0, 1] == 1  # FP
        assert matrix[1, 0] == 1  # FN
        assert matrix[1, 1] == 2  # TP
        assert matrix.sum() == 5


class TestRocCurve:
    def test_starts_at_origin_ends_at_one_one(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.4, 0.35, 0.8])
        fpr, tpr, thresholds = roc_curve(y, scores)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert thresholds[0] == np.inf

    def test_monotone(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=50)
        y[0], y[1] = 0, 1
        scores = rng.uniform(size=50)
        fpr, tpr, _ = roc_curve(y, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)


class TestAuroc:
    def test_perfect_separation(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auroc(y, scores) == 1.0

    def test_inverted_scores(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auroc(y, scores) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, size=4000)
        y[:2] = [0, 1]
        scores = rng.uniform(size=4000)
        assert abs(auroc(y, scores) - 0.5) < 0.05

    def test_ties_counted_half(self):
        y = np.array([0, 1])
        scores = np.array([0.5, 0.5])
        assert auroc(y, scores) == 0.5

    def test_matches_trapezoidal_roc_area(self):
        rng = np.random.default_rng(2)
        y = rng.integers(0, 2, size=200)
        y[:2] = [0, 1]
        scores = rng.normal(size=200) + y  # informative but noisy
        fpr, tpr, _ = roc_curve(y, scores)
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        area = float(trapezoid(tpr, fpr))
        assert abs(area - auroc(y, scores)) < 1e-9

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            auroc(np.ones(5, dtype=int), np.random.uniform(size=5))

    def test_invariant_under_monotone_transform(self):
        rng = np.random.default_rng(3)
        y = rng.integers(0, 2, size=100)
        y[:2] = [0, 1]
        scores = rng.normal(size=100) + 2 * y
        a = auroc(y, scores)
        b = auroc(y, 1.0 / (1.0 + np.exp(-scores)))
        assert abs(a - b) < 1e-12


class TestOptimalThreshold:
    def test_perfectly_separable(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        threshold, best = optimal_accuracy_threshold(y, scores)
        assert best == 1.0
        assert 0.2 < threshold <= 0.8

    def test_uninformative_scores_majority_class(self):
        y = np.array([0] * 8 + [1] * 2)
        scores = np.full(10, 0.5)
        _, best = optimal_accuracy_threshold(y, scores)
        assert best == 0.8


@given(
    n=st.integers(min_value=4, max_value=120),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=30, deadline=None)
def test_property_auroc_symmetry(n, seed):
    """AUROC(y, s) + AUROC(y, -s) == 1 (up to tie handling)."""
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, size=n)
    y[0], y[1] = 0, 1
    scores = rng.normal(size=n)
    assert abs(auroc(y, scores) + auroc(y, -scores) - 1.0) < 1e-9
