"""Tests for repro.evaluation.distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.distributions import (
    EmpiricalCDF,
    dominance_gap,
    empirical_cdf,
    first_order_dominates,
)


class TestEmpiricalCDF:
    def test_values_at_sample_points(self):
        cdf = empirical_cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf(0.5) == 0.0
        assert cdf(1.0) == 0.25
        assert cdf(2.5) == 0.5
        assert cdf(4.0) == 1.0
        assert cdf(100.0) == 1.0

    def test_vectorised_evaluation(self):
        cdf = empirical_cdf([0.0, 1.0])
        out = cdf(np.array([-1.0, 0.0, 0.5, 1.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 0.5, 1.0])

    def test_monotone_non_decreasing(self):
        rng = np.random.default_rng(0)
        cdf = empirical_cdf(rng.normal(size=100))
        grid, values = cdf.evaluation_grid(51)
        assert np.all(np.diff(values) >= 0)
        assert len(grid) == 51

    def test_quantile(self):
        cdf = empirical_cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.quantile(0.5) == 2.0
        assert cdf.quantile(1.0) == 4.0
        assert cdf.quantile(0.0) == 1.0

    def test_quantile_out_of_range(self):
        cdf = empirical_cdf([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_n_samples(self):
        assert empirical_cdf([1, 2, 3]).n_samples == 3


class TestDominance:
    def test_shifted_samples_dominate(self):
        rng = np.random.default_rng(1)
        low = rng.uniform(0.0, 0.5, size=300)
        high = rng.uniform(0.4, 1.0, size=300)
        cdf_low = empirical_cdf(low)
        cdf_high = empirical_cdf(high)
        # high-valued sample dominates: its CDF lies below.
        assert first_order_dominates(cdf_smaller=cdf_low, cdf_larger=cdf_high)
        assert not first_order_dominates(cdf_smaller=cdf_high, cdf_larger=cdf_low)

    def test_identical_samples_dominate_both_ways(self):
        sample = np.linspace(0, 1, 50)
        cdf_a = empirical_cdf(sample)
        cdf_b = empirical_cdf(sample)
        assert first_order_dominates(cdf_a, cdf_b)
        assert first_order_dominates(cdf_b, cdf_a)

    def test_tolerance_absorbs_small_violations(self):
        a = empirical_cdf([0.0, 0.5, 1.0])
        b = empirical_cdf([0.05, 0.45, 1.0])
        assert first_order_dominates(a, b, tolerance=0.5)

    def test_invalid_arguments(self):
        cdf = empirical_cdf([0.0, 1.0])
        with pytest.raises(ValueError):
            first_order_dominates(cdf, cdf, grid_points=1)
        with pytest.raises(ValueError):
            first_order_dominates(cdf, cdf, tolerance=-0.1)

    def test_dominance_gap_sign(self):
        low = empirical_cdf(np.linspace(0.0, 0.4, 100))
        high = empirical_cdf(np.linspace(0.6, 1.0, 100))
        assert dominance_gap(low, high) > 0
        assert dominance_gap(high, low) < 0


@given(
    shift=st.floats(min_value=0.05, max_value=2.0),
    n=st.integers(min_value=10, max_value=200),
    seed=st.integers(0, 10**6),
)
@settings(max_examples=25, deadline=None)
def test_property_shifted_distribution_always_dominates(shift, n, seed):
    rng = np.random.default_rng(seed)
    base = rng.uniform(size=n)
    cdf_base = empirical_cdf(base)
    cdf_shifted = empirical_cdf(base + shift)
    assert first_order_dominates(cdf_smaller=cdf_base, cdf_larger=cdf_shifted, tolerance=0.0)
