"""Tests for repro.decision.evaluation and repro.decision.pipeline."""

import numpy as np
import pytest

from repro.decision.evaluation import (
    ClassPrecisionRecall,
    collect_precision_recall,
    non_detection_rate,
    precision_dominance,
    recall_dominance,
)
from repro.decision.pipeline import DecisionRuleComparison


class TestClassPrecisionRecall:
    def test_extend_and_counts(self):
        stats = ClassPrecisionRecall("bayes")
        stats.extend([0.5, 1.0], [0.0, 0.9, 1.0])
        assert stats.n_predicted_segments == 2
        assert stats.n_ground_truth_segments == 3
        assert abs(stats.mean_precision() - 0.75) < 1e-12
        assert abs(stats.non_detection_rate() - 1 / 3) < 1e-12

    def test_cdfs(self):
        stats = ClassPrecisionRecall("ml")
        stats.extend([0.2, 0.4, 0.6], [0.1, 0.9])
        assert stats.precision_cdf()(0.5) == 2 / 3
        assert stats.recall_cdf()(0.5) == 0.5

    def test_empty_raises(self):
        stats = ClassPrecisionRecall("bayes")
        with pytest.raises(ValueError):
            stats.mean_precision()
        with pytest.raises(ValueError):
            stats.non_detection_rate()

    def test_non_detection_rate_direct(self):
        assert non_detection_rate([0.0, 0.0, 0.5, 1.0]) == 0.5
        with pytest.raises(ValueError):
            non_detection_rate([])


class TestCollectPrecisionRecall:
    def test_perfect_prediction(self, scene, label_space):
        precision, recall = collect_precision_recall(
            scene.labels, scene.labels, category="human", label_space=label_space
        )
        assert all(v == 1.0 for v in precision)
        assert all(v == 1.0 for v in recall)

    def test_missing_humans_yield_zero_recall(self, scene, label_space):
        human_ids = label_space.ids_in_category("human")
        erased = scene.labels.copy()
        erased[np.isin(erased, human_ids)] = label_space.id_of("road")
        precision, recall = collect_precision_recall(
            erased, scene.labels, category="human", label_space=label_space
        )
        assert precision == []
        if recall:
            assert all(v == 0.0 for v in recall)

    def test_unknown_category_raises(self, scene, label_space):
        with pytest.raises(KeyError):
            collect_precision_recall(scene.labels, scene.labels, category="robots")


class TestDominanceHelpers:
    def test_dominance_directions(self):
        bayes = ClassPrecisionRecall("bayes")
        ml = ClassPrecisionRecall("ml")
        rng = np.random.default_rng(0)
        bayes.extend(rng.uniform(0.5, 1.0, 200), rng.uniform(0.0, 0.7, 200))
        ml.extend(rng.uniform(0.0, 0.5, 200), rng.uniform(0.3, 1.0, 200))
        assert precision_dominance(bayes, ml)
        assert recall_dominance(bayes, ml)


class TestDecisionRuleComparison:
    @pytest.fixture(scope="class")
    def comparison_result(self, mobilenet_network, cityscapes_like, label_space):
        comparison = DecisionRuleComparison(mobilenet_network, label_space=label_space)
        comparison.fit_priors(cityscapes_like.train_samples())
        result = comparison.compare(cityscapes_like.val_samples(), rules=("bayes", "ml"))
        return comparison, result

    def test_priors_required_before_ml(self, mobilenet_network, probability_field):
        comparison = DecisionRuleComparison(mobilenet_network)
        with pytest.raises(RuntimeError):
            comparison.decode(probability_field, "ml")

    def test_result_structure(self, comparison_result):
        _, result = comparison_result
        assert set(result.per_rule) == {"bayes", "ml"}
        assert set(result.pixel_accuracy) == {"bayes", "ml"}
        rates = result.non_detection_rates()
        assert set(rates) == {"bayes", "ml"}
        for stats in result.per_rule.values():
            assert stats.n_ground_truth_segments > 0

    def test_ml_reduces_non_detection(self, comparison_result):
        _, result = comparison_result
        rates = result.non_detection_rates()
        assert rates["ml"] <= rates["bayes"]

    def test_bayes_precision_higher(self, comparison_result):
        _, result = comparison_result
        assert (
            result.per_rule["bayes"].mean_precision()
            >= result.per_rule["ml"].mean_precision()
        )

    def test_bayes_pixel_accuracy_higher(self, comparison_result):
        _, result = comparison_result
        assert result.pixel_accuracy["bayes"] >= result.pixel_accuracy["ml"]

    def test_category_prior_heatmap_shape(self, comparison_result, scene_config):
        comparison, _ = comparison_result
        heatmap = comparison.category_prior_heatmap()
        assert heatmap.shape == (scene_config.height, scene_config.width)
        assert heatmap.min() >= 0.0

    def test_summary_rows(self, comparison_result):
        _, result = comparison_result
        rows = result.summary_rows()
        assert any("bayes" in row for row in rows)
        assert any("ml" in row for row in rows)

    def test_compare_empty_raises(self, mobilenet_network):
        comparison = DecisionRuleComparison(mobilenet_network)
        with pytest.raises(ValueError):
            comparison.compare([])
