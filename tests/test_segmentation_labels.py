"""Tests for repro.segmentation.labels."""

import pytest

from repro.segmentation.labels import HUMAN_CATEGORY, LabelSpace, LabelSpec, cityscapes_label_space


class TestCityscapesLabelSpace:
    def test_nineteen_classes(self, label_space):
        assert label_space.n_classes == 19
        assert len(label_space) == 19

    def test_train_ids_consecutive(self, label_space):
        assert [spec.train_id for spec in label_space] == list(range(19))

    def test_lookup_by_name(self, label_space):
        assert label_space.by_name("person").train_id == 11
        assert label_space.id_of("road") == 0

    def test_unknown_name_raises(self, label_space):
        with pytest.raises(KeyError):
            label_space.by_name("unicorn")

    def test_human_category(self, label_space):
        ids = label_space.ids_in_category(HUMAN_CATEGORY)
        names = {label_space[i].name for i in ids}
        assert names == {"person", "rider"}

    def test_unknown_category_raises(self, label_space):
        with pytest.raises(KeyError):
            label_space.ids_in_category("animals")

    def test_categories_cover_all_classes(self, label_space):
        categories = label_space.categories()
        covered = set()
        for category in categories:
            covered.update(label_space.ids_in_category(category))
        assert covered == set(range(19))

    def test_things_and_stuff_partition(self, label_space):
        things = set(label_space.thing_ids())
        stuff = set(label_space.stuff_ids())
        assert things.isdisjoint(stuff)
        assert things | stuff == set(range(19))
        assert label_space.id_of("person") in things
        assert label_space.id_of("road") in stuff

    def test_color_map_unique(self, label_space):
        colors = list(label_space.color_map().values())
        assert len(set(colors)) == len(colors)

    def test_confusable_classes_exclude_self(self, label_space):
        for spec in label_space:
            confusable = label_space.confusable_classes(spec.train_id)
            assert spec.train_id not in confusable
            assert len(confusable) >= 1

    def test_person_rider_mutually_confusable(self, label_space):
        person = label_space.id_of("person")
        rider = label_space.id_of("rider")
        assert rider in label_space.confusable_classes(person)
        assert person in label_space.confusable_classes(rider)

    def test_names_order(self, label_space):
        assert label_space.names()[0] == "road"
        assert label_space.names()[-1] == "bicycle"

    def test_category_of(self, label_space):
        assert label_space.category_of(label_space.id_of("sky")) == "sky"


class TestLabelSpaceValidation:
    def test_non_consecutive_ids_rejected(self):
        specs = (
            LabelSpec(0, "a", "x", (0, 0, 0), False, 0.1),
            LabelSpec(2, "b", "x", (1, 1, 1), False, 0.1),
        )
        with pytest.raises(ValueError):
            LabelSpace(specs=specs)

    def test_duplicate_names_rejected(self):
        specs = (
            LabelSpec(0, "a", "x", (0, 0, 0), False, 0.1),
            LabelSpec(1, "a", "x", (1, 1, 1), False, 0.1),
        )
        with pytest.raises(ValueError):
            LabelSpace(specs=specs)

    def test_getitem(self, label_space):
        assert label_space[11].name == "person"
