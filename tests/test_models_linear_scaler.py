"""Tests for repro.models.scaler and repro.models.linear."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.base import NotFittedError
from repro.models.linear import LinearRegression
from repro.models.scaler import StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        x = rng.normal(5.0, 3.0, size=(200, 4))
        z = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_not_divided_by_zero(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        z = StandardScaler().fit_transform(x)
        assert np.all(np.isfinite(z))
        np.testing.assert_allclose(z[:, 0], 0.0)

    def test_inverse_transform_roundtrip(self, rng):
        x = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(x)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(x)), x)

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((3, 2)))

    def test_feature_count_mismatch(self, rng):
        scaler = StandardScaler().fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError):
            scaler.transform(rng.normal(size=(5, 4)))

    def test_without_mean_or_std(self, rng):
        x = rng.normal(2.0, 4.0, size=(100, 2))
        z = StandardScaler(with_mean=False, with_std=False).fit_transform(x)
        np.testing.assert_allclose(z, x)


class TestLinearRegression:
    def test_recovers_exact_linear_relation(self, rng):
        x = rng.normal(size=(100, 3))
        coef = np.array([2.0, -1.0, 0.5])
        y = x @ coef + 3.0
        model = LinearRegression().fit(x, y)
        np.testing.assert_allclose(model.coef_, coef, atol=1e-8)
        assert abs(model.intercept_ - 3.0) < 1e-8
        np.testing.assert_allclose(model.predict(x), y, atol=1e-8)

    def test_r2_score_perfect_fit(self, rng):
        x = rng.normal(size=(50, 2))
        y = x[:, 0] * 2
        model = LinearRegression().fit(x, y)
        assert model.score(x, y) > 0.999999

    def test_no_intercept(self, rng):
        x = rng.normal(size=(80, 2))
        y = x @ np.array([1.0, 2.0])
        model = LinearRegression(fit_intercept=False).fit(x, y)
        assert model.intercept_ == 0.0
        np.testing.assert_allclose(model.coef_, [1.0, 2.0], atol=1e-8)

    def test_ridge_shrinks_coefficients(self, rng):
        x = rng.normal(size=(60, 4))
        y = x @ np.array([5.0, -3.0, 2.0, 1.0]) + rng.normal(0, 0.1, 60)
        ols = LinearRegression(alpha=0.0).fit(x, y)
        ridge = LinearRegression(alpha=100.0).fit(x, y)
        assert np.linalg.norm(ridge.coef_) < np.linalg.norm(ols.coef_)

    def test_clipping(self, rng):
        x = rng.normal(size=(40, 1))
        y = 10 * x[:, 0]
        model = LinearRegression(clip_range=(0.0, 1.0)).fit(x, y)
        pred = model.predict(x)
        assert pred.min() >= 0.0 and pred.max() <= 1.0

    def test_negative_alpha_raises(self):
        with pytest.raises(ValueError):
            LinearRegression(alpha=-1.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict(np.zeros((2, 2)))

    def test_feature_mismatch_raises(self, rng):
        model = LinearRegression().fit(rng.normal(size=(10, 2)), rng.normal(size=10))
        with pytest.raises(ValueError):
            model.predict(rng.normal(size=(5, 3)))

    def test_collinear_features_handled(self, rng):
        base = rng.normal(size=(50, 1))
        x = np.hstack([base, base])  # perfectly collinear
        y = base[:, 0] * 3
        model = LinearRegression().fit(x, y)
        assert np.all(np.isfinite(model.predict(x)))

    @given(
        intercept=st.floats(-5, 5),
        slope=st.floats(-5, 5),
        n=st.integers(10, 80),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_one_dimensional_exact_fit(self, intercept, slope, n):
        x = np.linspace(-1, 1, n).reshape(-1, 1)
        y = slope * x[:, 0] + intercept
        model = LinearRegression().fit(x, y)
        np.testing.assert_allclose(model.predict(x), y, atol=1e-6)
