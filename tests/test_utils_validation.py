"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_binary_labels,
    check_class_count,
    check_feature_matrix,
    check_fractions,
    check_in_range,
    check_label_map,
    check_probability_field,
    check_same_shape,
    check_vector,
)


class TestCheckLabelMap:
    def test_accepts_integer_map(self):
        labels = np.zeros((4, 5), dtype=np.int32)
        out = check_label_map(labels)
        assert out.dtype == np.int64
        assert out.shape == (4, 5)

    def test_accepts_ignore_id(self):
        labels = np.full((3, 3), -1)
        assert check_label_map(labels).min() == -1

    def test_rejects_below_ignore(self):
        with pytest.raises(ValueError):
            check_label_map(np.full((3, 3), -2))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            check_label_map(np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            check_label_map(np.zeros((2, 2, 2), dtype=int))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_label_map(np.zeros((0, 3), dtype=int))

    def test_integral_floats_converted(self):
        labels = np.array([[0.0, 1.0], [2.0, 3.0]])
        assert check_label_map(labels).dtype == np.int64

    def test_non_integral_floats_rejected(self):
        with pytest.raises(TypeError):
            check_label_map(np.array([[0.5, 1.0], [2.0, 3.0]]))


class TestCheckProbabilityField:
    def test_valid_field_passes(self):
        probs = np.full((2, 3, 4), 0.25)
        out = check_probability_field(probs)
        assert out.shape == (2, 3, 4)

    def test_rejects_unnormalised(self):
        probs = np.full((2, 2, 3), 0.5)
        with pytest.raises(ValueError):
            check_probability_field(probs)

    def test_rejects_negative(self):
        probs = np.full((2, 2, 2), 0.5)
        probs[0, 0, 0] = -0.5
        probs[0, 0, 1] = 1.5
        with pytest.raises(ValueError):
            check_probability_field(probs)

    def test_rejects_single_class(self):
        with pytest.raises(ValueError):
            check_probability_field(np.ones((2, 2, 1)))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            check_probability_field(np.ones((2, 2)))


class TestCheckSameShape:
    def test_matching_passes(self):
        check_same_shape(np.zeros((3, 4)), np.zeros((3, 4, 7)))

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            check_same_shape(np.zeros((3, 4)), np.zeros((4, 3)))


class TestCheckInRange:
    def test_inside_passes(self):
        assert check_in_range(0.5, 0.0, 1.0) == 0.5

    def test_boundaries_inclusive_by_default(self):
        assert check_in_range(0.0, 0.0, 1.0) == 0.0
        assert check_in_range(1.0, 0.0, 1.0) == 1.0

    def test_exclusive_boundaries(self):
        with pytest.raises(ValueError):
            check_in_range(0.0, 0.0, 1.0, inclusive=(False, True))

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_in_range(2.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            check_in_range(-1.0, 0.0, 1.0)


class TestCheckFeatureMatrix:
    def test_promotes_1d(self):
        assert check_feature_matrix(np.arange(5.0)).shape == (5, 1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_feature_matrix(np.zeros((0, 3)))

    def test_allow_empty(self):
        assert check_feature_matrix(np.zeros((0, 3)), allow_empty=True).shape == (0, 3)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_feature_matrix(np.array([[1.0, np.nan]]))

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_feature_matrix(np.array([[1.0, np.inf]]))


class TestCheckVector:
    def test_flattens(self):
        assert check_vector(np.zeros((3, 1))).shape == (3,)

    def test_length_check(self):
        with pytest.raises(ValueError):
            check_vector(np.zeros(3), n=4)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_vector(np.array([1.0, np.nan]))


class TestCheckBinaryLabels:
    def test_accepts_binary(self):
        out = check_binary_labels(np.array([0, 1, 1, 0]))
        assert out.dtype == np.int64

    def test_accepts_single_class(self):
        assert check_binary_labels(np.array([1, 1])).tolist() == [1, 1]

    def test_rejects_other_values(self):
        with pytest.raises(ValueError):
            check_binary_labels(np.array([0, 2]))


class TestCheckClassCount:
    def test_valid(self):
        assert check_class_count(19) == 19

    def test_too_small(self):
        with pytest.raises(ValueError):
            check_class_count(1)


class TestCheckFractions:
    def test_valid(self):
        assert check_fractions([0.8, 0.2]) == (0.8, 0.2)

    def test_not_summing_to_one(self):
        with pytest.raises(ValueError):
            check_fractions([0.5, 0.6])

    def test_negative(self):
        with pytest.raises(ValueError):
            check_fractions([1.5, -0.5])

    def test_empty(self):
        with pytest.raises(ValueError):
            check_fractions([])
