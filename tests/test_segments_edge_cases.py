"""Edge-case tests for segment matching and metric-extraction semantics.

Covers the documented corner behaviours: `_interior_mask` border semantics,
`segment_ious` under all-ignore ground truth (the union == 0 guard), and
`segment_precision_recall` when every pixel of a predicted segment is
unannotated (the segment is silently skipped).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import SegmentMetricsExtractor
from repro.core.segments import (
    Segmentation,
    _reference_segment_ious,
    _reference_segment_precision_recall,
    extract_segments,
    false_negative_segments,
    false_positive_segments,
    segment_ious,
    segment_precision_recall,
)


class TestInteriorMaskBorderSemantics:
    def _interior(self, components):
        extractor = SegmentMetricsExtractor()
        return extractor._interior_mask(np.asarray(components, dtype=np.int64))

    def test_image_border_pixels_are_always_boundary(self):
        components = np.ones((5, 7), dtype=np.int64)
        interior = self._interior(components)
        assert not interior[0, :].any()
        assert not interior[-1, :].any()
        assert not interior[:, 0].any()
        assert not interior[:, -1].any()
        # Everything strictly inside a uniform component is interior.
        assert interior[1:-1, 1:-1].all()

    def test_interior_uses_4_neighbourhood(self):
        # A pixel whose only differing neighbour is diagonal stays interior:
        # the interior definition is 4-neighbour based even for connectivity-8
        # decompositions.
        components = np.ones((5, 5), dtype=np.int64)
        components[0, 0] = 2
        interior = self._interior(components)
        assert interior[1, 1]
        # A differing 4-neighbour makes the pixel boundary.
        components = np.ones((5, 5), dtype=np.int64)
        components[1, 2] = 2
        interior = self._interior(components)
        assert not interior[2, 2]
        assert not interior[1, 1]

    def test_single_row_image_is_all_boundary(self):
        components = np.ones((1, 6), dtype=np.int64)
        assert not self._interior(components).any()


class TestAllIgnoreGroundTruth:
    def _case(self):
        pred = np.zeros((6, 9), dtype=np.int64)
        pred[1:4, 1:5] = 1
        pred[4:6, 6:9] = 2
        gt = np.full((6, 9), -1, dtype=np.int64)
        prediction = extract_segments(pred)
        ground_truth = extract_segments(gt, ignore_id=-1)
        return prediction, ground_truth

    def test_all_ious_zero_without_error(self):
        prediction, ground_truth = self._case()
        ious = segment_ious(prediction, ground_truth)
        assert set(ious) == set(prediction.segment_ids())
        assert all(value == 0.0 for value in ious.values())
        assert ious == _reference_segment_ious(prediction, ground_truth)

    def test_every_predicted_segment_is_false_positive(self):
        prediction, ground_truth = self._case()
        assert false_positive_segments(prediction, ground_truth) == prediction.segment_ids()
        assert false_negative_segments(prediction, ground_truth) == []

    def test_union_zero_guard_with_handcrafted_components(self):
        # A ground-truth Segmentation whose component overlaps the prediction
        # but lies entirely on unannotated pixels: the raw component images
        # intersect, yet the valid union is empty — the guard must yield 0.0,
        # not a division error.
        shape = (4, 6)
        pred = np.zeros(shape, dtype=np.int64)
        pred[1:3, 1:4] = 1
        gt_source = np.full(shape, -1, dtype=np.int64)
        gt_source[1:3, 1:4] = 1
        ground_truth = extract_segments(gt_source, ignore_id=-1)
        # Re-declare every pixel unannotated while keeping the components.
        ground_truth = Segmentation(
            labels=np.full(shape, -1, dtype=np.int64),
            components=ground_truth.components,
            segments=ground_truth.segments,
            connectivity=ground_truth.connectivity,
        )
        prediction = extract_segments(pred)
        segment_id = prediction.segments_of_class(1)[0]
        ious = segment_ious(prediction, ground_truth)
        assert ious[segment_id] == 0.0
        assert ious == _reference_segment_ious(prediction, ground_truth)


class TestPrecisionRecallIgnoredSegments:
    def test_fully_ignored_predicted_segment_is_silently_skipped(self):
        # Predicted segment of class 1 sits entirely on unannotated ground
        # truth: it has no defined precision and must be absent from the
        # precision dict (documented behaviour), while other segments of the
        # class are unaffected.
        pred = np.zeros((6, 10), dtype=np.int64)
        pred[1:3, 1:3] = 1     # fully ignored below
        pred[4:6, 6:9] = 1     # annotated
        gt = np.zeros((6, 10), dtype=np.int64)
        gt[1:3, 1:3] = -1
        gt[4:6, 6:9] = 1
        prediction = extract_segments(pred)
        ground_truth = extract_segments(gt, ignore_id=-1)
        ignored_ids = [
            sid for sid in prediction.segments_of_class(1)
            if np.all(gt[prediction.mask(sid)] == -1)
        ]
        assert len(ignored_ids) == 1
        precision, recall = segment_precision_recall(
            prediction, ground_truth, class_ids=[1]
        )
        assert ignored_ids[0] not in precision
        annotated = [sid for sid in prediction.segments_of_class(1) if sid not in ignored_ids]
        assert set(precision) == set(annotated)
        assert precision[annotated[0]] == 1.0
        reference = _reference_segment_precision_recall(
            prediction, ground_truth, class_ids=[1]
        )
        assert (precision, recall) == reference

    def test_partially_ignored_segment_uses_annotated_pixels_only(self):
        pred = np.zeros((4, 6), dtype=np.int64)
        pred[1:3, 1:5] = 1     # 8 pixels
        gt = np.zeros((4, 6), dtype=np.int64)
        gt[1:3, 1:3] = 1       # 4 pixels correct
        gt[1:3, 3:5] = -1      # 4 pixels unannotated
        prediction = extract_segments(pred)
        ground_truth = extract_segments(gt, ignore_id=-1)
        precision, _recall = segment_precision_recall(
            prediction, ground_truth, class_ids=[1]
        )
        segment_id = prediction.segments_of_class(1)[0]
        # 4 annotated pixels, all of class 1 -> precision 1.0 over denom 4.
        assert precision[segment_id] == 1.0

    def test_recall_counts_all_ground_truth_pixels(self):
        # Recall denominators are full GT segment sizes (GT segments never
        # contain unannotated pixels by construction).
        pred = np.zeros((4, 6), dtype=np.int64)
        pred[1:3, 1:3] = 1
        gt = np.zeros((4, 6), dtype=np.int64)
        gt[1:3, 1:5] = 1
        prediction = extract_segments(pred)
        ground_truth = extract_segments(gt, ignore_id=-1)
        _precision, recall = segment_precision_recall(
            prediction, ground_truth, class_ids=[1]
        )
        gt_segment = ground_truth.segments_of_class(1)[0]
        assert recall[gt_segment] == 4 / 8


class TestSelectedSegmentIds:
    def test_unknown_segment_id_raises_keyerror(self):
        labels = np.zeros((4, 4), dtype=np.int64)
        labels[1:3, 1:3] = 1
        segmentation = extract_segments(labels)
        with pytest.raises(KeyError):
            segment_ious(segmentation, segmentation, segment_ids=[999])

    def test_subset_matches_full_result(self):
        labels = np.zeros((5, 8), dtype=np.int64)
        labels[1:3, 1:4] = 1
        labels[3:5, 5:8] = 2
        segmentation = extract_segments(labels)
        full = segment_ious(segmentation, segmentation)
        chosen = segmentation.segment_ids()[:2]
        subset = segment_ious(segmentation, segmentation, segment_ids=chosen)
        assert subset == {sid: full[sid] for sid in chosen}
