"""End-to-end tests for the online scoring service (repro.serve).

The hard gate: server-side scores are **bitwise identical** to the batch
``Runner.score`` reference on the committed disk fixture — for single-frame
npy requests, npz batches, JSON payloads, and under concurrent clients.
Error paths must return structured JSON (never a stack trace), and a
saturated queue must answer 503 immediately (backpressure).
"""

import json
import socket
import threading
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.api.config import ExperimentConfig
from repro.api.fitted import FittedModel
from repro.api.runner import Runner
from repro.serve import (
    ScoringServer,
    ScoringService,
    npy_bytes,
    score_batch,
    score_frame,
    wait_until_ready,
)
from repro.store import ResultStore

FIXTURE_ROOT = Path(__file__).parent / "fixtures" / "disk"


def _serve_config() -> dict:
    return {
        "kind": "metaseg",
        "name": "serve-fixture",
        "seed": 7,
        "data": {"dataset": "cityscapes_disk", "root": str(FIXTURE_ROOT)},
        "network": {
            "profile": "softmax_dump",
            "dump_root": str(FIXTURE_ROOT / "softmax"),
            "mmap": True,
        },
        "meta_models": {"classifiers": ["logistic"], "regressors": ["linear"]},
        "evaluation": {"n_runs": 2, "train_fraction": 0.8},
    }


def _post(url: str, body: bytes, content_type: str, headers: dict = None):
    """POST raw bytes; returns (status, parsed JSON body) without raising."""
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": content_type, **(headers or {})}
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


@pytest.fixture(scope="module")
def fitted_model():
    return Runner().fit(_serve_config())


@pytest.fixture(scope="module")
def batch_reference(fitted_model):
    return Runner().score(_serve_config(), model=fitted_model)


@pytest.fixture(scope="module")
def val_frames():
    """The fixture's validation softmax fields as (image_id, probs) pairs."""
    runner = Runner()
    config = ExperimentConfig.from_dict(_serve_config())
    config.validate()
    resolved = runner.resolve(config)
    frames = []
    for index, sample in enumerate(resolved.dataset.val_samples()):
        probs = resolved.network.predict_probabilities(sample.labels, index=index)
        frames.append((sample.image_id, np.array(probs)))
    return frames


@pytest.fixture(scope="module")
def server(fitted_model):
    server = ScoringServer(
        ScoringService(fitted_model), port=0, workers=3, queue_depth=16
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    wait_until_ready(server.url)
    yield server
    server.shutdown()
    server.close()
    thread.join(timeout=5)


def _canon(obj) -> str:
    return json.dumps(obj, sort_keys=True)


class TestModelPersistence:
    def test_fit_persists_and_reloads_bitwise(self, tmp_path, val_frames):
        store = ResultStore(tmp_path)
        first = Runner(store=store).fit(_serve_config())
        assert first.cache == {"hit": False, "key": first.cache["key"]}
        second = Runner(store=store).fit(_serve_config())
        assert second.cache["hit"] is True
        assert second.cache["key"] == first.cache["key"]
        assert _canon(first.to_state()) == _canon(second.to_state())
        image_id, probs = val_frames[0]
        assert _canon(first.score_frame(probs, image_id=image_id)) == _canon(
            second.score_frame(probs, image_id=image_id)
        )

    def test_state_round_trip_is_bitwise(self, fitted_model, val_frames):
        state = json.loads(json.dumps(fitted_model.to_state()))
        restored = FittedModel.from_state(state)
        assert _canon(json.loads(json.dumps(restored.to_state()))) == _canon(state)
        for image_id, probs in val_frames:
            assert _canon(restored.score_frame(probs, image_id=image_id)) == _canon(
                fitted_model.score_frame(probs, image_id=image_id)
            )

    def test_fit_rejects_non_metaseg(self):
        config = _serve_config()
        config["kind"] = "decision"
        config["evaluation"] = {}
        with pytest.raises(ValueError, match="metaseg"):
            Runner().fit(config)


class TestServerParity:
    def test_health_and_model_endpoints(self, server, fitted_model):
        info = json.loads(urllib.request.urlopen(server.url + "/healthz").read())
        assert info["status"] == "ok"
        assert info["classifier"] == "logistic"
        assert info["n_classes"] == fitted_model.label_space.n_classes
        model_info = json.loads(urllib.request.urlopen(server.url + "/model").read())
        assert model_info["n_features"] == len(fitted_model.feature_names)

    def test_npy_frames_match_batch_bitwise(self, server, val_frames, batch_reference):
        for (image_id, probs), reference in zip(val_frames, batch_reference["frames"]):
            scored = score_frame(server.url, probs, image_id=image_id)
            assert _canon(scored) == _canon(reference)

    def test_npz_batch_matches_batch_bitwise(self, server, val_frames, batch_reference):
        scored = score_batch(server.url, val_frames)
        assert _canon(scored) == _canon(batch_reference)

    def test_json_payload_matches_batch_bitwise(self, server, val_frames, batch_reference):
        image_id, probs = val_frames[0]
        status, scored = _post(
            server.url + "/score",
            json.dumps({"image_id": image_id, "probs": probs.tolist()}).encode(),
            "application/json",
        )
        assert status == 200
        assert _canon(scored["frames"][0]) == _canon(batch_reference["frames"][0])

    def test_concurrent_clients_match_batch_bitwise(self, server, val_frames, batch_reference):
        reference = {
            frame["image_id"]: frame for frame in batch_reference["frames"]
        }
        n_clients = 8
        results = [None] * n_clients
        errors = []

        def client(slot: int) -> None:
            # Each client walks the frames in a different order.
            order = [(slot + i) % len(val_frames) for i in range(len(val_frames))]
            try:
                results[slot] = [
                    score_frame(server.url, val_frames[i][1], image_id=val_frames[i][0])
                    for i in order
                ]
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        for scored_frames in results:
            assert scored_frames is not None
            for scored in scored_frames:
                assert _canon(scored) == _canon(reference[scored["image_id"]])


class TestErrorContracts:
    def test_unknown_get_path_is_json_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.url + "/nope")
        assert excinfo.value.code == 404
        assert json.loads(excinfo.value.read())["error"]["code"] == "not_found"

    def test_unknown_post_path_is_json_404(self, server):
        status, body = _post(server.url + "/nope", b"x", "application/x-npy")
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_unsupported_media_type_is_415(self, server):
        status, body = _post(server.url + "/score", b"x", "text/plain")
        assert status == 415
        assert body["error"]["code"] == "unsupported_media_type"

    def test_malformed_npy_is_400(self, server):
        status, body = _post(server.url + "/score", b"not an npy", "application/x-npy")
        assert status == 400
        assert body["error"]["code"] == "bad_payload"

    def test_malformed_json_is_400(self, server):
        status, body = _post(server.url + "/score", b"{nope", "application/json")
        assert status == 400
        assert body["error"]["code"] == "bad_payload"

    def test_json_without_probs_is_400(self, server):
        status, body = _post(server.url + "/score", b'{"x": 1}', "application/json")
        assert status == 400
        assert body["error"]["code"] == "bad_payload"

    def test_wrong_ndim_is_400(self, server):
        status, body = _post(
            server.url + "/score", npy_bytes(np.ones((4, 4))), "application/x-npy"
        )
        assert status == 400
        assert body["error"]["code"] == "bad_shape"

    def test_wrong_class_count_is_400(self, server):
        bad = np.full((8, 8, 3), 1.0 / 3.0)
        status, body = _post(server.url + "/score", npy_bytes(bad), "application/x-npy")
        assert status == 400
        assert body["error"]["code"] == "bad_input"

    def test_missing_content_length_is_411(self, server):
        host, port = server.server_address[:2]
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"POST /score HTTP/1.0\r\n\r\n")
            response = b""
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                response += chunk
        head, _, body = response.partition(b"\r\n\r\n")
        assert b" 411 " in head.split(b"\r\n", 1)[0]
        assert json.loads(body)["error"]["code"] == "length_required"

    def test_oversized_payload_is_413(self, fitted_model, val_frames):
        server = ScoringServer(
            ScoringService(fitted_model), port=0, workers=1, max_request_bytes=1000
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            wait_until_ready(server.url)
            status, body = _post(
                server.url + "/score",
                npy_bytes(val_frames[0][1]),
                "application/x-npy",
            )
            assert status == 413
            assert body["error"]["code"] == "payload_too_large"
        finally:
            server.shutdown()
            server.close()
            thread.join(timeout=5)


class TestBackpressure:
    def test_saturated_queue_answers_503(self, fitted_model, val_frames):
        gate = threading.Event()
        entered = threading.Event()
        service = ScoringService(fitted_model)
        original = service.score_frames

        def blocking_score_frames(frames):
            entered.set()
            gate.wait(timeout=60)
            return original(frames)

        service.score_frames = blocking_score_frames
        server = ScoringServer(service, port=0, workers=1, queue_depth=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        image_id, probs = val_frames[0]
        outcomes = []

        def client() -> None:
            outcomes.append(score_frame(server.url, probs, image_id=image_id))

        clients = []
        try:
            wait_until_ready(server.url)
            gate.clear()
            # First request occupies the single worker...
            clients.append(threading.Thread(target=client))
            clients[0].start()
            assert entered.wait(timeout=30)
            # ...second fills the depth-1 queue...
            clients.append(threading.Thread(target=client))
            clients[1].start()
            _wait_until(lambda: server._queue.qsize() == 1)
            # ...third connection must be rejected immediately with a
            # structured 503.  The rejection happens at accept time (before
            # any parsing), so a small GET probes it without racing the
            # server's close against a large in-flight request body.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url + "/healthz", timeout=30)
            assert excinfo.value.code == 503
            # Backpressure contract: a Retry-After hint and a request id,
            # echoed in both the header and the structured body.
            assert excinfo.value.headers["Retry-After"] == "1"
            request_id = excinfo.value.headers["X-Request-Id"]
            assert request_id.startswith("req-")
            error = json.loads(excinfo.value.read())["error"]
            assert error["code"] == "overloaded"
            assert error["request_id"] == request_id
            assert server.metrics.counter("serve.rejected.count").value == 1
        finally:
            gate.set()
            for worker in clients:
                worker.join(timeout=60)
            server.shutdown()
            server.close()
            thread.join(timeout=5)
        # The occupied/queued requests complete normally once released.
        assert len(outcomes) == 2
        for scored in outcomes:
            assert scored["image_id"] == image_id


class TestObservability:
    def test_responses_carry_request_ids(self, server):
        with urllib.request.urlopen(server.url + "/healthz") as response:
            assert response.headers["X-Request-Id"].startswith("req-")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.url + "/nope")
        request_id = excinfo.value.headers["X-Request-Id"]
        error = json.loads(excinfo.value.read())["error"]
        assert error["request_id"] == request_id
        assert request_id.startswith("req-")

    def test_request_ids_are_unique_and_monotonic(self, server):
        def rid():
            with urllib.request.urlopen(server.url + "/healthz") as response:
                return int(response.headers["X-Request-Id"].split("-")[1])

        first, second = rid(), rid()
        assert second > first

    def test_metrics_endpoint_exposes_serving_contract(self, server, val_frames):
        image_id, probs = val_frames[0]
        score_frame(server.url, probs, image_id=image_id)
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(server.url + "/nope")
        snapshot = json.loads(
            urllib.request.urlopen(server.url + "/metrics").read()
        )
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        counters = snapshot["counters"]
        assert counters["serve.requests.count"] >= 2
        assert counters["serve.requests.errors"] >= 1
        assert counters["serve.rejected.count"] == 0
        assert "serve.queue.depth" in snapshot["gauges"]
        latency = snapshot["histograms"]["serve.request.latency_seconds"]
        assert latency["count"] >= 2
        assert sum(latency["counts"]) == latency["count"]
        assert len(latency["counts"]) == len(latency["bounds"]) + 1
        assert latency["min"] >= 0.0

    def test_request_spans_record_method_path_and_status(self, fitted_model):
        from repro.obs import Tracer

        tracer = Tracer()
        server = ScoringServer(
            ScoringService(fitted_model), port=0, workers=1, tracer=tracer
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            wait_until_ready(server.url)
            urllib.request.urlopen(server.url + "/healthz").read()
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(server.url + "/nope")
        finally:
            server.shutdown()
            server.close()
            thread.join(timeout=5)
        spans = {
            record["attrs"]["path"]: record
            for record in tracer.records()
            if record["name"] == "request"
        }
        assert spans["/healthz"]["attrs"]["status"] == 200
        assert spans["/healthz"]["attrs"]["method"] == "GET"
        assert spans["/nope"]["attrs"]["status"] == 404
        assert all(
            record["attrs"]["request_id"].startswith("req-")
            for record in spans.values()
        )


def _wait_until(predicate, timeout: float = 30.0, interval: float = 0.01) -> None:
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached before timeout")


class TestClientRetries:
    """The opt-in 503 retry loop and timeout defaults of repro.serve.client."""

    def _http_error(self, code: int, retry_after=None) -> urllib.error.HTTPError:
        import email.message
        import io

        headers = email.message.Message()
        if retry_after is not None:
            headers["Retry-After"] = retry_after
        return urllib.error.HTTPError(
            "http://x/healthz", code, "busy", headers, io.BytesIO(b"{}")
        )

    def _stub_transport(self, monkeypatch, outcomes):
        """urlopen returns/raises scripted outcomes; sleeps are recorded."""
        from repro.serve import client as client_module

        calls = []
        sleeps = []

        class _Response:
            def __init__(self, payload):
                self._payload = payload

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

            def read(self):
                return json.dumps(self._payload).encode("utf-8")

        def fake_urlopen(request, timeout=None):
            calls.append({"url": request.full_url, "timeout": timeout})
            outcome = outcomes[min(len(calls) - 1, len(outcomes) - 1)]
            if isinstance(outcome, Exception):
                raise outcome
            return _Response(outcome)

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        monkeypatch.setattr(client_module.time, "sleep", sleeps.append)
        return calls, sleeps

    def test_retries_503_honouring_retry_after(self, monkeypatch):
        from repro.serve.client import RETRY_BACKOFF_BASE, health

        calls, sleeps = self._stub_transport(
            monkeypatch,
            [
                self._http_error(503, retry_after="0.01"),
                self._http_error(503),  # no header: exponential backoff
                {"status": "ok"},
            ],
        )
        assert health("http://x", retries=2) == {"status": "ok"}
        assert len(calls) == 3
        assert len(sleeps) == 2
        # First delay follows the server's Retry-After hint (+<50% jitter)...
        assert 0.01 <= sleeps[0] < 0.015
        # ...second falls back to base * 2**attempt.
        expected = RETRY_BACKOFF_BASE * 2
        assert expected <= sleeps[1] < expected * 1.5

    def test_no_retry_by_default(self, monkeypatch):
        from repro.serve.client import health

        calls, sleeps = self._stub_transport(monkeypatch, [self._http_error(503)])
        with pytest.raises(urllib.error.HTTPError):
            health("http://x")
        assert len(calls) == 1
        assert sleeps == []

    def test_non_503_statuses_never_retry(self, monkeypatch):
        from repro.serve.client import health

        calls, sleeps = self._stub_transport(monkeypatch, [self._http_error(500)])
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            health("http://x", retries=5)
        assert excinfo.value.code == 500
        assert len(calls) == 1
        assert sleeps == []

    def test_exhausted_retries_raise_the_final_503(self, monkeypatch):
        from repro.serve.client import score_frame

        calls, sleeps = self._stub_transport(
            monkeypatch, [self._http_error(503, retry_after="0.01")]
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            score_frame("http://x", np.ones((4, 4, 8)), retries=2)
        assert excinfo.value.code == 503
        assert len(calls) == 3  # initial try + 2 retries
        assert len(sleeps) == 2

    def test_torn_connection_is_retried(self, monkeypatch):
        """A server rejecting at accept time closes the socket while the
        body is in flight — the client sees URLError(EPIPE), not a 503."""
        from repro.serve.client import health

        calls, sleeps = self._stub_transport(
            monkeypatch,
            [
                urllib.error.URLError(BrokenPipeError(32, "Broken pipe")),
                urllib.error.URLError(ConnectionResetError(104, "reset")),
                {"status": "ok"},
            ],
        )
        assert health("http://x", retries=2) == {"status": "ok"}
        assert len(calls) == 3
        assert len(sleeps) == 2

    def test_torn_connection_not_retried_by_default(self, monkeypatch):
        from repro.serve.client import health

        calls, sleeps = self._stub_transport(
            monkeypatch, [urllib.error.URLError(BrokenPipeError(32, "Broken pipe"))]
        )
        with pytest.raises(urllib.error.URLError):
            health("http://x")
        assert len(calls) == 1
        assert sleeps == []

    def test_other_urlerrors_never_retry(self, monkeypatch):
        from repro.serve.client import health

        calls, sleeps = self._stub_transport(
            monkeypatch, [urllib.error.URLError(ConnectionRefusedError(111, "refused"))]
        )
        with pytest.raises(urllib.error.URLError):
            health("http://x", retries=5)
        assert len(calls) == 1
        assert sleeps == []

    def test_timeout_none_is_normalised_to_default(self, monkeypatch):
        from repro.serve.client import DEFAULT_TIMEOUT, health

        calls, _ = self._stub_transport(monkeypatch, [{"status": "ok"}])
        health("http://x", timeout=None)
        assert calls[0]["timeout"] == DEFAULT_TIMEOUT

    def test_retry_delay_is_capped_and_jittered(self):
        from repro.serve.client import (
            RETRY_BACKOFF_BASE,
            RETRY_BACKOFF_CAP,
            _retry_delay,
        )

        # A huge server hint is capped (then jittered up to +50%).
        assert RETRY_BACKOFF_CAP <= _retry_delay(0, "9999") < RETRY_BACKOFF_CAP * 1.5
        # Garbage and negative hints fall back to exponential backoff.
        for bad in ("soon", "-3"):
            expected = RETRY_BACKOFF_BASE
            assert expected <= _retry_delay(0, bad) < expected * 1.5
        expected = RETRY_BACKOFF_BASE * 4
        assert expected <= _retry_delay(2, None) < expected * 1.5

    def test_retry_against_live_backpressured_server(self, fitted_model, val_frames):
        """End to end: a saturated depth-1 queue 503s, then the retrying
        client succeeds once the worker drains."""
        gate = threading.Event()
        entered = threading.Event()
        service = ScoringService(fitted_model)
        original = service.score_frames

        def blocking_score_frames(frames):
            entered.set()
            gate.wait(timeout=60)
            return original(frames)

        service.score_frames = blocking_score_frames
        server = ScoringServer(service, port=0, workers=1, queue_depth=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        image_id, probs = val_frames[0]
        blockers = []

        def start_blocker() -> None:
            blocker = threading.Thread(
                target=score_frame, args=(server.url, probs),
                kwargs={"image_id": image_id}, daemon=True,
            )
            blocker.start()
            blockers.append(blocker)

        try:
            wait_until_ready(server.url)
            # Sequence the saturating requests: the first must reach the
            # worker before the second is sent, or the second races the
            # depth-1 queue slot and gets bounced with a raw 503 (closing
            # the socket mid-body — a broken pipe in the blocker thread).
            start_blocker()
            assert entered.wait(timeout=30)
            start_blocker()
            _wait_until(lambda: server._queue.qsize() == 1)
            releaser = threading.Timer(0.3, gate.set)
            releaser.start()
            try:
                scored = score_frame(
                    server.url, probs, image_id=image_id, retries=8
                )
            finally:
                releaser.cancel()
                gate.set()
            assert scored["image_id"] == image_id
        finally:
            gate.set()
            for blocker in blockers:
                blocker.join(timeout=60)
            server.shutdown()
            server.close()
            thread.join(timeout=5)
